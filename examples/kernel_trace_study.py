#!/usr/bin/env python3
"""Trace real assembled kernels end to end (no synthetic modelling).

Every bundled kernel is assembled from source, executed functionally,
traced with the paper's predictor (wrong-path blocks included), timed
by the ReSim engine, and cross-checked against the independent
baseline simulator.  This is the no-statistics path through the whole
system: from assembly text to FPGA-projected MIPS.

Run:  python examples/kernel_trace_study.py
"""

from repro import (
    PAPER_4WIDE_PERFECT,
    KERNELS,
    ReSimEngine,
    SimBpred,
    SimFast,
    ThroughputModel,
    VIRTEX5_LX50T,
    kernel_program,
)
from repro.baseline import OutOrderBaseline


def main() -> None:
    simfast = SimFast()
    tracer = SimBpred(rob_entries=PAPER_4WIDE_PERFECT.rob_entries,
                      ifq_entries=PAPER_4WIDE_PERFECT.ifq_entries)
    model = ThroughputModel(VIRTEX5_LX50T)

    print(f"{'kernel':<12s} {'out':>8s} {'instrs':>7s} {'mis':>4s} "
          f"{'IPC':>6s} {'base':>6s} {'Δ%':>5s} {'V5 MIPS':>8s}")
    for name in KERNELS:
        program = kernel_program(name)
        functional = simfast.run(program)
        generation = tracer.generate(program)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records,
                             start_pc=program.entry)
        result = engine.run()
        baseline = OutOrderBaseline(PAPER_4WIDE_PERFECT).run(
            generation.records
        )
        delta = 100.0 * (baseline.cycles - result.major_cycles) \
            / result.major_cycles
        report = model.report(result)
        print(f"{name:<12s} {functional.output:>8s} "
              f"{functional.instructions:>7d} "
              f"{generation.mispredictions:>4d} {result.ipc:>6.3f} "
              f"{baseline.ipc:>6.3f} {delta:>+5.1f} {report.mips:>8.2f}")

    print("\nΔ% = baseline cycles vs engine cycles (independent models; "
          "small disagreement expected, see repro.baseline docs)")


if __name__ == "__main__":
    main()
