#!/usr/bin/env python3
"""Design-space exploration: the 'reconfigurable' in ReSim.

The point of a parameterizable hardware simulator is sweeping design
parameters quickly.  This example sweeps three axes the paper
parameterizes and reports both *simulated-processor* effects (IPC) and
*simulator* effects (FPGA area, instances per device):

1. branch predictor geometry (the paper's generated-VHDL component) —
   also writes the generated VHDL for the chosen design point;
2. reorder-buffer size;
3. superscalar width, including how many ReSim instances of each width
   fit on one device (the paper's multi-core direction).

Run:  python examples/design_space.py [--budget N] [--vhdl-dir DIR]
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from pathlib import Path

from repro import (
    PAPER_4WIDE_PERFECT,
    PredictorConfig,
    ReSimEngine,
    VIRTEX4_LX40,
    generate_branch_predictor_vhdl,
)
from repro.fpga.area import AreaEstimator
from repro.fpga.device import VIRTEX4_LX100
from repro.workloads import SyntheticWorkload, get_profile


def sweep_predictor(budget: int) -> PredictorConfig:
    """Compare predictor schemes on the branchy 'parser' workload."""
    print("== predictor sweep (parser, 4-wide, perfect memory) ==")
    print(f"{'scheme':<26s} {'IPC':>6s} {'mispredict':>11s} {'BP BRAMs':>9s}")
    best: tuple[float, PredictorConfig] | None = None
    for scheme, kwargs in (
        ("nottaken", {}),
        ("bimodal", {"bimodal_size": 2048}),
        ("gshare", {"history_length": 10, "l2_size": 4096}),
        ("twolevel", {}),  # the paper's configuration
        ("twolevel", {"l1_size": 16, "history_length": 10,
                      "l2_size": 16384}),
    ):
        predictor = PredictorConfig(scheme=scheme, **kwargs)
        config = replace(PAPER_4WIDE_PERFECT, predictor=predictor)
        workload = SyntheticWorkload(get_profile("parser"), seed=7,
                                     predictor_config=predictor)
        trace = workload.generate(budget)
        result = ReSimEngine(config, trace.records).run()
        area = AreaEstimator(config).estimate()
        brams = area.stage("bpred").brams
        label = f"{scheme}({','.join(map(str, kwargs.values()))})"
        print(f"{label:<26s} {result.ipc:6.3f} "
              f"{result.stats.misprediction_rate:11.4f} {brams:9d}")
        if best is None or result.ipc > best[0]:
            best = (result.ipc, predictor)
    assert best is not None
    return best[1]


def sweep_rob(budget: int) -> None:
    """Reorder-buffer size: ILP window vs. area."""
    print("\n== reorder-buffer sweep (bzip2, 4-wide, perfect memory) ==")
    print(f"{'ROB':>4s} {'IPC':>6s} {'RB slices':>10s} {'total slices':>13s}")
    for rob in (8, 16, 32, 64):
        config = replace(PAPER_4WIDE_PERFECT, rob_entries=rob)
        workload = SyntheticWorkload(get_profile("bzip2"), seed=7,
                                     rob_entries=rob)
        trace = workload.generate(budget)
        result = ReSimEngine(config, trace.records).run()
        area = AreaEstimator(config).estimate()
        print(f"{rob:>4d} {result.ipc:6.3f} "
              f"{area.stage('rob').slices:>10d} {area.total_slices:>13d}")


def sweep_width(budget: int) -> None:
    """Superscalar width: IPC vs. area vs. multi-instance capacity."""
    print("\n== width sweep (gzip, perfect memory) ==")
    # Instance counts compare like with like: the area model emits
    # Virtex-4 slices, so both parts here are Virtex-4.
    print(f"{'N':>3s} {'IPC':>6s} {'slices':>8s} "
          f"{'fit on LX40':>12s} {'fit on LX100':>13s}")
    for width in (1, 2, 4, 8):
        config = replace(
            PAPER_4WIDE_PERFECT, width=width,
            mem_read_ports=max(1, width // 2),
        )
        workload = SyntheticWorkload(get_profile("gzip"), seed=7)
        trace = workload.generate(budget)
        result = ReSimEngine(config, trace.records).run()
        area = AreaEstimator(config).estimate()
        fit_v4 = VIRTEX4_LX40.instances_fit(area.total_slices,
                                            area.total_brams)
        fit_large = VIRTEX4_LX100.instances_fit(area.total_slices,
                                                area.total_brams)
        print(f"{width:>3d} {result.ipc:6.3f} {area.total_slices:>8d} "
              f"{fit_v4:>12d} {fit_large:>13d}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=20_000)
    parser.add_argument("--vhdl-dir", type=Path, default=None,
                        help="write generated predictor VHDL here")
    args = parser.parse_args()

    best_predictor = sweep_predictor(args.budget)
    sweep_rob(args.budget)
    sweep_width(args.budget)

    if args.vhdl_dir is not None:
        args.vhdl_dir.mkdir(parents=True, exist_ok=True)
        sources = generate_branch_predictor_vhdl(best_predictor)
        for entity, source in sources.items():
            path = args.vhdl_dir / f"{entity}.vhd"
            path.write_text(source)
            print(f"wrote {path}")
    else:
        sources = generate_branch_predictor_vhdl(best_predictor)
        total = sum(source.count("\n") for source in sources.values())
        print(f"\n(best predictor VHDL: {len(sources)} entities, "
              f"{total} lines; pass --vhdl-dir to write them)")


if __name__ == "__main__":
    main()
