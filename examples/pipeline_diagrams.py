#!/usr/bin/env python3
"""Render the minor-cycle pipeline organizations (Figures 2, 3, 4).

Prints the ASCII timing diagram of each organization at the paper's
4-wide configuration, the major-cycle latency formulas across widths,
and the throughput effect of the organization choice on a real
workload.

Run:  python examples/pipeline_diagrams.py
"""

from repro import PAPER_4WIDE_PERFECT, ReSimEngine, VIRTEX5_LX50T
from repro.core.minorpipe import (
    ImprovedPipeline,
    OptimizedPipeline,
    SimplePipeline,
)
from repro.perf.throughput import ThroughputModel
from repro.workloads import SyntheticWorkload, get_profile


def main() -> None:
    width = 4
    pipelines = [SimplePipeline(width), ImprovedPipeline(width),
                 OptimizedPipeline(width)]

    for pipeline in pipelines:
        pipeline.validate()
        print(pipeline.render())
        print()

    print("Major-cycle latency in minor cycles (formulas: 2N+3, N+4, N+3):")
    print(f"{'N':>3s} {'simple':>8s} {'improved':>9s} {'optimized':>10s}")
    for n in (1, 2, 4, 8, 16):
        print(f"{n:>3d} {SimplePipeline(n).minor_cycles_per_major:>8d} "
              f"{ImprovedPipeline(n).minor_cycles_per_major:>9d} "
              f"{OptimizedPipeline(n).minor_cycles_per_major:>10d}")

    # The organization choice changes wall-clock, not simulated cycles:
    # same engine run, three different projections.
    print("\nThroughput effect (gzip, 4-wide, perfect memory, Virtex-5):")
    workload = SyntheticWorkload(get_profile("gzip"), seed=7)
    trace = workload.generate(20_000)
    result = ReSimEngine(PAPER_4WIDE_PERFECT, trace.records).run()
    for pipeline in pipelines:
        report = ThroughputModel(VIRTEX5_LX50T, pipeline).report(result)
        print(f"  {pipeline.name:10s} ({pipeline.figure}): "
              f"L={pipeline.minor_cycles_per_major:2d} -> "
              f"{report.mips:6.2f} MIPS")
    simple = ThroughputModel(VIRTEX5_LX50T, pipelines[0]).report(result)
    optimized = ThroughputModel(VIRTEX5_LX50T, pipelines[2]).report(result)
    print(f"\noptimized vs simple speedup: "
          f"{optimized.mips / simple.mips:.2f}x "
          f"(= (2N+3)/(N+3) = {(2 * width + 3) / (width + 3):.2f} exactly)")


if __name__ == "__main__":
    main()
