#!/usr/bin/env python3
"""Adaptive design-space search: find the best configuration without
simulating the whole grid.

A grid sweep answers "what does *every* configuration score?"; most
campaigns only ask "which configuration is *best*?".  This example
searches a 24-point ROB x LSQ x width grid two ways through
:mod:`repro.sweep.search`:

* **hill-climb** — start at the smallest machine, evaluate the axis
  neighbors, move while IPC strictly improves;
* **seeded random sampling** — a fixed-seed sample of the grid (the
  repo's own xorshift generator, so reruns are bit-for-bit
  identical).

Both strategies evaluate points through exactly the machinery a grid
sweep uses — one shared persisted trace, per-point checkpoints, any
execution backend — so the final full sweep in this script resumes
every point the searches already visited for free, and then serves
as the ground truth the strategies are judged against.

Run:  python examples/adaptive_search.py \
          [--budget N] [--results-dir DIR]

(For multi-host execution, pass a DirectoryQueueBackend as the
``backend=`` of ``run_search``/``run_sweep`` and start ``resim
worker <queue-dir>`` on any machine sharing the filesystem — the
search itself does not change.)
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.sweep import (
    HillClimb,
    RandomSearch,
    SweepSpec,
    run_search,
    run_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=4000)
    parser.add_argument("--results-dir", type=Path, default=None,
                        help="reuse to resume / share checkpoints "
                             "(default: a throwaway temp directory)")
    args = parser.parse_args()

    results_dir = args.results_dir
    cleanup = None
    if results_dir is None:
        cleanup = tempfile.TemporaryDirectory()
        results_dir = Path(cleanup.name)

    spec = SweepSpec(axes={
        "rob_entries": (8, 16, 32, 64),
        "lsq_entries": (4, 8, 16),
        "width": (2, 4),
    })
    grid_points = len(spec.expand())
    print(f"design space: {grid_points} valid points\n")

    # -- hill-climb: pay only for the ridge it walks ------------------
    climb = run_search(HillClimb(spec), "gzip",
                       results_dir=results_dir, budget=args.budget)
    print("== hill-climb ==")
    print(climb.table())
    print(f"\n{climb.summary()}")
    trajectory = climb.result.metadata["search"]["trajectory"]
    print(f"trajectory: {' -> '.join(trajectory)}")
    print(f"evaluations: {len(climb)}/{grid_points} grid points\n")

    # -- seeded random sampling: reproducible by construction ---------
    sampled = run_search(RandomSearch(spec, samples=6, seed=42),
                         "gzip", results_dir=results_dir,
                         budget=args.budget)
    print("== random sample (seed 42) ==")
    print(f"{sampled.summary()}")
    resumed = sampled.result.resumed_count
    if resumed:
        print(f"({resumed} point(s) the climb already simulated came "
              f"straight from checkpoints)")

    # -- ground truth: the full grid, resuming everything above -------
    full = run_sweep(spec, "gzip", results_dir=results_dir,
                     budget=args.budget)
    best = full.best("ipc")
    print("\n== full grid (ground truth) ==")
    print(f"grid best: {best.label}  ipc={best.ipc:.4f} "
          f"({full.resumed_count}/{len(full)} points resumed from "
          f"search checkpoints)")
    gap = (best.ipc - climb.best.ipc) / best.ipc * 100.0
    print(f"hill-climb reached {climb.best.ipc:.4f} "
          f"({gap:.1f}% from optimal) in {len(climb)} evaluations")

    if cleanup is not None:
        cleanup.cleanup()


if __name__ == "__main__":
    main()
