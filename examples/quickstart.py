#!/usr/bin/env python3
"""Quickstart: assemble a program, trace it, simulate its timing.

This walks the full ReSim toolflow on a real (tiny) program:

1. assemble a PISA-like kernel;
2. run it functionally (``sim-fast``) to see what it computes;
3. trace it with a branch predictor (``sim-bpred``), which injects
   tagged wrong-path blocks after every misprediction;
4. feed the trace to the ReSim timing engine (the paper's simulated
   4-wide out-of-order processor);
5. project throughput onto the paper's two FPGA devices.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_4WIDE_PERFECT,
    ReSimEngine,
    SimBpred,
    SimFast,
    ThroughputModel,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
    assemble,
    select_pipeline,
)

SOURCE = """
# Sum of squares 1..20, with a data-dependent branch on parity.
.text
main:
    li   $t0, 20          # n
    li   $s0, 0           # sum of squares
    li   $s1, 0           # count of even squares
    li   $t1, 1           # i
loop:
    mul  $t2, $t1, $t1    # i*i
    add  $s0, $s0, $t2
    andi $t3, $t2, 1
    bnez $t3, odd
    addi $s1, $s1, 1      # even square
odd:
    addi $t1, $t1, 1
    ble  $t1, $t0, loop
    move $a0, $s0
    li   $v0, 1           # print sum
    syscall
    li   $v0, 10          # exit
    syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    print("=== disassembly (first lines) ===")
    print("\n".join(program.disassemble().splitlines()[:10]))

    functional = SimFast().run(program)
    print("\n=== functional run ===")
    print(f"output          : {functional.output}")
    print(f"instructions    : {functional.instructions}")
    print(f"mix             : {functional.mix_summary()}")

    tracer = SimBpred()  # the paper's two-level predictor configuration
    generation = tracer.generate(program)
    stats = generation.statistics()
    print("\n=== trace generation (sim-bpred) ===")
    print(f"trace records   : {generation.total_records} "
          f"({generation.wrong_path_instructions} wrong-path)")
    print(f"mispredictions  : {generation.mispredictions}")
    print(f"bits/instruction: {stats.bits_per_instruction:.2f}")

    config = PAPER_4WIDE_PERFECT
    engine = ReSimEngine(config, generation.records)
    result = engine.run()
    print("\n=== ReSim timing simulation ===")
    print(f"configuration   : {config.describe()}")
    print(f"major cycles    : {result.major_cycles}")
    print(f"IPC             : {result.ipc:.3f}")

    pipeline = select_pipeline(config.width, config.memory_ports)
    print(f"\ninternal pipeline: {pipeline.name} ({pipeline.figure}), "
          f"major cycle = {pipeline.minor_cycles_per_major} minor cycles")
    for device in (VIRTEX4_LX40, VIRTEX5_LX50T):
        report = ThroughputModel(device).report(result)
        print(f"  {device.name:12s} @ {device.minor_cycle_mhz:5.0f} MHz "
              f"-> {report.mips:6.2f} MIPS simulation throughput")


if __name__ == "__main__":
    main()
