#!/usr/bin/env python3
"""Quickstart: assemble a program, trace it, simulate its timing.

This walks the full ReSim toolflow on a real (tiny) program:

1. assemble a PISA-like kernel;
2. run it functionally (``sim-fast``) to see what it computes;
3. trace it with a branch predictor (``sim-bpred``), which injects
   tagged wrong-path blocks after every misprediction;
4. feed the trace to the ReSim timing engine (the paper's simulated
   4-wide out-of-order processor);
5. project throughput onto the paper's two FPGA devices.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_4WIDE_PERFECT,
    SimFast,
    Simulation,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
    assemble,
    select_pipeline,
)

SOURCE = """
# Sum of squares 1..20, with a data-dependent branch on parity.
.text
main:
    li   $t0, 20          # n
    li   $s0, 0           # sum of squares
    li   $s1, 0           # count of even squares
    li   $t1, 1           # i
loop:
    mul  $t2, $t1, $t1    # i*i
    add  $s0, $s0, $t2
    andi $t3, $t2, 1
    bnez $t3, odd
    addi $s1, $s1, 1      # even square
odd:
    addi $t1, $t1, 1
    ble  $t1, $t0, loop
    move $a0, $s0
    li   $v0, 1           # print sum
    syscall
    li   $v0, 10          # exit
    syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    print("=== disassembly (first lines) ===")
    print("\n".join(program.disassemble().splitlines()[:10]))

    functional = SimFast().run(program)
    print("\n=== functional run ===")
    print(f"output          : {functional.output}")
    print(f"instructions    : {functional.instructions}")
    print(f"mix             : {functional.mix_summary()}")

    # The Simulation facade runs the remaining pipeline in one go:
    # trace the program with the paper's predictor (sim-bpred, wrong
    # paths included), feed the ReSim timing engine, and project
    # throughput onto the paper's two FPGA devices.
    config = PAPER_4WIDE_PERFECT
    simulation = (Simulation.for_program(program, config)
                  .with_devices(VIRTEX4_LX40, VIRTEX5_LX50T))
    session = simulation.run()

    stats = session.trace_stats
    print("\n=== trace generation (sim-bpred) ===")
    print(f"trace records   : {stats.total_records} "
          f"({stats.wrong_path_records} wrong-path)")
    print(f"mispredictions  : {int(session.stats.mispredictions)}")
    print(f"bits/instruction: {stats.bits_per_instruction:.2f}")

    print("\n=== ReSim timing simulation ===")
    print(f"configuration   : {config.describe()}")
    print(f"major cycles    : {session.major_cycles}")
    print(f"IPC             : {session.ipc:.3f}")

    pipeline = select_pipeline(config.width, config.memory_ports)
    print(f"\ninternal pipeline: {pipeline.name} ({pipeline.figure}), "
          f"major cycle = {pipeline.minor_cycles_per_major} minor cycles")
    for device in (VIRTEX4_LX40, VIRTEX5_LX50T):
        print(f"  {device.name:12s} @ {device.minor_cycle_mhz:5.0f} MHz "
              f"-> {session.mips(device.name):6.2f} MIPS simulation "
              f"throughput")


if __name__ == "__main__":
    main()
