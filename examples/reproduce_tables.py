#!/usr/bin/env python3
"""Regenerate every table of the paper's evaluation section.

Usage:
    python examples/reproduce_tables.py             # all tables
    python examples/reproduce_tables.py table1      # one table
    python examples/reproduce_tables.py table3 --budget 50000

The rendering lives in :mod:`repro.perf.tables` (also reachable as
``resim tables``); this script is the runnable front end.
"""

from __future__ import annotations

import argparse

from repro.perf.tables import render_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tables", nargs="*", metavar="TABLE",
                        help="tables to regenerate: table1..table4 "
                             "(default: all)")
    parser.add_argument("--budget", type=int, default=30_000,
                        help="instructions per benchmark")
    args = parser.parse_args()
    try:
        render_all(args.tables, args.budget)
    except KeyError as error:
        parser.error(str(error.args[0]))


if __name__ == "__main__":
    main()
