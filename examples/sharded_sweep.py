#!/usr/bin/env python3
"""Sharded design points: split one long simulation across workers.

A bulk sweep parallelizes *across* design points, so a 2-point grid
can keep at most 2 workers busy no matter how long the trace is.
Sharding parallelizes *within* a point: the shared v2 trace splits at
segment-table boundaries into ``--shards`` cold-start slices, every
slice becomes an ordinary work unit (here drained by local directory-
queue workers, exactly as multi-host workers would), and a statistics
reducer merges the per-shard results back into one document per
design point — so a 2-point x 4-shard sweep keeps 8 queue workers
busy.

The merge is exact where the trace is authoritative (committed
instruction/branch/load/store counts, trace records, mispredictions)
and approximate where warm state matters (cycles, hence IPC): shards
start with cold predictors/caches and a drained pipeline.  This
script runs the same tiny grid monolithically and sharded, verifies
the exact-sum counters agree, and prints the monolithic-vs-sharded
IPC delta that the cold starts cost.

Run:  python examples/sharded_sweep.py \
          [--budget N] [--shards N] [--workers N]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.exec import EXACT_SUM_COUNTERS, DirectoryQueueBackend
from repro.serialize import stats_to_dict
from repro.sweep import SweepSpec, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=6000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4,
                        help="local queue workers to spawn")
    args = parser.parse_args()

    spec = SweepSpec(axes={"rob_entries": (16, 32)})
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        print(f"== monolithic reference (serial, budget "
              f"{args.budget}) ==")
        monolithic = run_sweep(
            spec, "gzip", results_dir=scratch / "monolithic",
            budget=args.budget, segment_records=256)

        print(f"== sharded sweep ({len(spec.expand())} points x "
              f"{args.shards} shards through a {args.workers}-worker "
              f"directory queue) ==")
        backend = DirectoryQueueBackend(
            scratch / "queue", workers=args.workers,
            poll_seconds=0.05, timeout=600)
        sharded = run_sweep(
            spec, "gzip", results_dir=scratch / "sharded",
            budget=args.budget, segment_records=256,
            backend=backend, shards=args.shards)

        print(f"\n{'point':>16} {'mono IPC':>9} {'shard IPC':>9} "
              f"{'delta':>7}  exact-sum counters")
        for mono, shard in zip(monolithic, sharded, strict=True):
            mono_stats = stats_to_dict(mono.stats)
            shard_stats = stats_to_dict(shard.stats)
            for counter in EXACT_SUM_COUNTERS:
                assert shard_stats[counter] == mono_stats[counter], (
                    f"{counter} diverged: {shard_stats[counter]} != "
                    f"{mono_stats[counter]}"
                )
            delta = (shard.ipc - mono.ipc) / mono.ipc
            print(f"{mono.label:>16} {mono.ipc:9.4f} "
                  f"{shard.ipc:9.4f} {delta:+7.2%}  identical")
        shards = sharded.outcomes[0].stats.shards
        print(f"\nexact-sum counters verified: "
              f"{', '.join(EXACT_SUM_COUNTERS)}")
        print(f"shard provenance of the first point: "
              f"{len(shards)} shard(s), "
              f"{[entry['records'] for entry in shards]} records")
        print("IPC differs only by the cold-start approximation "
              "documented in README 'Sharded design points'.")


if __name__ == "__main__":
    main()
