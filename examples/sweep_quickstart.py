#!/usr/bin/env python3
"""Design-space sweep quickstart: the paper's bulk-simulation mode.

ReSim's traces are *"prepared off-line ... for bulk simulations with
varying design parameters"*.  This example shows that workflow through
:mod:`repro.sweep`: one gzip trace is generated and persisted once,
then a grid of ROB/LSQ/width design points is simulated against it in
parallel, checkpointing every finished point.  Running the script a
second time with the same ``--results-dir`` resumes from checkpoints
and simulates nothing.

Run:  python examples/sweep_quickstart.py \
          [--budget N] [--workers N] [--results-dir DIR]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.fpga.device import VIRTEX4_LX40
from repro.perf.comparison import comparison_table, render_table
from repro.perf.tables import sweep_table
from repro.sweep import SweepSpec, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=4000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--results-dir", type=Path, default=None,
                        help="reuse to resume an interrupted sweep "
                             "(default: a throwaway temp directory)")
    args = parser.parse_args()

    results_dir = args.results_dir
    cleanup = None
    if results_dir is None:
        cleanup = tempfile.TemporaryDirectory()
        results_dir = Path(cleanup.name)

    # 16 raw grid points; the spec collapses duplicates and filters
    # combinations the processor's own invariants reject.
    spec = SweepSpec(axes={
        "rob_entries": (8, 16, 32, 64),
        "lsq_entries": (4, 8),
        "width": (2, 4),
    })
    expansion = spec.expand()
    print(f"sweeping {len(expansion)} design points "
          f"({expansion.skipped_invalid} invalid, "
          f"{expansion.skipped_duplicates} duplicates dropped) "
          f"with {args.workers} worker(s)\n")

    result = run_sweep(spec, "gzip", results_dir=results_dir,
                       budget=args.budget, workers=args.workers)

    print(sweep_table(result, sort_key="ipc", limit=8))
    if result.resumed_count:
        print(f"\n(resumed {result.resumed_count}/{len(result)} points "
              f"from checkpoints — nothing was re-simulated)")

    # The best design points can join the paper's Table 2 comparison.
    best = result.top(2)
    print("\n== best design points vs. published simulators ==")
    print(render_table(comparison_table({})
                       + best.comparison_entries(VIRTEX4_LX40)))

    result.to_csv(results_dir / "sweep.csv", devices=(VIRTEX4_LX40,))
    print(f"\nwrote {results_dir / 'sweep.csv'}")

    if cleanup is not None:
        cleanup.cleanup()


if __name__ == "__main__":
    main()
