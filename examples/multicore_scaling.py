#!/usr/bin/env python3
"""Multi-core scaling study — the paper's Section VI direction.

ReSim at ~12K slices fits several times into larger parts, so
simulating a CMP means running one instance per simulated core.  The
binding constraint the paper identifies is the shared trace channel
(Table 3: ~1.1 Gb/s per instance).  This example measures aggregate
simulation throughput against instance count for two link classes —
plain Gigabit Ethernet and a tightly-coupled HyperTransport-class
attachment (the DRC board the paper mentions) — and shows where each
saturates.

Run:  python examples/multicore_scaling.py [--budget N]
"""

from __future__ import annotations

import argparse

from repro import PAPER_4WIDE_PERFECT
from repro.fpga.device import VIRTEX4_LX100
from repro.multicore import MultiCoreSimulator, TraceChannel

BENCHMARKS = ["gzip", "bzip2", "parser", "vortex", "vpr"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=8000)
    args = parser.parse_args()

    print(f"device: {VIRTEX4_LX100.name} "
          f"({VIRTEX4_LX100.slices} slices, "
          f"{VIRTEX4_LX100.bram_blocks} BRAMs)")

    for label, gbps in (("Gigabit Ethernet", 1.0),
                        ("HyperTransport-class", 6.4)):
        simulator = MultiCoreSimulator(
            PAPER_4WIDE_PERFECT, VIRTEX4_LX100, TraceChannel(gbps)
        )
        print(f"\n=== {label} trace channel ({gbps:.1f} Gb/s) ===")
        print(f"placement limit: {simulator.max_instances} instances")
        print(f"{'cores':>6s} {'demand Gb/s':>12s} {'service':>8s} "
              f"{'aggregate MIPS':>15s}")
        results = simulator.scaling_study(BENCHMARKS,
                                          budget=args.budget)
        for result in results:
            saturated = " <- saturated" if result.bandwidth_limited else ""
            print(f"{result.instances:>6d} "
                  f"{result.aggregate_demand_gbps:>12.2f} "
                  f"{result.service_fraction:>8.2f} "
                  f"{result.aggregate_mips:>15.2f}{saturated}")

    print("\nReading: with a GigE link even a single ReSim instance is "
          "bandwidth-starved (the paper's ~1.1 Gb/s demand exceeds "
          "1 Gb/s); the tightly-coupled link sustains several instances "
          "before the channel, not the FPGA fabric, caps multi-core "
          "simulation throughput.")


if __name__ == "__main__":
    main()
