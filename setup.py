"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in environments without the ``wheel`` package
(offline boxes where PEP 660 editable builds are unavailable) via::

    python setup.py develop

or the equivalent ``pip install -e . --no-build-isolation`` where wheel
is available.
"""

from setuptools import setup

setup()
