"""D-rules: determinism.

The whole distributed layer (backends, shards, the directory queue)
is correct only because a simulation is a *deterministic function* of
(config, trace): re-running a reclaimed unit must produce byte-
identical results, and two hosts hashing the same spec must agree on
the hash.  These rules catch the classic ways Python code silently
breaks that:

* ``D101`` — stdlib ``random`` (unseeded, or module-level state
  shared across call sites) instead of the repo's explicitly seeded
  :class:`repro.utils.rng.XorShiftRNG`;
* ``D102`` — wall-clock time flowing into statistics, result
  documents, or serialized payloads (timeouts and lease aging are
  fine: the clock may *drive* scheduling, never *land in* results);
* ``D103`` — iterating a bare ``set`` into anything order-sensitive
  (set iteration order varies with hash randomization across runs);
* ``D104`` — scheduling or serializing directly off ``os.listdir`` /
  ``glob`` / ``iterdir`` results without ``sorted()`` (readdir order
  is filesystem-dependent; two hosts draining one queue must scan it
  identically);
* ``D105`` — ``json.dumps`` without ``sort_keys=True`` (every JSON
  document in this repo may end up hashed, diffed, or compared
  byte-for-byte across backends; key order must be canonical).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.lint.framework import (
    FileContext,
    Finding,
    Rule,
    call_name,
    import_aliases,
    names_imported_from,
    register,
)

#: Consumers for which element order cannot matter; feeding them an
#: unordered iterable is fine.
ORDER_FREE_CONSUMERS = frozenset(
    ("sorted", "set", "frozenset", "len", "any", "all", "sum",
     "min", "max", "Counter"))

#: Consumers that materialize or expose iteration order.
ORDER_SENSITIVE_CONSUMERS = frozenset(
    ("list", "tuple", "enumerate", "iter", "next", "reversed",
     "join", "extend"))


def _iteration_context(ctx: FileContext, node: ast.AST) -> str | None:
    """How ``node`` (an unordered/unsorted iterable expression) is
    consumed, if the consumption is order-sensitive.

    Returns a short description for findings, or None when the
    consumer provably doesn't care about order (``any``/``set``/
    ``sorted``/membership tests/...).  Unknown consumers return None
    too: these heuristics prefer silence over false positives.
    """
    parent = ctx.parent(node)
    if isinstance(parent, ast.For) and parent.iter is node:
        return "a for loop"
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = ctx.parent(parent)
        if isinstance(comp, ast.SetComp):
            return None  # set in, set out: order never escapes
        if isinstance(comp, ast.GeneratorExp):
            # A genexp is as order-sensitive as whatever consumes it:
            # any(x for x in s) is fine, list(x for x in s) is not.
            return _iteration_context(ctx, comp)
        kind = {ast.ListComp: "a list comprehension",
                ast.DictComp: "a dict comprehension"}
        return kind.get(type(comp), "a comprehension")
    if isinstance(parent, ast.Call) and node in parent.args:
        name = call_name(parent)
        last = name.rsplit(".", 1)[-1] if name else None
        if last is None and isinstance(parent.func, ast.Attribute):
            last = parent.func.attr
        if last in ORDER_SENSITIVE_CONSUMERS:
            return f"{last}()"
        return None
    if isinstance(parent, ast.Starred):
        return "argument unpacking"
    return None


@register
class UnseededRandomRule(Rule):
    """D101: stdlib ``random`` in simulation code."""

    id = "D101"
    title = "stdlib random instead of explicitly seeded XorShiftRNG"
    rationale = (
        "Module-level random.* shares hidden global state between "
        "call sites and CPython releases have changed convenience-"
        "method call sequences; an unseeded random.Random() differs "
        "on every run.  Simulation paths must draw from "
        "repro.utils.rng.XorShiftRNG with an explicit seed so every "
        "backend and every retry reproduces the same bits."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.ImportFrom):
            if node.module == "random":
                yield self.finding(
                    ctx, node,
                    "importing names from 'random' hides the shared "
                    "global RNG state; use repro.utils.rng."
                    "XorShiftRNG(seed) instead")
        aliases = import_aliases(ctx, "random")
        if not aliases:
            return
        for node in ctx.walk(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases):
                continue
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "random.Random() without a seed is "
                        "nondeterministic; pass an explicit seed or "
                        "use repro.utils.rng.XorShiftRNG(seed)")
            elif func.attr == "SystemRandom":
                yield self.finding(
                    ctx, node,
                    "random.SystemRandom is nondeterministic by "
                    "design and can never reproduce a run")
            else:
                yield self.finding(
                    ctx, node,
                    f"module-level random.{func.attr}() draws from "
                    f"hidden shared state; use an explicitly seeded "
                    f"generator (repro.utils.rng.XorShiftRNG)")


#: Identifier substrings that mark a value as part of a result/
#: statistics document.  Deliberately broad: a wall-clock read next
#: to one of these names is almost always a reproducibility bug.
_RESULT_WORDS = ("result", "payload", "document", "stats", "stat",
                 "checkpoint", "manifest", "metadata", "record")

#: Callees that persist or canonicalize documents; a wall-clock value
#: passed into them lands in an artifact.
_SINK_CALLEES = frozenset(
    ("dumps", "dump", "atomic_write_json", "stats_to_dict",
     "write_text", "canonical_digest"))


def _mentions_result_word(text: str) -> bool:
    lowered = text.lower()
    return any(word in lowered for word in _RESULT_WORDS)


@register
class WallClockInResultsRule(Rule):
    """D102: wall-clock readings flowing into result documents."""

    id = "D102"
    title = "wall-clock time feeding statistics or result documents"
    rationale = (
        "Result documents must be a pure function of (config, trace) "
        "or retried/resharded runs stop being byte-identical and "
        "content-addressed caching breaks.  The clock may drive "
        "timeouts and lease aging, but its value must never be "
        "stored in a document, statistic, or serialized payload."
    )

    _CLOCK_ATTRS = {
        "time": frozenset(("time", "time_ns")),
        "datetime": frozenset(("now", "utcnow", "today")),
    }

    def _clock_calls(self, ctx: FileContext) -> Iterable[ast.Call]:
        time_aliases = import_aliases(ctx, "time")
        time_names = {
            name for name in names_imported_from(ctx, "time")
            if name in self._CLOCK_ATTRS["time"]}
        datetime_like = import_aliases(ctx, "datetime") | \
            names_imported_from(ctx, "datetime")
        for node in ctx.walk(ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in time_names:
                yield node
            elif isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) \
                        and base.id in time_aliases \
                        and func.attr in self._CLOCK_ATTRS["time"]:
                    yield node
                elif func.attr in self._CLOCK_ATTRS["datetime"]:
                    root = base
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) \
                            and root.id in datetime_like:
                        yield node

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for call in self._clock_calls(ctx):
            sink = self._document_sink(ctx, call)
            if sink is not None:
                yield self.finding(
                    ctx, call,
                    f"wall-clock reading flows into {sink}; result "
                    f"documents must be pure functions of "
                    f"(config, trace)")

    def _document_sink(self, ctx: FileContext,
                       call: ast.Call) -> str | None:
        previous: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, ast.Dict):
                return "a dict literal (a document under construction)"
            if isinstance(ancestor, ast.Call) and previous is not \
                    ancestor.func:
                name = call_name(ancestor)
                last = name.rsplit(".", 1)[-1] if name else (
                    ancestor.func.attr
                    if isinstance(ancestor.func, ast.Attribute)
                    else None)
                if last in _SINK_CALLEES:
                    return f"{last}()"
            if isinstance(ancestor, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                targets = (ancestor.targets
                           if isinstance(ancestor, ast.Assign)
                           else [ancestor.target])
                for target in targets:
                    if _mentions_result_word(ast.unparse(target)):
                        return f"'{ast.unparse(target)}'"
            if isinstance(ancestor, ast.stmt):
                return None  # statement boundary: a scheduling use
            previous = ancestor
        return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


@register
class BareSetIterationRule(Rule):
    """D103: iteration order of a set escaping into ordered output."""

    id = "D103"
    title = "iterating a bare set into order-sensitive output"
    rationale = (
        "Set iteration order depends on hash values (and, for str "
        "keys, on per-process hash randomization): a list, loop body "
        "with side effects, or joined string built from a bare set "
        "differs between runs.  Wrap the set in sorted() before "
        "iterating, or keep the consumer order-free (any/all/len/"
        "set)."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not _is_set_expr(node):
                continue
            consumer = _iteration_context(ctx, node)
            if consumer is not None:
                yield self.finding(
                    ctx, node,
                    f"set iteration order reaches {consumer}; wrap "
                    f"in sorted(...) or use an order-free consumer")


@register
class UnsortedListingRule(Rule):
    """D104: directory listings consumed in readdir order."""

    id = "D104"
    title = "unsorted os.listdir/glob/iterdir feeding ordered work"
    rationale = (
        "readdir order is filesystem- and history-dependent.  Queue "
        "scheduling, checkpoint scans, and anything serialized from "
        "a directory listing must iterate sorted(...) so every host "
        "(and every rerun) scans identically; order-free consumers "
        "(any/all/set/len) are exempt."
    )

    _LISTING_ATTRS = frozenset(
        ("glob", "rglob", "iglob", "iterdir", "listdir", "scandir"))

    def _is_listing_call(self, ctx: FileContext,
                         node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in self._LISTING_ATTRS:
            return True
        if isinstance(func, ast.Name):
            imported = (names_imported_from(ctx, "os")
                        | names_imported_from(ctx, "glob")
                        | names_imported_from(ctx, "pathlib"))
            return func.id in self._LISTING_ATTRS \
                and func.id in imported
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.Call):
            if not self._is_listing_call(ctx, node):
                continue
            consumer = _iteration_context(ctx, node)
            if consumer is not None:
                yield self.finding(
                    ctx, node,
                    f"directory listing consumed by {consumer} in "
                    f"readdir order; wrap in sorted(...) so every "
                    f"host scans identically")


@register
class UnsortedJsonRule(Rule):
    """D105: json.dumps without canonical key order."""

    id = "D105"
    title = "json.dumps without sort_keys=True"
    rationale = (
        "Specs, checkpoints, and result documents are hashed "
        "(canonical_digest), diffed, and byte-compared across "
        "backends; dict insertion order is an implementation detail "
        "of the writer, so every json.dumps in this codebase "
        "canonicalizes with sort_keys=True."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        dumps_names = {
            name for name in names_imported_from(ctx, "json")
            if name in ("dumps", "dump")}
        json_aliases = import_aliases(ctx, "json")
        for node in ctx.walk(ast.Call):
            func = node.func
            is_dumps = (
                (isinstance(func, ast.Name) and func.id in dumps_names)
                or (isinstance(func, ast.Attribute)
                    and func.attr in ("dumps", "dump")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in json_aliases))
            if not is_dumps:
                continue
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords)
            if not sorted_keys:
                yield self.finding(
                    ctx, node,
                    "json.dumps without sort_keys=True produces "
                    "non-canonical documents; every serialized dict "
                    "here may be hashed or byte-compared")
