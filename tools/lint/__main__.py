"""``python -m tools.lint`` — the zero-setup entry point."""

from tools.lint.cli import run

if __name__ == "__main__":
    raise SystemExit(run())
