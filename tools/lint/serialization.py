"""S-rules: serialization and queue-protocol safety.

The directory queue (:mod:`repro.exec.queue`) survives SIGKILL at any
instruction only because every shared-filesystem artifact is written
with the write-tmpfile-then-rename idiom, and resumable campaigns
survive version skew only because every serializable component
round-trips through a spec.  These rules make both contracts
mechanical:

* ``S201`` — inside the queue/checkpoint protocol layer, no bare
  ``open(path, "w")`` / ``.write_text()`` to a non-temporary target;
* ``S202`` — codec methods come in pairs (``to_spec``/``from_spec``,
  ``to_dict``/``from_dict``): a one-way codec cannot round-trip;
* ``S203`` — a class registered into a component registry must carry
  a ``name`` class attribute (the registry key *is* its spec form —
  specs and CLI flags reconstruct the component by that name).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from tools.lint.framework import (
    FileContext,
    Finding,
    Rule,
    register,
)

#: Modules implementing the shared-filesystem protocol (queue files,
#: leases, result documents, sweep checkpoints/manifests).  Only here
#: is a bare write a protocol violation; user-facing exports (e.g.
#: ``SweepResult.to_csv``) may write destinations directly.
_PROTOCOL_MODULES = ("repro.exec", "repro.serve.cache",
                     "repro.serve.jobs", "repro.sweep.runner")

#: Target names that mark the write as the first half of the atomic
#: write-then-rename idiom.
_TMP_TARGET_RE = re.compile(r"tmp|temp|part|scratch", re.IGNORECASE)

_WRITE_MODES = re.compile(r"[wax]")


def _in_protocol_layer(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _PROTOCOL_MODULES)


@register
class NonAtomicWriteRule(Rule):
    """S201: bare writes of protocol artifacts."""

    id = "S201"
    title = "non-atomic write of a queue/checkpoint artifact"
    rationale = (
        "A worker killed mid-write must leave the old artifact (or "
        "none), never truncated JSON that bricks every future "
        "resume.  Files in the queue/checkpoint protocol layer are "
        "written via atomic_write_json or an explicit tmp-file + "
        "os.replace; a bare open(path, 'w') or write_text on the "
        "final path races every reader on the shared mount."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_protocol_layer(ctx.module):
            return
        for node in ctx.walk(ast.Call):
            target = self._unsafe_write_target(node)
            if target is None:
                continue
            if _TMP_TARGET_RE.search(target):
                continue  # tmp-file half of write-then-rename
            yield self.finding(
                ctx, node,
                f"direct write to {target!r} in the protocol layer; "
                f"use atomic_write_json() or write a *.tmp file and "
                f"os.replace() it into place")

    def _unsafe_write_target(self, node: ast.Call) -> str | None:
        """The written path's source text, if this call writes."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if isinstance(mode, ast.Constant) \
                    and isinstance(mode.value, str) \
                    and _WRITE_MODES.search(mode.value):
                return ast.unparse(node.args[0]) if node.args else "?"
            return None
        if isinstance(func, ast.Attribute) \
                and func.attr in ("write_text", "write_bytes"):
            return ast.unparse(func.value)
        return None


#: Codec method pairs: defining one half without the other leaves a
#: component that can be serialized but never reconstructed (or the
#: reverse).
_CODEC_PAIRS = (("to_spec", "from_spec"), ("to_dict", "from_dict"))


@register
class OneWayCodecRule(Rule):
    """S202: to_spec/from_spec and to_dict/from_dict must pair up."""

    id = "S202"
    title = "one-way spec codec (to_* without from_*, or vice versa)"
    rationale = (
        "Serializable components round-trip: work units cross "
        "process and host boundaries as dicts, specs are the cache "
        "key of every future memoization layer.  A class with "
        "to_dict but no from_dict (or the reverse) silently becomes "
        "write-only; if the asymmetry is intended (a pure export), "
        "say so with a justified suppression."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.ClassDef):
            methods = {
                item.name for item in node.body
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
            for encode, decode in _CODEC_PAIRS:
                if encode in methods and decode not in methods:
                    yield self.finding(
                        ctx, node,
                        f"class {node.name} defines {encode}() but "
                        f"no {decode}(): the codec cannot round-trip")
                elif decode in methods and encode not in methods:
                    yield self.finding(
                        ctx, node,
                        f"class {node.name} defines {decode}() but "
                        f"no {encode}(): the codec cannot round-trip")


@register
class RegisteredClassNameRule(Rule):
    """S203: registry-registered classes must expose ``name``."""

    id = "S203"
    title = "registry-registered class without a name attribute"
    rationale = (
        "The registry key is the component's serialized form — CLI "
        "flags, JSON specs, and sweep axes all reconstruct it by "
        "name.  A registered class must carry a matching 'name' "
        "class attribute so instances can describe themselves and "
        "round-trip through specs."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.ClassDef):
            registered_as = self._registry_key(node)
            if registered_as is None:
                continue
            declared = self._declared_name(node)
            if declared is None:
                yield self.finding(
                    ctx, node,
                    f"class {node.name} is registered as "
                    f"{registered_as!r} but declares no 'name' class "
                    f"attribute; specs and describe() need it")
            elif declared not in ("?", registered_as):
                yield self.finding(
                    ctx, node,
                    f"class {node.name} registers as "
                    f"{registered_as!r} but declares name="
                    f"{declared!r}; the two must agree or specs "
                    f"resolve a different component than describe() "
                    f"reports")

    @staticmethod
    def _registry_key(node: ast.ClassDef) -> str | None:
        """The registration key when the class is decorated with
        ``@SOME_REGISTRY.register("key")`` (ALL_CAPS registry)."""
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "register" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id.isupper() \
                    and decorator.args \
                    and isinstance(decorator.args[0], ast.Constant) \
                    and isinstance(decorator.args[0].value, str):
                return decorator.args[0].value
        return None

    @staticmethod
    def _declared_name(node: ast.ClassDef) -> str | None:
        """The class-body ``name = "..."`` constant, if any."""
        for item in node.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(item, ast.Assign):
                targets, value = item.targets, item.value
            elif isinstance(item, ast.AnnAssign) and item.value:
                targets, value = [item.target], item.value
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == "name":
                    if isinstance(value, ast.Constant) \
                            and isinstance(value.value, str):
                        return value.value
                    return "?"  # dynamic; treat as declared
        return None
