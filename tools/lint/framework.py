"""resim-lint core: findings, rules, suppressions, and the runner.

The simulator's distributed story rests on invariants that are
*contracts*, not conventions — bit-identical execution across
backends, exact-sum counter merges, canonical serializable specs,
atomic write-then-rename queue artifacts.  The test suite checks them
differentially and after the fact; this framework checks them at
review time, by walking the AST of every file under ``src/`` with a
registry of project-specific rules (:mod:`tools.lint.determinism`,
:mod:`tools.lint.serialization`, :mod:`tools.lint.exactsum`).

Suppressions
------------

A finding is silenced per line with::

    risky_call()  # resim-lint: disable=D104 -- first-match scan, order irrelevant

or, for statements that don't fit a trailing comment, on the line
immediately above (a comment with nothing but whitespace before the
``#``)::

    # resim-lint: disable=S202 -- result export only; never re-read
    class SessionResult:

The justification after the rule list is **mandatory**: a disable
comment without one is itself a finding (:data:`RULE_UNJUSTIFIED`),
and a disable that silences nothing is flagged too
(:data:`RULE_UNUSED`) so stale suppressions cannot accumulate.

Everything here is standard library only — the linter must run in a
bare checkout (``python -m tools.lint``) with no install step.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator

#: Runner-implemented meta rules (reported like any other finding but
#: not registered: they cannot be disabled or selected away).
RULE_UNJUSTIFIED = "L001"
RULE_UNUSED = "L002"
#: A file that does not parse cannot be checked at all.
RULE_SYNTAX = "E999"

_SUPPRESS_RE = re.compile(
    r"#\s*resim-lint:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(.*)$"
)
#: A justification must contain at least one real word — punctuation
#: such as ``--`` alone does not explain anything.
_JUSTIFIED_RE = re.compile(r"[A-Za-z]{3}")


@dataclass(frozen=True, order=True)
# resim-lint: disable=S202 -- one-way export by design: findings are
# emitted into --format json output and never read back.
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


@dataclass
class Suppression:
    """One parsed ``# resim-lint: disable=...`` comment."""

    line: int           # line the suppression covers
    comment_line: int   # line the comment itself is on
    rules: frozenset[str]
    justified: bool
    used: bool = False


class FileContext:
    """One parsed source file plus everything rules need to know.

    ``module`` is the dotted module name the file would import as
    (``repro.exec.queue`` for ``src/repro/exec/queue.py``); scope-
    limited rules (e.g. the atomic-write rule, which only polices the
    queue/checkpoint protocol layer) match on it.  Parent links are
    attached to every AST node so rules can ask "what syntactic
    context does this expression sit in?" without carrying visitor
    state.
    """

    def __init__(self, path: str, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = ast.parse(source)  # SyntaxError handled by runner
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._resim_parent = node  # type: ignore[attr-defined]
        self.suppressions = _parse_suppressions(source)

    # -- tree navigation ----------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_resim_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's parents, innermost first, up to the module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """Every node in the file, optionally filtered by type."""
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node


def _parse_suppressions(source: str) -> list[Suppression]:
    """Extract disable comments via tokenize (immune to ``#`` inside
    string literals, which a regex over raw lines is not)."""
    suppressions: list[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [token for token in tokens
                    if token.type == tokenize.COMMENT]
    except tokenize.TokenError:  # runner reports the SyntaxError
        return []
    for token in comments:
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(","))
        row, col = token.start
        own_line = not lines[row - 1][:col].strip()
        # A trailing comment covers its own line; a comment alone on
        # a line covers the next *code* line (the statement it
        # precedes), skipping the rest of its own comment block and
        # blank lines so justifications may wrap.
        covered = row
        if own_line:
            covered = row + 1
            while covered <= len(lines) and (
                    not lines[covered - 1].strip()
                    or lines[covered - 1].lstrip().startswith("#")):
                covered += 1
        suppressions.append(Suppression(
            line=covered,
            comment_line=row,
            rules=rules,
            justified=bool(_JUSTIFIED_RE.search(match.group(2))),
        ))
    return suppressions


class Rule:
    """One invariant check over a single parsed file.

    Subclasses set ``id`` / ``title`` / ``rationale`` and implement
    :meth:`check`, yielding findings via :meth:`finding`.
    """

    id = "X000"
    title = "untitled rule"
    rationale = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A cross-file invariant checked once over the whole file set.

    Used where the contract spans modules — e.g. every counter field
    of ``SimulationStatistics`` must be covered by ``merge()`` and by
    the exact-sum set the conformance suite asserts over.
    """

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        raise NotImplementedError


#: The rule registry.  Modules register at import time via
#: :func:`register`; :func:`all_rules` is the stable, id-sorted view.
_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register one rule."""
    rule = rule_cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    return tuple(rule for _, rule in sorted(_RULES.items()))


# -- shared AST helpers ----------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None."""
    return dotted_name(node.func)


def import_aliases(ctx: FileContext, module: str) -> set[str]:
    """Names under which ``module`` is imported in this file
    (``import random`` -> {"random"}; ``import random as rnd`` ->
    {"rnd"})."""
    aliases: set[str] = set()
    for node in ctx.walk(ast.Import):
        for alias in node.names:
            if alias.name == module:
                aliases.add(alias.asname or alias.name)
    return aliases


def names_imported_from(ctx: FileContext, module: str) -> set[str]:
    """Local names bound by ``from <module> import ...``."""
    names: set[str] = set()
    for node in ctx.walk(ast.ImportFrom):
        if node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


# -- runner -----------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name a source path imports as.

    Resolution: the path component after a ``src`` directory if one
    is present (the repo layout), else from the last ``repro``
    component, else the bare stem.
    """
    parts = list(path.parts)
    start = None
    if "src" in parts:
        start = parts.index("src") + 1
    elif "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
    if start is None or start >= len(parts):
        dotted = [path.stem]
    else:
        dotted = list(parts[start:-1]) + [path.stem]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1] or [path.stem]
    return ".".join(dotted)


@dataclass
# resim-lint: disable=S202 -- one-way export by design: the report is
# emitted into --format json output and never read back.
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_checked: int
    suppressions_honored: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "suppressions_honored": self.suppressions_honored,
            "findings": [f.to_dict() for f in self.findings],
            "counts": counts,
        }


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted so that output order (and therefore CI diffs) is a pure
    function of the tree, never of readdir order — the linter holds
    itself to its own D104.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    unique: dict[Path, None] = {}
    for path in files:
        unique.setdefault(path, None)
    return list(unique)


def lint_contexts(contexts: list[FileContext], *,
                  select: set[str] | None = None,
                  extra_findings: Iterable[Finding] = (),
                  ) -> LintReport:
    """Run the registry over already-parsed contexts.

    ``select`` limits checking to the given rule ids; when it is
    active, unused-suppression reporting is disabled (a suppression
    for an unselected rule is not "unused").
    """
    rules = [rule for rule in all_rules()
             if select is None or rule.id in select]
    raw: list[Finding] = list(extra_findings)
    for ctx in contexts:
        for rule in rules:
            raw.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(contexts))

    by_path = {ctx.path: ctx for ctx in contexts}
    kept: list[Finding] = []
    honored = 0
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppression = None
        if ctx is not None:
            for candidate in ctx.suppressions:
                if finding.line == candidate.line and \
                        finding.rule in candidate.rules:
                    suppression = candidate
                    break
        if suppression is None:
            kept.append(finding)
            continue
        suppression.used = True
        if suppression.justified:
            honored += 1
        else:
            # An unjustified suppression does not silence: the
            # original finding stays AND the comment is flagged.
            kept.append(finding)

    for ctx in contexts:
        for suppression in ctx.suppressions:
            if not suppression.justified:
                kept.append(Finding(
                    path=ctx.path, line=suppression.comment_line,
                    col=1, rule=RULE_UNJUSTIFIED,
                    message="suppression without a justification: "
                            "write '# resim-lint: disable=RULE -- "
                            "why this is safe'"))
            elif not suppression.used and select is None:
                kept.append(Finding(
                    path=ctx.path, line=suppression.comment_line,
                    col=1, rule=RULE_UNUSED,
                    message="unused suppression (silences nothing); "
                            "remove it"))
    kept.sort()
    return LintReport(findings=kept, files_checked=len(contexts),
                      suppressions_honored=honored)


def lint_paths(paths: Iterable[str | Path], *,
               select: set[str] | None = None) -> LintReport:
    """Lint files/directories; the main entry point."""
    contexts: list[FileContext] = []
    parse_failures: list[Finding] = []
    files = collect_files(paths)
    for path in files:
        source = path.read_text()
        try:
            contexts.append(FileContext(
                str(path), module_name_for(path), source))
        except SyntaxError as error:
            parse_failures.append(Finding(
                path=str(path), line=error.lineno or 1,
                col=(error.offset or 0) + 1, rule=RULE_SYNTAX,
                message=f"file does not parse: {error.msg}"))
    report = lint_contexts(contexts, select=select,
                           extra_findings=parse_failures)
    report.files_checked = len(files)
    return report


def lint_source(source: str, *, module: str = "repro.fixture",
                path: str = "<fixture>",
                select: set[str] | None = None) -> list[Finding]:
    """Lint one in-memory snippet (the unit-test entry point)."""
    ctx = FileContext(path, module, source)
    return lint_contexts([ctx], select=select).findings


RuleCheck = Callable[[FileContext], Iterable[Finding]]
