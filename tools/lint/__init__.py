"""resim-lint: AST-based invariant linter for the ReSim codebase.

Run it over ``src/`` with either entry point::

    python -m tools.lint            # from the repo root
    resim lint                      # from the installed CLI

Three rule families enforce the contracts the distributed layer
depends on (see each module's docstring for the full rationale):

=====  ==============================================================
D1xx   determinism — seeded RNG only, no wall-clock in results, no
       set/readdir iteration order escaping, canonical JSON
S2xx   serialization/queue safety — atomic write-then-rename in the
       protocol layer, paired spec codecs, named registry components
X3xx   exact-sum statistics — integer-only Counter64 accumulation,
       merge() coverage of every statistics field
=====  ==============================================================

Suppress a finding per line with a *justified* disable comment::

    thing()  # resim-lint: disable=D104 -- why this is safe here

Unjustified (L001) and unused (L002) suppressions are findings
themselves, so the zero-findings CI gate also keeps suppressions
honest.
"""

from __future__ import annotations

# Importing the rule modules registers their rules.
from tools.lint import determinism, exactsum, serialization  # noqa: F401
from tools.lint.framework import (
    FileContext,
    Finding,
    LintReport,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
