"""Command-line front end shared by ``python -m tools.lint`` and
``resim lint``.

Exit status: 0 clean, 1 findings, 2 usage errors — the CI
``invariant-lint`` job simply runs it and fails on any non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from tools.lint import all_rules, lint_paths

#: The default lint target: the installable source tree, resolved
#: relative to the repo root so the gate works from any cwd.
REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_TARGET = REPO_ROOT / "src"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="resim lint",
        description="AST-based invariant linter enforcing the "
                    "determinism, serialization, and exact-sum "
                    "contracts (see tools/lint).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules with their rationale and exit")
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.title}")
        if rule.rationale:
            for line in rule.rationale.split(". "):
                text = line.strip().rstrip(".")
                if text:
                    print(f"      {text}.")
        print()
    return 0


def run(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    select = None
    if args.select:
        select = {rule.strip() for rule in args.select.split(",")
                  if rule.strip()}
        known = {rule.id for rule in all_rules()}
        unknown = select - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(sorted(known))}",
                  file=sys.stderr)
            return 2
    paths = args.paths or [DEFAULT_TARGET]
    missing = [str(path) for path in paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = lint_paths(paths, select=select)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (f"checked {report.files_checked} file(s): "
                   f"{len(report.findings)} finding(s), "
                   f"{report.suppressions_honored} justified "
                   f"suppression(s)")
        print(summary if report.clean else f"\n{summary}",
              file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(run())
