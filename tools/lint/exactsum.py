"""X-rules: exact-sum statistics.

Sharded design points are only correct because
:meth:`SimulationStatistics.merge` is *exact*: counters sum modulo
2^64 (integer arithmetic, the registers they model) and every field
of the dataclass is either merged generically or special-cased by
name.  Two failure modes are invisible to the type system:

* ``X301`` — float arithmetic leaking into :class:`Counter64`
  accumulation (floats round; 2^53 is smaller than 2^64; an exact-sum
  counter that ever held a float stops summing exactly);
* ``X302`` — a field added to ``SimulationStatistics`` that
  ``merge()`` does not know how to reduce, or an
  ``EXACT_SUM_COUNTERS`` entry naming a non-counter field (the
  conformance suite would assert over garbage);
* ``X303`` — drift between ``SimulationStatistics`` and the
  specialized engine generator's ``_RAW_COUNTERS`` tuple (a counter
  the generated code never produces would silently stay zero in the
  specialized tier, breaking the bit-identity contract);
* ``X304`` — float arithmetic leaking into the *weights* of a
  weighted ``merge(weights=...)`` (region sampling scales counters by
  integer cluster weights; a float weight would round the scaled
  counts and un-anchor the ``weights=1 == exact merge`` identity the
  regression suite pins).

``X302``/``X303`` are project rules: they cross-check
``repro.core.stats`` against ``repro.exec.shard`` and
``repro.core.specialize`` respectively, firing whenever the pair
drifts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.lint.framework import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    call_name,
    register,
)


def _float_taint(node: ast.AST) -> str | None:
    """Why this expression may be a float, or None if it looks
    integral.  Checks the expression tree for float literals, true
    division, and float() conversions — the three ways floats creep
    into counter math in practice."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value,
                                                       float):
            return f"float literal {sub.value!r}"
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return "true division (/)"
        if isinstance(sub, ast.Call) and call_name(sub) == "float":
            return "float() conversion"
    return None


@register
class FloatIntoCounterRule(Rule):
    """X301: float arithmetic reaching Counter64."""

    id = "X301"
    title = "float arithmetic mixed into Counter64 accumulation"
    rationale = (
        "Counter64 models a 64-bit hardware register: exact integer "
        "sums modulo 2^64 are what make shard merges associative and "
        "bit-identical to monolithic runs.  Python floats carry 53 "
        "bits of mantissa — one float in an accumulation silently "
        "rounds large counts and breaks the exact-sum contract.  Use "
        "integer arithmetic (//, int()) on the way in; derive rates "
        "as properties on the way out."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.Call):
            func = node.func
            is_counter_ctor = (
                call_name(node) is not None
                and call_name(node).rsplit(".", 1)[-1] == "Counter64")
            is_increment = (isinstance(func, ast.Attribute)
                            and func.attr == "increment")
            if not (is_counter_ctor or is_increment):
                continue
            for arg in list(node.args) + \
                    [kw.value for kw in node.keywords]:
                taint = _float_taint(arg)
                if taint is not None:
                    sink = ("Counter64()" if is_counter_ctor
                            else "Counter64.increment()")
                    yield self.finding(
                        ctx, node,
                        f"{taint} feeds {sink}; counters are exact "
                        f"64-bit integer registers — keep float math "
                        f"out of accumulation")
                    break


@register
class FloatWeightsIntoMergeRule(Rule):
    """X304: float arithmetic reaching merge(weights=...)."""

    id = "X304"
    title = "float arithmetic mixed into weighted-merge weights"
    rationale = (
        "A weighted merge scales each part's Counter64 values by an "
        "integer weight before the exact modulo-2^64 sum — that is "
        "what keeps weights=1 bit-identical to the unweighted merge "
        "and region estimates deterministic.  A float weight (a "
        "coverage fraction, a normalized cluster share) would round "
        "the scaled counts; derive integer weights (cluster sizes, "
        "segment counts) instead and normalize on the way out."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "merge"):
                continue
            for keyword in node.keywords:
                if keyword.arg != "weights":
                    continue
                taint = _float_taint(keyword.value)
                if taint is not None:
                    yield self.finding(
                        ctx, node,
                        f"{taint} feeds merge(weights=...); weights "
                        f"scale exact 64-bit counters and must be "
                        f"integers (cluster sizes, segment counts) — "
                        f"normalize after merging, not before")


def _class_def(ctx: FileContext, name: str) -> ast.ClassDef | None:
    for node in ctx.walk(ast.ClassDef):
        if node.name == name:
            return node
    return None


def _stats_fields(cls: ast.ClassDef) -> dict[str, str]:
    """Annotated dataclass fields of SimulationStatistics:
    ``{field_name: annotation_source}``."""
    fields: dict[str, str] = {}
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name):
            fields[item.target.id] = ast.unparse(item.annotation)
    return fields


def _merge_special_cases(cls: ast.ClassDef) -> set[str]:
    """Field names merge() handles by explicit name comparison
    (``spec.name == "shards"``-style), i.e. outside the generic
    counter/sampler reduction."""
    handled: set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef)
                and item.name == "merge"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            names = [op for op in operands
                     if isinstance(op, ast.Attribute)
                     and op.attr == "name"]
            constants = [op.value for op in operands
                         if isinstance(op, ast.Constant)
                         and isinstance(op.value, str)]
            if names and constants:
                handled.update(constants)
    return handled


def _string_tuple(ctx: FileContext,
                  name: str) -> tuple[ast.Assign | None, list[str]]:
    """A module-level ``NAME = ("a", "b", ...)`` assignment and its
    string entries."""
    for node in ctx.walk(ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name) \
                    and target.id == name:
                names = [
                    element.value
                    for element in ast.walk(node.value)
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)]
                return node, names
    return None, []


#: Field kinds merge() reduces generically (isinstance dispatch).
_MERGEABLE_KINDS = ("Counter64", "OccupancySampler")


@register
class MergeCompletenessRule(ProjectRule):
    """X302: every statistics field must be covered by merge()."""

    id = "X302"
    title = "SimulationStatistics field not covered by merge()"
    rationale = (
        "merge() reduces Counter64 and OccupancySampler fields "
        "generically and special-cases the rest by name; a new field "
        "of any other kind silently breaks shard reduction (at best "
        "a crash, at worst wrong statistics).  Separately, every "
        "name in EXACT_SUM_COUNTERS must be a Counter64 field — the "
        "conformance suite asserts exact equality over that set."
    )

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        stats_ctx = next((ctx for ctx in contexts
                          if ctx.module == "repro.core.stats"), None)
        if stats_ctx is None:
            return  # linting a subset that excludes the stats module
        cls = _class_def(stats_ctx, "SimulationStatistics")
        if cls is None:
            yield Finding(
                path=stats_ctx.path, line=1, col=1, rule=self.id,
                message="repro.core.stats no longer defines "
                        "SimulationStatistics; X302 cannot verify "
                        "merge completeness")
            return
        fields = _stats_fields(cls)
        special = _merge_special_cases(cls)
        for name, annotation in fields.items():
            kind = annotation.split("|")[0].strip()
            if kind in _MERGEABLE_KINDS:
                continue
            if name in special:
                continue
            line = next(
                (item.lineno for item in cls.body
                 if isinstance(item, ast.AnnAssign)
                 and isinstance(item.target, ast.Name)
                 and item.target.id == name), cls.lineno)
            yield Finding(
                path=stats_ctx.path, line=line, col=1, rule=self.id,
                message=f"field {name!r} ({annotation}) is neither a "
                        f"generically merged kind "
                        f"({'/'.join(_MERGEABLE_KINDS)}) nor "
                        f"special-cased by name in merge(); shard "
                        f"reduction would break")

        shard_ctx = next((ctx for ctx in contexts
                          if ctx.module == "repro.exec.shard"), None)
        if shard_ctx is None:
            return
        assign, counters = _string_tuple(shard_ctx,
                                         "EXACT_SUM_COUNTERS")
        if assign is None:
            yield Finding(
                path=shard_ctx.path, line=1, col=1, rule=self.id,
                message="repro.exec.shard no longer defines "
                        "EXACT_SUM_COUNTERS; X302 cannot verify the "
                        "conformance set")
            return
        for name in counters:
            if fields.get(name) != "Counter64":
                yield Finding(
                    path=shard_ctx.path, line=assign.lineno, col=1,
                    rule=self.id,
                    message=f"EXACT_SUM_COUNTERS entry {name!r} is "
                            f"not a Counter64 field of "
                            f"SimulationStatistics "
                            f"(found: {fields.get(name)!r}); the "
                            f"conformance suite would assert over "
                            f"garbage")


@register
class SpecializedCounterCoverageRule(ProjectRule):
    """X303: the specialized engine must produce every counter."""

    id = "X303"
    title = "SimulationStatistics counter not produced by the " \
            "specialized engine generator"
    rationale = (
        "The specialized tier is only admissible because it is "
        "bit-identical to the reference engine; its generated code "
        "returns a raw tuple that repro.core.specialize rebuilds "
        "into SimulationStatistics via the _RAW_COUNTERS name list.  "
        "A Counter64 field added to the statistics without a "
        "matching _RAW_COUNTERS entry (and generator support) would "
        "silently stay zero in specialized runs — a bit-identity "
        "break the type system cannot see.  Conversely, a "
        "_RAW_COUNTERS entry naming a non-counter field would "
        "crash (or corrupt) statistics reconstruction."
    )

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        stats_ctx = next((ctx for ctx in contexts
                          if ctx.module == "repro.core.stats"), None)
        spec_ctx = next((ctx for ctx in contexts
                         if ctx.module == "repro.core.specialize"),
                        None)
        if stats_ctx is None or spec_ctx is None:
            return  # linting a subset that excludes one side
        cls = _class_def(stats_ctx, "SimulationStatistics")
        if cls is None:
            return  # X302 already reports the missing class
        fields = _stats_fields(cls)
        assign, raw_counters = _string_tuple(spec_ctx, "_RAW_COUNTERS")
        if assign is None:
            yield Finding(
                path=spec_ctx.path, line=1, col=1, rule=self.id,
                message="repro.core.specialize no longer defines "
                        "_RAW_COUNTERS; X303 cannot verify that the "
                        "generated engines produce every counter")
            return
        for name, annotation in fields.items():
            if annotation.split("|")[0].strip() != "Counter64":
                continue
            if name not in raw_counters:
                yield Finding(
                    path=spec_ctx.path, line=assign.lineno, col=1,
                    rule=self.id,
                    message=f"Counter64 field {name!r} of "
                            f"SimulationStatistics is missing from "
                            f"_RAW_COUNTERS; specialized runs would "
                            f"leave it zero and break bit-identity "
                            f"with the reference engine")
        for name in raw_counters:
            if fields.get(name) != "Counter64":
                yield Finding(
                    path=spec_ctx.path, line=assign.lineno, col=1,
                    rule=self.id,
                    message=f"_RAW_COUNTERS entry {name!r} is not a "
                            f"Counter64 field of "
                            f"SimulationStatistics "
                            f"(found: {fields.get(name)!r}); "
                            f"statistics reconstruction would be "
                            f"wrong")
