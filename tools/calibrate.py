"""Calibration harness: measured vs. target IPC for the Table 1 configs.

Run with ``python tools/calibrate.py [budget]``.  Targets are the
paper-implied instructions-per-cycle values (MIPS / (f / latency)).
This script is a development aid, not part of the library.
"""

import sys
import time

from repro.bpred.unit import PERFECT_PREDICTOR
from repro.core import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT, ReSimEngine
from repro.workloads import SyntheticWorkload, get_profile

TARGET_4W = {"gzip": 1.94, "bzip2": 2.30, "parser": 1.66,
             "vortex": 1.96, "vpr": 1.70}
TARGET_2W = {"gzip": 1.46, "bzip2": 1.32, "parser": 1.19,
             "vortex": 1.20, "vpr": 1.37}
# Table 3 cross-check targets (V4, perfect memory, 4-wide):
TARGET_BITS = {"gzip": 41.74, "bzip2": 41.16, "parser": 43.66,
               "vortex": 47.14, "vpr": 43.52}
TARGET_WPRATIO = {"gzip": 26.37 / 23.26, "bzip2": 29.43 / 27.55,
                  "parser": 22.83 / 19.94, "vortex": 24.47 / 23.57,
                  "vpr": 24.44 / 20.38}


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    start = time.time()
    print("=== 4-wide, perfect memory, 2-level BP (Table 1 left) ===")
    print(f"{'bench':8s} {'IPC':>6s} {'tgt':>6s} {'trace/c':>8s} "
          f"{'wp-ratio':>8s} {'tgt':>6s} {'bits':>6s} {'tgt':>6s} "
          f"{'mis/br':>7s} {'mf/br':>7s}")
    for name in TARGET_4W:
        workload = SyntheticWorkload(get_profile(name), seed=7)
        gen = workload.generate(budget)
        stats = gen.statistics()
        res = ReSimEngine(PAPER_4WIDE_PERFECT, gen.records).run()
        s = res.stats
        wp_ratio = s.trace_throughput / s.ipc if s.ipc else 0.0
        print(f"{name:8s} {s.ipc:6.3f} {TARGET_4W[name]:6.2f} "
              f"{s.trace_throughput:8.3f} {wp_ratio:8.3f} "
              f"{TARGET_WPRATIO[name]:6.3f} "
              f"{stats.bits_per_instruction:6.2f} {TARGET_BITS[name]:6.2f} "
              f"{s.misprediction_rate:7.3f} "
              f"{int(s.misfetches)/max(1,int(s.committed_branches)):7.3f}")

    print()
    print("=== 2-wide, 32KB L1, perfect BP (Table 1 right) ===")
    print(f"{'bench':8s} {'IPC':>6s} {'tgt':>6s} {'il1':>7s} {'dl1':>7s}")
    for name in TARGET_2W:
        workload = SyntheticWorkload(
            get_profile(name), seed=7, predictor_config=PERFECT_PREDICTOR
        )
        gen = workload.generate(budget)
        res = ReSimEngine(PAPER_2WIDE_CACHE, gen.records).run()
        s = res.stats
        print(f"{name:8s} {s.ipc:6.3f} {TARGET_2W[name]:6.2f} "
              f"{s.icache_miss_rate:7.4f} {s.dcache_miss_rate:7.4f}")
    print(f"\n[{time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
