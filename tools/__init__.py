"""Development tooling for the ReSim reproduction (not shipped).

Everything under ``tools/`` runs from a source checkout only — it is
deliberately outside the installable ``src/`` tree and depends on
nothing but the standard library, so ``python -m tools.lint`` works
with no environment setup at all.
"""
