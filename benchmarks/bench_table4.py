"""Bench: regenerate Table 4 — FPGA area cost on xc4vlx40.

Per-stage/structure slices, 4-input LUTs and BRAMs as percentages of
the full design, plus the totals excluding caches (paper: 12 273
slices / 17 175 LUTs / 7 BRAMs) and the FAST area comparison (29 230
slices / 172 BRAMs — 2.4x and 24x ReSim).

The timed quantity is a full area estimation sweep across widths (the
kind of query a design-space exploration makes repeatedly).
"""

from dataclasses import replace

import pytest

from repro.core import PAPER_4WIDE_PERFECT
from repro.fpga.area import AreaEstimator
from repro.perf.comparison import FAST_AREA_BRAMS, FAST_AREA_SLICES

PAPER_SLICE_PCT = {"fetch": 25, "dispatch": 9, "issue": 5, "lsq": 14,
                   "writeback": 3, "commit": 2, "rename": 3, "rob": 13,
                   "lsq_store": 6, "bpred": 2, "dcache": 17, "icache": 1}


def test_table4_area_breakdown(benchmark):
    config = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)
    report = AreaEstimator(config).estimate()
    print("\n" + report.render())
    print(f"\npaper totals: 12273 slices / 17175 LUTs / 7 BRAMs")
    slice_ratio = FAST_AREA_SLICES / report.total_slices
    bram_ratio = FAST_AREA_BRAMS / report.total_brams
    print(f"FAST is {slice_ratio:.1f}x the slices and {bram_ratio:.0f}x "
          f"the BRAMs (paper: 2.4x / 24x)")

    # Calibration anchors.
    assert report.total_slices == pytest.approx(12_273, rel=0.02)
    assert report.total_luts == pytest.approx(17_175, rel=0.02)
    assert report.total_brams == 7
    for component, expected in PAPER_SLICE_PCT.items():
        assert report.percentage(component, "slices") == \
            pytest.approx(expected, abs=1.5), component
    assert slice_ratio == pytest.approx(2.4, abs=0.15)
    assert bram_ratio == pytest.approx(24.0, abs=1.0)

    def estimate_sweep():
        totals = []
        for width in (1, 2, 4, 8):
            swept = replace(config, width=width)
            totals.append(AreaEstimator(swept).estimate().total_slices)
        return totals

    totals = benchmark(estimate_sweep)
    assert totals == sorted(totals)  # area grows with width
