"""Bench: sweep throughput across execution backends.

Two harnesses in one file:

* the pytest benchmarks (run via ``pytest benchmarks/``) measure the
  historical question — process-pool fan-out vs. the serial loop on
  one 16-point grid — plus trace-generation amortization;
* the script mode (``PYTHONPATH=src python benchmarks/bench_sweep.py
  [--smoke]``) compares **all three** backends — serial, process
  pool, directory queue with 2 local workers — on the same grid,
  reporting points/sec plus each backend's pure coordinator overhead
  (a second run over the same results directory satisfies every
  point from checkpoints, so its wall clock is scheduling +
  checkpoint I/O with zero simulation).  Before printing anything it
  asserts the three result sets are **bit-identical**: the engine is
  a deterministic function of (config, trace), so any backend that
  changes a number is wrong, not fast.  CI runs ``--smoke`` as the
  distributed-execution smoke job.

Checkpoints are disabled as a variable in the fresh-run measurements
by giving every run its own results directory; resume behaviour is
covered by ``tests/test_sweep.py`` and ``tests/test_exec.py``.
"""

import argparse
import hashlib
import json
import os
import sys
import time

try:
    import pytest
except ImportError:  # script mode needs no pytest
    class _FixtureShim:
        """Keeps the @pytest.fixture decorators below importable."""
        @staticmethod
        def fixture(*args, **kwargs):
            return lambda fn: fn
    pytest = _FixtureShim()

from repro.sweep import SweepSpec, SweepRunner, stats_to_dict

BUDGET = 6000
WORKERS = 4


@pytest.fixture(scope="module")
def spec():
    return SweepSpec(axes={
        "rob_entries": (8, 16, 32, 64),
        "lsq_entries": (4, 8),
        "width": (2, 4),
    })


def _run(spec, directory, workers):
    runner = SweepRunner(spec, "gzip", results_dir=directory,
                         budget=BUDGET, workers=workers)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def test_sweep_parallel_speedup(spec, tmp_path):
    """16 configs, one shared trace: pool vs. serial wall clock."""
    serial_result, serial_s = _run(spec, tmp_path / "serial", 1)
    parallel_result, parallel_s = _run(spec, tmp_path / "parallel",
                                       WORKERS)

    assert len(serial_result) == len(parallel_result) == 16
    for a, b in zip(serial_result, parallel_result, strict=True):
        assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    print(f"\nsweep of {len(serial_result)} configs, budget {BUDGET}: "
          f"serial {serial_s:.2f}s, {WORKERS} workers {parallel_s:.2f}s "
          f"-> {speedup:.2f}x on {cores} core(s)")
    # Hard-assert only a loose floor: a loaded/oversubscribed host can
    # legitimately land under the ~linear ideal, and a wall-clock
    # flake here would read as a nonexistent regression.  The printed
    # measurement is the benchmark's real output (>= 2x on an idle
    # 4-core box).
    if cores >= WORKERS:
        assert speedup >= 1.3, (
            f"expected parallel speedup at {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def test_sweep_amortizes_trace_generation(spec, tmp_path, benchmark):
    """Trace generation happens once per sweep, not once per config:
    after `prepare_trace`, each additional design point costs only a
    simulation."""
    runner = SweepRunner(spec, "gzip", results_dir=tmp_path / "amort",
                         budget=BUDGET, workers=1)
    predictor = spec.base.predictor
    trace = runner.prepare_trace(predictor)
    assert trace.path.exists()

    generated = benchmark(runner.prepare_trace, predictor)
    # Subsequent calls reuse the persisted file (same path, same PC).
    assert generated.path == trace.path
    assert generated.start_pc == trace.start_pc


# ---------------------------------------------------------------------
# Script mode: serial vs. process pool vs. directory queue.


def _digest(result) -> str:
    """Order-independent digest of every point's full statistics."""
    blob = json.dumps(
        sorted((o.key, stats_to_dict(o.stats)) for o in result),
        sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _make_backend(name: str, base_dir, workers: int):
    from repro.exec import (
        DirectoryQueueBackend,
        ProcessPoolBackend,
        SerialBackend,
    )
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return ProcessPoolBackend(workers)
    return DirectoryQueueBackend(
        base_dir / "queue", workers=workers, poll_seconds=0.02,
        timeout=600)


def _timed_run(spec, workload, budget, backend, results_dir):
    runner = SweepRunner(spec, workload, results_dir=results_dir,
                         budget=budget, backend=backend)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def compare_backends(budget: int, workers: int) -> int:
    spec = SweepSpec(axes={
        "rob_entries": (8, 16, 32, 64),
        "width": (2, 4),
    })
    points = len(spec.expand())
    print(f"grid: {points} design points, workload gzip, "
          f"budget {budget}, {workers} worker(s) per parallel backend")

    import tempfile
    with tempfile.TemporaryDirectory() as raw:
        from pathlib import Path
        base = Path(raw)
        measurements = {}
        for name in ("serial", "pool", "queue"):
            directory = base / name
            result, fresh_s = _timed_run(
                spec, "gzip", budget,
                _make_backend(name, directory, workers), directory)
            # Second pass over the same directory: every point comes
            # from its checkpoint, so this is pure coordinator
            # overhead (scheduling + checkpoint I/O, no simulation).
            resumed, resume_s = _timed_run(
                spec, "gzip", budget,
                _make_backend(name, directory, workers), directory)
            assert resumed.resumed_count == points
            measurements[name] = (result, fresh_s, resume_s)

    digests = {name: _digest(result)
               for name, (result, _, _) in measurements.items()}
    if len(set(digests.values())) != 1:
        print(f"FAIL: backends disagree: {digests}", file=sys.stderr)
        return 1
    print(f"statistics digest (all backends): "
          f"{next(iter(digests.values()))}  [bit-identical OK]\n")

    serial_s = measurements["serial"][1]
    header = (f"{'backend':8s} {'fresh s':>8s} {'points/s':>9s} "
              f"{'vs serial':>9s} {'coord s':>8s}")
    print(header)
    print("-" * len(header))
    for name, (_, fresh_s, resume_s) in measurements.items():
        print(f"{name:8s} {fresh_s:8.2f} {points / fresh_s:9.2f} "
              f"{serial_s / fresh_s:8.2f}x {resume_s:8.2f}")
    print("\n(coord s = wall clock of a fully checkpointed rerun: "
          "the backend's scheduling overhead with zero simulation)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare sweep execution backends on one grid.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized budget")
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--workers", type=int, default=2,
                        help="workers for pool/queue backends")
    args = parser.parse_args(argv)
    budget = 1500 if args.smoke else args.budget
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    return compare_backends(budget, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
