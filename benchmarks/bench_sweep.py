"""Bench: parallel sweep throughput vs. the serial loop.

Measures wall clock for the same 16-point design-space sweep run the
way ``examples/design_space.py`` historically did (one simulation
after another, in-process) and through :class:`SweepRunner` with a
4-way process pool.  The engine is a deterministic function of
(config, trace), so both paths must produce identical statistics —
the speedup is free.

Checkpoints are disabled as a variable here by giving every run a
fresh results directory; resume behaviour is covered by
``tests/test_sweep.py``.
"""

import os
import time

import pytest

from repro.sweep import SweepSpec, SweepRunner, stats_to_dict

BUDGET = 6000
WORKERS = 4


@pytest.fixture(scope="module")
def spec():
    return SweepSpec(axes={
        "rob_entries": (8, 16, 32, 64),
        "lsq_entries": (4, 8),
        "width": (2, 4),
    })


def _run(spec, directory, workers):
    runner = SweepRunner(spec, "gzip", results_dir=directory,
                         budget=BUDGET, workers=workers)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def test_sweep_parallel_speedup(spec, tmp_path):
    """16 configs, one shared trace: pool vs. serial wall clock."""
    serial_result, serial_s = _run(spec, tmp_path / "serial", 1)
    parallel_result, parallel_s = _run(spec, tmp_path / "parallel",
                                       WORKERS)

    assert len(serial_result) == len(parallel_result) == 16
    for a, b in zip(serial_result, parallel_result):
        assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    print(f"\nsweep of {len(serial_result)} configs, budget {BUDGET}: "
          f"serial {serial_s:.2f}s, {WORKERS} workers {parallel_s:.2f}s "
          f"-> {speedup:.2f}x on {cores} core(s)")
    # Hard-assert only a loose floor: a loaded/oversubscribed host can
    # legitimately land under the ~linear ideal, and a wall-clock
    # flake here would read as a nonexistent regression.  The printed
    # measurement is the benchmark's real output (>= 2x on an idle
    # 4-core box).
    if cores >= WORKERS:
        assert speedup >= 1.3, (
            f"expected parallel speedup at {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def test_sweep_amortizes_trace_generation(spec, tmp_path, benchmark):
    """Trace generation happens once per sweep, not once per config:
    after `prepare_trace`, each additional design point costs only a
    simulation."""
    runner = SweepRunner(spec, "gzip", results_dir=tmp_path / "amort",
                         budget=BUDGET, workers=1)
    predictor = spec.base.predictor
    trace = runner.prepare_trace(predictor)
    assert trace.path.exists()

    generated = benchmark(runner.prepare_trace, predictor)
    # Subsequent calls reuse the persisted file (same path, same PC).
    assert generated.path == trace.path
    assert generated.start_pc == trace.start_pc
