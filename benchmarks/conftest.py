"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
expensive part — trace generation plus engine simulation for the five
SPECINT profiles on both configurations — is computed once per session
and shared; the ``benchmark`` fixtures then time representative slices
of the work (host-side performance) while the assertions check the
paper-shape criteria on the full results.

Budgets are sized for a laptop run of a couple of minutes; pass
``--repro-budget`` to scale them up for a tighter reproduction.
"""

import pytest

from repro.core import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT
from repro.perf.harness import evaluate_suite


def pytest_addoption(parser):
    parser.addoption(
        "--repro-budget", type=int, default=20_000,
        help="instructions per benchmark for table regeneration",
    )


@pytest.fixture(scope="session")
def budget(request):
    return request.config.getoption("--repro-budget")


@pytest.fixture(scope="session")
def shape_checks(budget):
    """Whether budgets are large enough for the paper-shape assertions.

    Below ~15k instructions the 32 KB caches never leave their cold
    phase and per-benchmark MIPS are dominated by compulsory misses;
    the tables still print, but the ordering/ratio assertions would
    only be testing warm-up noise.
    """
    return budget >= 15_000


@pytest.fixture(scope="session")
def suite_4wide(budget):
    """Table 1 left / Table 3 rows: 4-issue, perfect memory, 2-lev BP."""
    return evaluate_suite(PAPER_4WIDE_PERFECT, budget=budget)


@pytest.fixture(scope="session")
def suite_2wide(budget):
    """Table 1 right rows: 2-issue, 32KB L1, perfect BP."""
    return evaluate_suite(PAPER_2WIDE_CACHE, budget=budget)
