"""Bench: regenerate Table 2 — architectural simulator performance.

Published rows (PTLsim 0.27, sim-outorder 0.30, GEMS 0.07, FAST
1.2/2.79, A-Ports 4.7 MIPS) plus the two measured ReSim rows, and the
derived speedup claims (6.57x over FAST, ~5x over A-Ports).

Additionally measures what the paper could not: the *host* throughput
of this Python reproduction's own software baseline (the sim-outorder
analogue), timed by pytest-benchmark.
"""

import pytest

from repro.baseline import OutOrderBaseline
from repro.core import PAPER_4WIDE_PERFECT
from repro.perf.comparison import (
    comparison_table,
    render_table,
    speedup_over,
)
from repro.perf.harness import average_mips
from repro.workloads import SyntheticWorkload, get_profile


def test_table2_comparison(benchmark, suite_2wide, suite_4wide,
                           shape_checks):
    resim_rows = {
        "ReSim (PISA, 2-wide, perfect BP, Virtex5)":
            average_mips(suite_2wide, "xc5vlx50t"),
        "ReSim (PISA, 4-wide, 2-lev BP, Virtex5)":
            average_mips(suite_4wide, "xc5vlx50t"),
    }
    print("\n" + render_table(comparison_table(resim_rows)))

    v4_2wide = average_mips(suite_2wide, "xc4vlx40")
    fast_speedup = speedup_over(v4_2wide, "FAST (perfect BP)")
    aports_speedup = speedup_over(
        average_mips(suite_4wide, "xc5vlx50t"), "A-Ports"
    )
    print(f"\nReSim/FAST  speedup: {fast_speedup:5.2f}x (paper: 6.57x)")
    print(f"ReSim/A-Ports speedup: {aports_speedup:5.2f}x (paper: ~5x)")

    # Host-side throughput of the Python software baseline, for local
    # context next to the published 0.30 MIPS sim-outorder number.
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    def run_baseline():
        return OutOrderBaseline(PAPER_4WIDE_PERFECT).run(generation.records)

    result = benchmark(run_baseline)
    host_mips = result.instructions / benchmark.stats.stats.mean / 1e6
    print(f"Python baseline host speed: {host_mips:.3f} MIPS "
          f"(published sim-outorder on 2.4 GHz Xeon: 0.30 MIPS)")

    if shape_checks:
        assert fast_speedup > 5.0
        assert aports_speedup > 4.0
    for label, mips in resim_rows.items():
        assert mips > 10.0, label
