"""Bench: campaign-service caching — cold sweep vs. cache-served rerun.

Two harnesses in one file:

* the pytest benchmark (run via ``pytest benchmarks/``) drives a
  sweep through :class:`~repro.serve.CampaignService` twice in
  process and times the warm (100% cache-hit) pass;
* the script mode (``PYTHONPATH=src python benchmarks/bench_serve.py
  [--smoke]``) is the end-to-end measurement CI runs as the
  campaign-service smoke job: it starts a real HTTP server, submits
  one sweep, resubmits it, and reports both wall clocks.  Before
  printing anything it asserts the second job executed **zero**
  work units (every outcome cache-served) and that its result
  document is **byte-identical** to the cold one — the cache must be
  invisible in the numbers and only visible in the clock.

The interesting figure is the warm pass: it is pure key derivation +
store lookups + HTTP, so it bounds the service's per-query overhead
for a fully warmed campaign.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

try:
    import pytest
except ImportError:  # script mode needs no pytest
    class _FixtureShim:
        """Keeps the @pytest.fixture decorators below importable."""
        @staticmethod
        def fixture(*args, **kwargs):
            return lambda fn: fn
    pytest = _FixtureShim()

BUDGET = 6000
AXES = {"rob_entries": [8, 16, 32, 64], "width": [2, 4]}


def _request(budget: int) -> dict:
    return {"kind": "sweep", "workload": "gzip", "budget": budget,
            "axes": AXES}


# ---------------------------------------------------------------------
# pytest mode: in-process service, benchmark the warm pass.


@pytest.fixture(scope="module")
def warmed_service(tmp_path_factory):
    from repro.serve import CampaignService
    service = CampaignService(tmp_path_factory.mktemp("campaign"))
    job, _ = service.submit(_request(BUDGET))
    service.manager.wait(job.job_id, timeout=600)
    assert job.state == "done"
    yield service, job
    service.close()


def test_cache_served_resubmission(warmed_service, benchmark):
    """A warmed campaign answers a duplicate sweep without running
    one simulation; the benchmark times that fully cache-served
    pass."""
    service, cold_job = warmed_service

    def resubmit():
        job, _ = service.submit(_request(BUDGET))
        service.manager.wait(job.job_id, timeout=600)
        return job

    warm_job = benchmark(resubmit)
    assert warm_job.state == "done"
    assert warm_job.cache_misses == 0
    assert warm_job.cache_hits == len(
        service.manager.result_document(
            warm_job.job_id)["sweep"]["outcomes"])
    assert service.manager.result_document(warm_job.job_id) \
        == service.manager.result_document(cold_job.job_id)


# ---------------------------------------------------------------------
# Script mode: the real server over HTTP (CI's smoke job).


def smoke(budget: int) -> int:
    from repro.serve import (
        BackgroundServer,
        CampaignService,
        ServiceClient,
    )

    with tempfile.TemporaryDirectory() as raw:
        service = CampaignService(Path(raw) / "campaign")
        with BackgroundServer(service) as server:
            client = ServiceClient(*server.address)
            health = client.health()
            assert health["ok"], health
            print(f"campaign service up at "
                  f"http://{server.address[0]}:{server.address[1]} "
                  f"(engine {health['engine_version']})")

            runs = {}
            for label in ("cold", "warm"):
                start = time.perf_counter()
                answer = client.submit(_request(budget))
                client.wait(answer["job_id"])
                elapsed = time.perf_counter() - start
                envelope = client.result(answer["job_id"])
                runs[label] = (envelope, elapsed)

        (cold, cold_s), (warm, warm_s) = runs["cold"], runs["warm"]
        points = len(cold["result"]["sweep"]["outcomes"])

        if warm["cache"]["misses"] != 0 \
                or warm["cache"]["hits"] != points:
            print(f"FAIL: resubmission was not fully cache-served: "
                  f"{warm['cache']} over {points} points",
                  file=sys.stderr)
            return 1
        cold_doc = json.dumps(cold["result"], sort_keys=True)
        warm_doc = json.dumps(warm["result"], sort_keys=True)
        if cold_doc != warm_doc:
            print("FAIL: cache-served result differs from the "
                  "simulated one", file=sys.stderr)
            return 1

        print(f"sweep: {points} design points, workload gzip, "
              f"budget {budget}")
        print(f"  cold submit (simulated)    : {cold_s:8.2f}s  "
              f"cache {cold['cache']}")
        print(f"  warm submit (cache-served) : {warm_s:8.2f}s  "
              f"cache {warm['cache']}")
        print(f"  -> {cold_s / warm_s:.1f}x; results bit-identical "
              f"[OK]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Campaign service: cold vs. cache-served sweep.")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized budget")
    parser.add_argument("--budget", type=int, default=BUDGET)
    args = parser.parse_args(argv)
    return smoke(2000 if args.smoke else args.budget)


if __name__ == "__main__":
    raise SystemExit(main())
