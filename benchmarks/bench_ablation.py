"""Bench: the paper's inline ablations and design-choice studies.

1. **Serial vs. parallel fetch** (Section IV): the measured data point
   that motivated the cycle-serial design — a parallel 4-wide fetch
   costs 4x the area and runs 22% slower.
2. **Predictor-training point** (engine design choice): commit-time
   training (the paper's) vs. fetch-time training (exact generator
   agreement); the ablation quantifies the timing difference and the
   prediction divergence the commit-time choice introduces.
3. **Wrong-path block bound** (Section V.A): the conservative
   ROB+IFQ bound vs. smaller caps — smaller blocks discard wrong-path
   work that ReSim would have fetched, perturbing timing.
"""

from dataclasses import replace

import pytest

from repro.core import PAPER_4WIDE_PERFECT, ReSimEngine
from repro.fpga import VIRTEX4_LX40, parallel_fetch_ablation
from repro.fpga.area import AreaEstimator
from repro.workloads import SyntheticWorkload, get_profile


def test_parallel_fetch_ablation(benchmark):
    """Section IV's 4x-cost / 22%-slower parallel fetch experiment."""
    config = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)
    fetch_luts = AreaEstimator(config).estimate().stage("fetch").luts

    def sweep():
        return [parallel_fetch_ablation(width, fetch_luts, VIRTEX4_LX40)
                for width in (1, 2, 4, 8)]

    results = benchmark(sweep)
    print(f"\n{'N':>3} {'serial LUTs':>12} {'parallel LUTs':>14} "
          f"{'slowdown':>9}")
    for ablation in results:
        print(f"{ablation.width:>3} {ablation.serial_luts:>12} "
              f"{ablation.parallel_luts:>14} "
              f"{100 * ablation.slowdown:>8.1f}%")
    four_wide = results[2]
    assert four_wide.area_ratio == pytest.approx(4.0)
    assert four_wide.slowdown == pytest.approx(0.22, abs=0.001)


def test_predictor_training_point_ablation(benchmark):
    """Commit-time (paper) vs. fetch-time predictor training."""
    generation = SyntheticWorkload(get_profile("parser"),
                                   seed=7).generate(12_000)

    def run_both():
        commit = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records,
                             update_predictor_at_commit=True).run()
        fetch = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records,
                            update_predictor_at_commit=False).run()
        return commit, fetch

    commit, fetch = benchmark.pedantic(run_both, rounds=1, iterations=1)
    commit_div = int(commit.stats.prediction_divergence)
    branches = int(commit.stats.committed_branches)
    print(f"\ncommit-time training: {commit.major_cycles} cycles, "
          f"{commit_div} divergent predictions "
          f"({100 * commit_div / branches:.2f}% of branches)")
    print(f"fetch-time training : {fetch.major_cycles} cycles, "
          f"{int(fetch.stats.prediction_divergence)} divergent")

    assert int(fetch.stats.prediction_divergence) == 0
    assert commit_div / branches < 0.03
    # Wrong-path selection is trace-authoritative either way, so the
    # cycle difference comes from BTB/RAS staleness under commit-time
    # training (delayed target installs cost extra misfetch stalls) —
    # a real but bounded effect.
    ratio = commit.major_cycles / fetch.major_cycles
    assert 0.90 < ratio < 1.15
    assert int(commit.stats.misfetches) >= int(fetch.stats.misfetches)


def test_wrong_path_block_bound_ablation(benchmark):
    """The conservative ROB+IFQ bound vs. truncated blocks."""
    budget = 10_000

    def generate(bound_entries):
        workload = SyntheticWorkload(
            get_profile("vpr"), seed=7,
            rob_entries=bound_entries, ifq_entries=4,
        )
        return workload.generate(budget)

    def run_for_bound(bound_entries):
        generation = generate(bound_entries)
        result = ReSimEngine(PAPER_4WIDE_PERFECT,
                             generation.records).run()
        return generation, result

    print(f"\n{'block bound':>12} {'trace recs':>11} {'fetched wp':>11} "
          f"{'cycles':>8}")
    rows = []
    for rob_bound in (4, 8, 16):
        generation, result = run_for_bound(rob_bound)
        rows.append((rob_bound + 4, generation, result))
        print(f"{rob_bound + 4:>12} {generation.total_records:>11} "
              f"{int(result.stats.fetched_wrong_path):>11} "
              f"{result.major_cycles:>8}")

    benchmark.pedantic(run_for_bound, args=(16,), rounds=1, iterations=1)

    # Larger bounds mean more wrong-path records in the trace...
    sizes = [generation.total_records for __, generation, __ in rows]
    assert sizes == sorted(sizes)
    # ...but the timing impact is bounded: ReSim discards unfetched
    # records, so cycle counts move by far less than trace size.
    cycles = [result.major_cycles for __, __, result in rows]
    assert max(cycles) / min(cycles) < 1.10
