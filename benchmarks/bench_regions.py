"""Bench: what region sampling actually buys.

The point of :mod:`repro.exec.regions` is trading exactness for
records *not executed*.  This bench measures that trade on one stored
trace:

* the one-off analysis cost (``analyze_trace`` streaming pass, and
  the ``.rprof`` sidecar hit that amortizes it);
* full replay vs. region-sampled replay wall clock, with the
  records-executed ratio printed next to the speedup — the two should
  track each other, since the engine's cost is per-record;
* the estimate's IPC error, asserted within the documented bound
  (perfect-memory config; the cache configs' cold-structure bias is a
  README caveat, not a bench target).
"""

import pytest

from repro.core import PAPER_4WIDE_PERFECT
from repro.exec import RegionReducer, WorkUnit, execute_unit, \
    plan_regions, region_units
from repro.exec.regions import IPC_ERROR_BOUND
from repro.serialize import stats_from_dict
from repro.trace import analyze_trace, ensure_profile
from repro.workloads.tracegen import write_workload_trace

SEGMENT_RECORDS = 128


@pytest.fixture(scope="module")
def region_trace(tmp_path_factory, budget):
    path = tmp_path_factory.mktemp("bench-regions") / "vpr.rtrc"
    write_workload_trace("vpr", PAPER_4WIDE_PERFECT, path,
                         budget=budget, seed=11,
                         segment_records=SEGMENT_RECORDS)
    return path


def _unit(trace, directory, name="point"):
    return WorkUnit.for_trace(name, trace, "4wide-perfect",
                              directory / f"{name}.json")


def test_trace_analysis_cost(benchmark, region_trace):
    """The streaming profile pass — paid once per trace, then served
    from the ``.rprof`` sidecar."""
    profile = benchmark(analyze_trace, region_trace)
    print(f"\nprofiled {len(profile.segments)} segment(s), "
          f"{profile.total_records} record(s)")
    assert profile.total_records > 0


def test_sampled_vs_full_replay(benchmark, region_trace, tmp_path):
    """The headline trade: wall-clock speedup vs. records skipped."""
    profile = ensure_profile(region_trace)
    plan = plan_regions(region_trace, profile, regions=8, seed=0)

    full = execute_unit(_unit(region_trace, tmp_path, "full"))
    exact = stats_from_dict(full["stats"])

    def sampled_run():
        base = _unit(region_trace, tmp_path, "sampled")
        reducer = RegionReducer(base, plan)
        for unit in region_units(base, plan):
            reducer.add(execute_unit(unit))
        return reducer.merged()

    merged = benchmark(sampled_run)
    estimate = stats_from_dict(merged["stats"])
    error = abs(estimate.ipc - exact.ipc) / exact.ipc
    print(f"\nregions: {plan.count}, coverage "
          f"{100 * plan.coverage:.1f}% of {plan.total_records} "
          f"record(s)")
    print(f"IPC exact {exact.ipc:.4f} vs sampled {estimate.ipc:.4f} "
          f"({100 * error:.2f}% error, bound "
          f"{100 * IPC_ERROR_BOUND:.0f}%)")
    assert plan.coverage < 1.0
    assert error <= IPC_ERROR_BOUND
