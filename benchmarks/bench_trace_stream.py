"""Peak-RSS and throughput benchmark: streaming vs. in-memory ingestion.

The streaming trace pipeline's whole point is that simulating a trace
*file* should cost constant memory in the trace length (bounded by the
segment size), while the legacy path materializes every record as a
Python object first.  This harness measures both, honestly:

* the trace is generated **once**, streamed straight to a segmented v2
  file (`write_workload_trace`, so even generation never holds the
  record list);
* each ingestion mode then runs in a **fresh subprocess** — peak RSS
  is a process-wide high-water mark, so measuring both modes in one
  process would let the first pollute the second;
* the child reports its `ru_maxrss`, wall-clock, and a digest of the
  full `SimulationStatistics`; the parent asserts the digests are
  **bit-identical** before printing any numbers, because a fast wrong
  answer is not a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_stream.py             # ~1M records
    PYTHONPATH=src python benchmarks/bench_trace_stream.py --smoke     # CI-sized
    PYTHONPATH=src python benchmarks/bench_trace_stream.py --budget 2000000

A ``--budget 1000000`` run (the default) demonstrates the acceptance
criterion: a >1M-record trace simulated through ``FileSource`` with
peak RSS within a few MB of the empty-interpreter baseline, against
hundreds of MB for the materialized path.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SMOKE_BUDGET = 15_000
DEFAULT_BUDGET = 1_000_000
WORKLOAD = "gzip"
SEED = 7


def _rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_child(trace_path: str, mode: str) -> None:
    """Child entry: simulate one ingestion mode, print JSON."""
    from repro.core import PAPER_4WIDE_PERFECT
    from repro.serialize import stats_to_dict
    from repro.session import Simulation

    baseline_kb = _rss_kb()  # interpreter + imports, before any trace
    start = time.perf_counter()
    session = Simulation.for_trace_file(
        trace_path, PAPER_4WIDE_PERFECT,
        streaming=(mode == "streaming"),
    ).run()
    seconds = time.perf_counter() - start
    digest = hashlib.sha256(
        json.dumps(stats_to_dict(session.stats),
                   sort_keys=True).encode()).hexdigest()[:16]
    print(json.dumps({
        "mode": mode,
        "records": int(session.stats.trace_records_consumed),
        "cycles": session.major_cycles,
        "seconds": seconds,
        "baseline_rss_kb": baseline_kb,
        "peak_rss_kb": _rss_kb(),
        "stats_digest": digest,
    }))


def run_parent(budget: int, segment_records: int) -> int:
    from repro.workloads.tracegen import write_workload_trace
    from repro.core import PAPER_4WIDE_PERFECT

    with tempfile.TemporaryDirectory(prefix="resim-bench-") as tmp:
        trace_path = Path(tmp) / "bench.rtrc"
        print(f"generating {WORKLOAD} trace (budget={budget:,}, "
              f"segment_records={segment_records:,})...",
              file=sys.stderr)
        start = time.perf_counter()
        written = write_workload_trace(
            WORKLOAD, PAPER_4WIDE_PERFECT, trace_path,
            budget=budget, seed=SEED,
            segment_records=segment_records)
        print(f"  {written.record_count:,} records, "
              f"{written.bytes_written / 1e6:.1f} MB on disk, "
              f"{time.perf_counter() - start:.1f}s "
              f"(generator peak RSS {_rss_kb() / 1024:.0f} MB)",
              file=sys.stderr)

        results = {}
        for mode in ("in-memory", "streaming"):
            print(f"running {mode} child...", file=sys.stderr)
            proc = subprocess.run(
                [sys.executable, __file__, "--child", mode,
                 "--trace-file", str(trace_path)],
                capture_output=True, text=True, check=True)
            results[mode] = json.loads(proc.stdout)

    memory, streaming = results["in-memory"], results["streaming"]
    if memory["stats_digest"] != streaming["stats_digest"]:
        print("FAIL: streaming statistics differ from in-memory "
              f"({streaming['stats_digest']} != "
              f"{memory['stats_digest']})", file=sys.stderr)
        return 1

    print(f"\n{WORKLOAD} x {memory['records']:,} records, "
          f"{memory['cycles']:,} cycles "
          f"(stats digest {memory['stats_digest']}, identical)")
    header = (f"{'mode':12s} {'peak RSS':>12s} {'over baseline':>14s} "
              f"{'records/s':>12s} {'seconds':>9s}")
    print(header)
    print("-" * len(header))
    for mode, row in results.items():
        delta_mb = (row["peak_rss_kb"] - row["baseline_rss_kb"]) / 1024
        rate = row["records"] / row["seconds"]
        print(f"{mode:12s} {row['peak_rss_kb'] / 1024:10.1f} MB "
              f"{delta_mb:+12.1f} MB {rate:12,.0f} "
              f"{row['seconds']:9.2f}")
    ratio = ((memory["peak_rss_kb"] - memory["baseline_rss_kb"])
             / max(1, streaming["peak_rss_kb"]
                   - streaming["baseline_rss_kb"]))
    print(f"\nstreaming uses {ratio:.1f}x less trace-dependent memory")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="correct-path instructions to generate")
    parser.add_argument("--segment-records", type=int, default=4096)
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI-sized run (budget {SMOKE_BUDGET})")
    parser.add_argument("--child", choices=["in-memory", "streaming"],
                        help=argparse.SUPPRESS)
    parser.add_argument("--trace-file", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        run_child(args.trace_file, args.child)
        return 0
    budget = SMOKE_BUDGET if args.smoke else args.budget
    return run_parent(budget, args.segment_records)


if __name__ == "__main__":
    raise SystemExit(main())
