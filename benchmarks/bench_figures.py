"""Bench: regenerate Figures 2, 3 and 4 — the minor-cycle pipelines.

Prints each organization's timing diagram at the paper's 4-wide
configuration and the latency series across widths, then asserts the
formulas (2N+3, N+4, N+3), the validity constraints, and the
throughput ratios the organizations imply.

The timed quantity is the end-to-end projection of one engine run
through all three pipeline models — the analysis loop of Section IV.
"""

import pytest

from repro.core import PAPER_4WIDE_PERFECT, ReSimEngine
from repro.core.minorpipe import (
    ImprovedPipeline,
    OptimizedPipeline,
    SimplePipeline,
    select_pipeline,
)
from repro.fpga.device import VIRTEX5_LX50T
from repro.perf.throughput import ThroughputModel
from repro.workloads import SyntheticWorkload, get_profile


def test_figures_2_3_4_pipelines(benchmark):
    pipelines = [SimplePipeline(4), ImprovedPipeline(4),
                 OptimizedPipeline(4)]
    for pipeline in pipelines:
        pipeline.validate()
        print("\n" + pipeline.render())

    print("\nlatency series (minor cycles per major cycle):")
    print(f"{'N':>3} {'simple':>7} {'improved':>9} {'optimized':>10}")
    for width in (1, 2, 4, 8, 16):
        simple = SimplePipeline(width).minor_cycles_per_major
        improved = ImprovedPipeline(width).minor_cycles_per_major
        optimized = OptimizedPipeline(width).minor_cycles_per_major
        print(f"{width:>3} {simple:>7} {improved:>9} {optimized:>10}")
        assert simple == 2 * width + 3
        assert improved == width + 4
        assert optimized == width + 3

    # The paper's two evaluation latencies.
    assert OptimizedPipeline(4).minor_cycles_per_major == 7
    assert ImprovedPipeline(2).minor_cycles_per_major == 6
    # Configuration-driven selection matches the paper.
    assert select_pipeline(4, 3).name == "optimized"
    assert select_pipeline(2, 2).name == "improved"

    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(8000)
    result = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records).run()

    def project_all():
        return [
            ThroughputModel(VIRTEX5_LX50T, pipeline).report(result).mips
            for pipeline in pipelines
        ]

    simple_mips, improved_mips, optimized_mips = benchmark(project_all)
    print(f"\ngzip MIPS by organization: simple {simple_mips:.2f}, "
          f"improved {improved_mips:.2f}, optimized {optimized_mips:.2f}")
    assert optimized_mips / simple_mips == pytest.approx(11 / 7)
    assert optimized_mips / improved_mips == pytest.approx(8 / 7)
