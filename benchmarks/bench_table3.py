"""Bench: regenerate Table 3 — ReSim throughput statistics.

Per benchmark (V4, perfect memory, 4-issue): average trace bits per
instruction, simulation throughput *including* mis-speculated
instructions (the total trace instruction demands), and the resulting
trace input bandwidth in MBytes/s.  The paper's punchline — the ~1.1
Gb/s average demand exceeding plain Gigabit Ethernet — is asserted as
a band.

The timed quantity is the trace codec (encode + decode of a full
benchmark trace): the component that sets the bits/instruction column.
"""

import pytest

from repro.trace import decode_trace, encode_trace
from repro.workloads import SyntheticWorkload, get_profile

PAPER_TABLE3 = {"gzip": (41.74, 26.37, 137.56),
                "bzip2": (41.16, 29.43, 151.39),
                "parser": (43.66, 22.83, 124.58),
                "vortex": (47.14, 24.47, 144.20),
                "vpr": (43.52, 24.44, 132.94)}


def test_table3_throughput_statistics(benchmark, suite_4wide):
    print(f"\n{'SPEC':8s} {'bits/i':>7s} {'paper':>6s} "
          f"{'MIPS+wp':>8s} {'paper':>6s} {'MB/s':>8s} {'paper':>7s}")
    gb_demands = []
    for row in suite_4wide:
        bits = row.bits_per_instruction
        mips = row.mips_with_wrong_path("xc4vlx40")
        bandwidth = row.bandwidth_mbytes("xc4vlx40")
        paper_bits, paper_mips, paper_bw = PAPER_TABLE3[row.benchmark]
        gb_demands.append(mips * bits / 1000.0)
        print(f"{row.benchmark:8s} {bits:7.2f} {paper_bits:6.2f} "
              f"{mips:8.2f} {paper_mips:6.2f} "
              f"{bandwidth:8.2f} {paper_bw:7.2f}")

        # Internal identity of the table: MB/s = MIPS x bits / 8.
        assert bandwidth == pytest.approx(mips * bits / 8.0)
        # Wrong-path overhead in the paper's ballpark (~4-15%).
        assert 1.0 < mips / row.mips("xc4vlx40") < 1.35

    average_gbps = sum(gb_demands) / len(gb_demands)
    print(f"\naverage trace demand: {average_gbps:.2f} Gb/s "
          f"(paper: ~1.1 Gb/s > GigE)")
    assert 0.7 < average_gbps < 1.5

    bits = {row.benchmark: row.bits_per_instruction for row in suite_4wide}
    assert bits["vortex"] == max(bits.values())  # as in the paper

    # Host-side codec throughput over one full benchmark trace.
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    def codec_roundtrip():
        buffer, bit_length = encode_trace(generation.records)
        return len(decode_trace(buffer, bit_length))

    count = benchmark(codec_roundtrip)
    assert count == len(generation.records)
