"""Bench: regenerate Table 1 — ReSim simulation performance (MIPS).

Left portion: 4-issue, perfect memory, two-level BP; right portion:
2-issue, 32 KB L1 I/D, perfect BP (the FAST comparison).  Both on
Virtex-4 (84 MHz) and Virtex-5 (105 MHz).

The timed quantity is the end-to-end evaluation of one benchmark
(trace generation + engine + projection) — the host-side cost of one
table cell.  The printed output is the full regenerated table; the
assertions enforce the DESIGN.md shape criteria.
"""

import pytest

from repro.core import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT
from repro.perf.harness import average_mips, evaluate_benchmark

PAPER_LEFT_V4 = {"gzip": 23.26, "bzip2": 27.55, "parser": 19.94,
                 "vortex": 23.57, "vpr": 20.38}
PAPER_RIGHT_V4 = {"gzip": 20.44, "bzip2": 18.53, "parser": 16.70,
                  "vortex": 16.83, "vpr": 19.16}


def _print_portion(label, rows, paper):
    print(f"\n--- Table 1 {label} ---")
    print(f"{'SPEC':8s} {'V4 MIPS':>8s} {'paper':>7s} "
          f"{'V5 MIPS':>8s}")
    for row in rows:
        print(f"{row.benchmark:8s} {row.mips('xc4vlx40'):8.2f} "
              f"{paper[row.benchmark]:7.2f} "
              f"{row.mips('xc5vlx50t'):8.2f}")
    print(f"{'Average':8s} {average_mips(rows, 'xc4vlx40'):8.2f} "
          f"{sum(paper.values()) / len(paper):7.2f} "
          f"{average_mips(rows, 'xc5vlx50t'):8.2f}")


def test_table1_left_perfect_memory(benchmark, suite_4wide, budget):
    """4-issue / perfect memory / 2-level BP (paper avg: 22.94 / 28.67)."""
    rows = suite_4wide
    _print_portion("left (4-issue, perfect memory)", rows, PAPER_LEFT_V4)

    benchmark.pedantic(
        evaluate_benchmark, args=("gzip", PAPER_4WIDE_PERFECT),
        kwargs={"budget": budget}, rounds=1, iterations=1,
    )

    mips = {row.benchmark: row.mips("xc5vlx50t") for row in rows}
    assert mips["bzip2"] == max(mips.values())
    average = average_mips(rows, "xc5vlx50t")
    assert 20.0 < average < 40.0  # paper: 28.67
    for row in rows:
        assert row.mips("xc5vlx50t") / row.mips("xc4vlx40") == \
            pytest.approx(105.0 / 84.0)


def test_table1_right_cache_config(benchmark, suite_2wide, budget,
                                   shape_checks):
    """2-issue / 32KB L1 / perfect BP (paper avg: 18.33 / 22.92)."""
    rows = suite_2wide
    _print_portion("right (2-issue, 32KB L1, perfect BP)", rows,
                   PAPER_RIGHT_V4)

    benchmark.pedantic(
        evaluate_benchmark, args=("gzip", PAPER_2WIDE_CACHE),
        kwargs={"budget": budget}, rounds=1, iterations=1,
    )

    average = average_mips(rows, "xc5vlx50t")
    if shape_checks:
        mips = {row.benchmark: row.mips("xc5vlx50t") for row in rows}
        assert mips["gzip"] == max(mips.values())
        assert 15.0 < average < 30.0  # paper: 22.92
