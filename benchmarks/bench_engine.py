"""Bench: host-side throughput of the reproduction's components.

Not a paper table — this measures the Python implementation itself
(records simulated per host second for the engine, generator and
functional simulator), which is what a user of this library cares
about when sizing their own experiments.
"""

from repro.core import EngineObserver, PAPER_4WIDE_PERFECT, ReSimEngine
from repro.functional import SimBpred
from repro.workloads import SyntheticWorkload, get_profile, kernel_program


def test_engine_host_throughput(benchmark):
    """Engine-only: records per host second on a prepared trace.

    This is the zero-observer hot loop — the instrumentation API's
    guarded dispatch must keep it within noise (±2%) of the
    pre-observer engine; compare against
    ``test_engine_observer_overhead`` to see what attached hooks cost.
    """
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    def simulate():
        return ReSimEngine(PAPER_4WIDE_PERFECT,
                           generation.records).run().major_cycles

    cycles = benchmark(simulate)
    rate = len(generation.records) / benchmark.stats.stats.mean
    print(f"\nengine: {rate / 1e3:.1f}k records/s host throughput "
          f"({cycles} simulated cycles)")
    assert cycles > 0


def test_engine_observer_overhead(benchmark):
    """Same trace with every hook attached: the instrumented ceiling."""
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    class Count(EngineObserver):
        def __init__(self):
            self.cycles = self.commits = self.recoveries = 0

        def on_cycle(self, engine):
            self.cycles += 1

        def on_commit(self, engine, op):
            self.commits += 1

        def on_recovery(self, engine, branch):
            self.recoveries += 1

    def simulate():
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
        observer = Count()
        engine.add_observer(observer)
        engine.run()
        return observer

    observer = benchmark(simulate)
    rate = len(generation.records) / benchmark.stats.stats.mean
    print(f"\nengine+observers: {rate / 1e3:.1f}k records/s host "
          f"throughput ({observer.cycles} cycles, "
          f"{observer.commits} commits observed)")
    assert observer.cycles > 0
    assert observer.commits > 0


def test_generator_host_throughput(benchmark):
    """Synthetic trace generation: instructions per host second."""
    def generate():
        workload = SyntheticWorkload(get_profile("bzip2"), seed=7)
        return workload.generate(10_000).total_records

    records = benchmark(generate)
    rate = records / benchmark.stats.stats.mean
    print(f"\ngenerator: {rate / 1e3:.1f}k records/s host throughput")
    assert records >= 10_000


def test_functional_tracer_host_throughput(benchmark):
    """sim-bpred over a real kernel: instructions per host second."""
    program = kernel_program("matmul")

    def trace():
        return SimBpred().generate(program).total_records

    records = benchmark(trace)
    rate = records / benchmark.stats.stats.mean
    print(f"\nsim-bpred: {rate / 1e3:.1f}k records/s host throughput")
    assert records > 9000
