"""Bench: host-side throughput of the reproduction's components.

Two harnesses in one file:

* the pytest benchmarks (run via ``pytest benchmarks/``) measure
  records simulated per host second for the engine (reference and
  specialized tiers), generator and functional simulator — what a
  user of this library cares about when sizing their own experiments;
* the script mode (``PYTHONPATH=src python benchmarks/bench_engine.py
  --json BENCH_engine.json [--smoke]``) compares the reference
  interpreter against the config-specialized compiled engine on the
  same gzip trace, over **both** trace paths — the in-memory record
  list and the streaming :class:`FileSource` — and emits a
  machine-readable JSON document with records/s and speedups.  Before
  printing anything it asserts the two tiers are **bit-identical**
  (same full statistics document): a tier that changes a number is
  wrong, not fast.  CI runs ``--smoke`` inside the
  specialized-engine-parity job.
"""

import argparse
import json
import sys
import time

try:
    import pytest
except ImportError:  # script mode needs no pytest
    class _FixtureShim:
        """Keeps the @pytest decorators below importable."""
        @staticmethod
        def fixture(*args, **kwargs):
            return lambda fn: fn
    pytest = _FixtureShim()

from repro.core import (
    EngineObserver,
    PAPER_4WIDE_PERFECT,
    ReSimEngine,
    SpecializedEngine,
)
from repro.functional import SimBpred
from repro.workloads import SyntheticWorkload, get_profile, kernel_program


def test_engine_host_throughput(benchmark):
    """Engine-only: records per host second on a prepared trace.

    This is the zero-observer hot loop — the instrumentation API's
    guarded dispatch must keep it within noise (±2%) of the
    pre-observer engine; compare against
    ``test_engine_observer_overhead`` to see what attached hooks cost.
    """
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    def simulate():
        return ReSimEngine(PAPER_4WIDE_PERFECT,
                           generation.records).run().major_cycles

    cycles = benchmark(simulate)
    rate = len(generation.records) / benchmark.stats.stats.mean
    print(f"\nengine: {rate / 1e3:.1f}k records/s host throughput "
          f"({cycles} simulated cycles)")
    assert cycles > 0


def test_specialized_engine_host_throughput(benchmark):
    """The compiled fast path on the same trace: the config constants
    are literals, the stat counters are local ints, and statically
    dead branches (observers, perfect memory) are compiled out.  The
    first iteration pays codegen; the in-process cache amortizes it
    away for the measured steady state."""
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)
    reference = ReSimEngine(PAPER_4WIDE_PERFECT,
                            list(generation.records)).run()

    def simulate():
        return SpecializedEngine(PAPER_4WIDE_PERFECT,
                                 list(generation.records)).run()

    result = benchmark(simulate)
    # Bit-identity is the contract that makes the speedup meaningful.
    assert result.stats.major_cycles.value == \
        reference.stats.major_cycles.value
    assert result.stats.committed_instructions.value == \
        reference.stats.committed_instructions.value
    rate = len(generation.records) / benchmark.stats.stats.mean
    print(f"\nspecialized engine: {rate / 1e3:.1f}k records/s host "
          f"throughput ({result.major_cycles} simulated cycles)")


def test_engine_observer_overhead(benchmark):
    """Same trace with every hook attached: the instrumented ceiling."""
    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(10_000)

    class Count(EngineObserver):
        def __init__(self):
            self.cycles = self.commits = self.recoveries = 0

        def on_cycle(self, engine):
            self.cycles += 1

        def on_commit(self, engine, op):
            self.commits += 1

        def on_recovery(self, engine, branch):
            self.recoveries += 1

    def simulate():
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
        observer = Count()
        engine.add_observer(observer)
        engine.run()
        return observer

    observer = benchmark(simulate)
    rate = len(generation.records) / benchmark.stats.stats.mean
    print(f"\nengine+observers: {rate / 1e3:.1f}k records/s host "
          f"throughput ({observer.cycles} cycles, "
          f"{observer.commits} commits observed)")
    assert observer.cycles > 0
    assert observer.commits > 0


def test_generator_host_throughput(benchmark):
    """Synthetic trace generation: instructions per host second."""
    def generate():
        workload = SyntheticWorkload(get_profile("bzip2"), seed=7)
        return workload.generate(10_000).total_records

    records = benchmark(generate)
    rate = records / benchmark.stats.stats.mean
    print(f"\ngenerator: {rate / 1e3:.1f}k records/s host throughput")
    assert records >= 10_000


def test_functional_tracer_host_throughput(benchmark):
    """sim-bpred over a real kernel: instructions per host second."""
    program = kernel_program("matmul")

    def trace():
        return SimBpred().generate(program).total_records

    records = benchmark(trace)
    rate = records / benchmark.stats.stats.mean
    print(f"\nsim-bpred: {rate / 1e3:.1f}k records/s host throughput")
    assert records > 9000


# ---------------------------------------------------------------------
# Script mode: reference tier vs. specialized tier, both trace paths.


def _canonical_stats(result) -> str:
    from repro.serialize import stats_to_dict
    return json.dumps(stats_to_dict(result.stats), sort_keys=True)


def _best_of(repeats, run):
    """(best seconds, last result) over `repeats` fresh runs — min is
    the standard estimator for a deterministic workload under noise."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _measure_path(label, records, repeats, make_reference,
                  make_specialized):
    """One trace path: both tiers, bit-identity check, records/s."""
    ref_s, ref_result = _best_of(repeats,
                                 lambda: make_reference().run())
    spec_s, spec_result = _best_of(repeats,
                                   lambda: make_specialized().run())
    identical = _canonical_stats(ref_result) == \
        _canonical_stats(spec_result)
    return {
        "path": label,
        "records": records,
        "bit_identical": identical,
        "reference": {"seconds": ref_s,
                      "records_per_s": records / ref_s},
        "specialized": {"seconds": spec_s,
                        "records_per_s": records / spec_s},
        "speedup": ref_s / spec_s,
    }


def compare_engines(budget: int, repeats: int) -> dict:
    """Reference vs. specialized on gzip: in-memory + streaming."""
    import tempfile
    from pathlib import Path

    from repro.core.specialize import codegen_cache_info
    from repro.trace.fileio import write_trace_file
    from repro.trace.source import FileSource

    generation = SyntheticWorkload(get_profile("gzip"),
                                   seed=7).generate(budget)
    records = list(generation.records)

    measurements = [_measure_path(
        "in_memory", len(records), repeats,
        lambda: ReSimEngine(PAPER_4WIDE_PERFECT, list(records)),
        lambda: SpecializedEngine(PAPER_4WIDE_PERFECT, list(records)),
    )]
    with tempfile.TemporaryDirectory() as raw:
        path = Path(raw) / "gzip.trace"
        write_trace_file(path, records, benchmark="gzip", seed=7)
        measurements.append(_measure_path(
            "streaming_file", len(records), repeats,
            lambda: ReSimEngine(PAPER_4WIDE_PERFECT, FileSource(path)),
            lambda: SpecializedEngine(PAPER_4WIDE_PERFECT,
                                      FileSource(path)),
        ))

    return {
        "benchmark": "bench_engine",
        "workload": "gzip",
        "config": "4wide-perfect",
        "budget": budget,
        "repeats": repeats,
        "measurements": measurements,
        "codegen_cache": codegen_cache_info(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the reference and specialized engine "
                    "tiers on one gzip trace (in-memory + streaming).")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized budget, no speedup floor "
                             "(parity is still asserted)")
    parser.add_argument("--budget", type=int, default=10_000,
                        help="records in the measured trace")
    parser.add_argument("--repeats", type=int, default=3,
                        help="fresh runs per measurement (min wins)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable document here")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    budget = 2000 if args.smoke else args.budget

    document = compare_engines(budget, args.repeats)

    failures = [m["path"] for m in document["measurements"]
                if not m["bit_identical"]]
    if failures:
        print(f"FAIL: tiers disagree on {', '.join(failures)}",
              file=sys.stderr)
        return 1

    print(f"workload gzip, {budget} records, best of "
          f"{args.repeats} run(s); tiers bit-identical OK\n")
    header = (f"{'path':16s} {'ref rec/s':>10s} {'spec rec/s':>11s} "
              f"{'speedup':>8s}")
    print(header)
    print("-" * len(header))
    for m in document["measurements"]:
        print(f"{m['path']:16s} "
              f"{m['reference']['records_per_s']:10.0f} "
              f"{m['specialized']['records_per_s']:11.0f} "
              f"{m['speedup']:7.2f}x")

    if args.json:
        from pathlib import Path
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.json}")

    if not args.smoke:
        slow = [m for m in document["measurements"]
                if m["speedup"] < 2.0]
        if slow:
            detail = ", ".join(f"{m['path']}={m['speedup']:.2f}x"
                               for m in slow)
            print(f"FAIL: expected >=2x speedup on every path, got "
                  f"{detail}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
