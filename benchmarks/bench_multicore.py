"""Bench: the Section VI multi-core extension study.

Not a paper table — the paper poses multi-core support as future work
("it is possible to fit multiple ReSim instances in a single FPGA and
simulate multi-core systems").  This bench quantifies the design
point: instances per device, aggregate simulated MIPS, and the trace-
channel saturation the paper's Table 3 bandwidth analysis predicts.
"""

import pytest

from repro.core import PAPER_4WIDE_PERFECT
from repro.fpga.device import VIRTEX4_LX100, VIRTEX4_LX40
from repro.multicore import MultiCoreSimulator, TraceChannel

BENCHMARKS = ["gzip", "bzip2", "parser", "vortex", "vpr"]


def test_multicore_scaling(benchmark):
    simulator = MultiCoreSimulator(
        PAPER_4WIDE_PERFECT, VIRTEX4_LX100, TraceChannel(6.4)
    )
    # Placement: the paper's size claim scaled to the larger part.
    assert MultiCoreSimulator(
        PAPER_4WIDE_PERFECT, VIRTEX4_LX40
    ).max_instances == 1
    assert simulator.max_instances == 4

    def scaling():
        return simulator.scaling_study(BENCHMARKS, budget=4000)

    results = benchmark.pedantic(scaling, rounds=1, iterations=1)

    print(f"\n{'cores':>6} {'demand Gb/s':>12} {'service':>8} "
          f"{'aggregate MIPS':>15}")
    for result in results:
        print(f"{result.instances:>6} "
              f"{result.aggregate_demand_gbps:>12.2f} "
              f"{result.service_fraction:>8.2f} "
              f"{result.aggregate_mips:>15.2f}")

    # Unconstrained throughput scales ~linearly with instances.
    unconstrained = [r.aggregate_mips_unconstrained for r in results]
    assert unconstrained[-1] > 3.0 * unconstrained[0]
    # Per-instance demand is in the paper's ~1 Gb/s regime, so four
    # instances approach the 6.4 Gb/s link.
    per_instance = results[0].aggregate_demand_gbps
    assert 0.7 < per_instance < 1.5
    # A GigE-class link saturates with a single instance running a
    # paper-average-demand benchmark (bzip2 ≈ 1.15 Gb/s; gzip, the
    # lightest at ≈0.95 Gb/s, just squeezes through).
    gige = MultiCoreSimulator(
        PAPER_4WIDE_PERFECT, VIRTEX4_LX100, TraceChannel(1.0)
    ).run(["bzip2"], budget=4000)
    assert gige.bandwidth_limited
