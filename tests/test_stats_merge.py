"""Property tests for the mergeable-statistics layer.

The shard reducer (:mod:`repro.exec.shard`) is only sound if
:meth:`SimulationStatistics.merge` behaves like the sum it claims to
be: associative, order-insensitive, identity on a single part — and,
for a real trace split at segment boundaries, *exactly* equal to the
monolithic run on the trace-authoritative counters.  Hypothesis
drives all four properties.
"""

from dataclasses import fields

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import PAPER_4WIDE_PERFECT
from repro.core.stats import (
    Counter64,
    OccupancySampler,
    SimulationStatistics,
)
from repro.exec import EXACT_SUM_COUNTERS, plan_shards
from repro.serialize import stats_from_dict, stats_to_dict
from repro.session import Simulation
from repro.workloads.tracegen import write_workload_trace

#: Counters that sum exactly for ANY segment split (mispredictions
#: additionally require the planner's clean boundaries, so they are
#: excluded from the arbitrary-split property below and asserted in
#: the clean-plan test instead).
ANY_SPLIT_EXACT = tuple(name for name in EXACT_SUM_COUNTERS
                        if name != "mispredictions")

_COUNTER_NAMES = tuple(
    spec.name for spec in fields(SimulationStatistics)
    if spec.name not in ("ifq_occupancy", "rob_occupancy",
                         "lsq_occupancy", "shards"))
_SAMPLER_NAMES = ("ifq_occupancy", "rob_occupancy", "lsq_occupancy")

_counter = st.integers(min_value=0, max_value=(1 << 64) - 1)
_sampler = st.fixed_dictionaries({
    "total": st.integers(min_value=0, max_value=10**9),
    "samples": st.integers(min_value=0, max_value=10**6),
    "peak": st.integers(min_value=0, max_value=512),
})


@st.composite
def statistics(draw) -> SimulationStatistics:
    data = {name: draw(_counter) for name in _COUNTER_NAMES}
    data.update({name: draw(_sampler) for name in _SAMPLER_NAMES})
    return stats_from_dict(data)


class TestMergeAlgebra:
    @given(a=statistics(), b=statistics(), c=statistics())
    def test_merge_is_associative(self, a, b, c):
        left = a.merge([b]).merge([c])
        right = a.merge([b.merge([c])])
        flat = a.merge([b, c])
        assert left == right == flat

    @given(a=statistics(), b=statistics(), c=statistics())
    def test_merge_is_order_insensitive(self, a, b, c):
        assert a.merge([b, c]) == c.merge([b, a]) == b.merge([a, c])

    @given(a=statistics())
    def test_merging_one_part_is_identity(self, a):
        merged = a.merge()
        assert merged == a
        assert merged is not a  # a copy, not the same object

    @given(a=statistics(), b=statistics())
    def test_counters_wrap_like_the_registers_they_model(self, a, b):
        merged = a.merge([b])
        for name in _COUNTER_NAMES:
            expected = (int(getattr(a, name))
                        + int(getattr(b, name))) & ((1 << 64) - 1)
            assert int(getattr(merged, name)) == expected

    @given(a=statistics(), b=statistics())
    def test_round_trip_preserves_merged_document(self, a, b):
        merged = a.merge([b], shards=[{"index": 0}, {"index": 1}])
        assert stats_from_dict(stats_to_dict(merged)) == merged

    def test_explicit_shards_override_and_concatenation(self):
        a = SimulationStatistics(shards=[{"index": 0}])
        b = SimulationStatistics(shards=[{"index": 1}])
        assert a.merge([b]).shards == [{"index": 0}, {"index": 1}]
        override = a.merge([b], shards=[{"index": 9}])
        assert override.shards == [{"index": 9}]
        assert not SimulationStatistics().merge(
            [SimulationStatistics()]).sharded


_weight = st.integers(min_value=0, max_value=1 << 20)


class TestWeightedMergeAlgebra:
    """The weighted merge (region sampling's reducer) must stay
    anchored to the exact merge: all-ones weights ARE the exact merge,
    weights scale counters exactly (mod 2^64), zero weight means zero
    contribution, and weighted provenance survives serialization."""

    @given(a=statistics(), b=statistics(), c=statistics())
    def test_unit_weights_reduce_to_exact_merge(self, a, b, c):
        exact = a.merge([b, c])
        weighted = a.merge([b, c], weights=[1, 1, 1])
        assert weighted == exact
        assert stats_to_dict(weighted) == stats_to_dict(exact)

    @given(a=statistics(), b=statistics(),
           wa=_weight, wb=_weight)
    def test_counters_scale_then_wrap(self, a, b, wa, wb):
        merged = a.merge([b], weights=[wa, wb])
        for name in _COUNTER_NAMES:
            expected = (wa * int(getattr(a, name))
                        + wb * int(getattr(b, name))) & ((1 << 64) - 1)
            assert int(getattr(merged, name)) == expected

    @given(a=statistics(), b=statistics(), c=statistics(),
           weights=st.tuples(_weight, _weight, _weight))
    def test_weighted_merge_is_order_insensitive(self, a, b, c,
                                                 weights):
        wa, wb, wc = weights
        forward = a.merge([b, c], weights=[wa, wb, wc])
        backward = c.merge([b, a], weights=[wc, wb, wa])
        assert forward == backward

    @given(a=statistics(), b=statistics(), w=_weight)
    def test_zero_weight_part_contributes_nothing(self, a, b, w):
        alone = a.merge([], weights=[max(w, 1)])
        with_ghost = a.merge([b], weights=[max(w, 1), 0])
        # Counters and pooled samples agree; the ghost may only leave
        # its (excluded-from-merge) structural trace nowhere.
        assert stats_to_dict(alone) == stats_to_dict(with_ghost)

    @given(a=statistics(), b=statistics(),
           wa=st.integers(min_value=1, max_value=64),
           wb=st.integers(min_value=1, max_value=64))
    def test_samplers_pool_weight_scaled_raw_state(self, a, b, wa, wb):
        merged = a.merge([b], weights=[wa, wb])
        for name in _SAMPLER_NAMES:
            total_a, samples_a = getattr(a, name).raw()
            total_b, samples_b = getattr(b, name).raw()
            assert getattr(merged, name).raw() == (
                wa * total_a + wb * total_b,
                wa * samples_a + wb * samples_b)
            assert getattr(merged, name).peak == max(
                getattr(a, name).peak, getattr(b, name).peak)

    @given(a=statistics(), b=statistics(),
           weights=st.tuples(_weight, _weight))
    def test_weighted_provenance_round_trips(self, a, b, weights):
        provenance = [{"index": 0, "weight": weights[0]},
                      {"index": 1, "weight": weights[1]}]
        merged = a.merge([b], weights=list(weights), shards=provenance)
        restored = stats_from_dict(stats_to_dict(merged))
        assert restored == merged
        assert restored.shards == provenance

    def test_weight_validation(self):
        a, b = SimulationStatistics(), SimulationStatistics()
        with pytest.raises(ValueError):
            a.merge([b], weights=[1])          # wrong count
        with pytest.raises(ValueError):
            a.merge([b], weights=[1, -2])      # negative
        with pytest.raises(TypeError):
            a.merge([b], weights=[1, True])    # bool is not a count
        with pytest.raises(TypeError):
            a.merge([b], weights=[1, 2.0])     # float rounds


class TestOccupancyPooling:
    @given(samplers=st.lists(_sampler, min_size=1, max_size=6))
    def test_pooled_average_is_weighted_mean(self, samplers):
        parts = [OccupancySampler(**data) for data in samplers]
        merged = parts[0].merge(parts[1:])
        total = sum(data["total"] for data in samplers)
        weight = sum(data["samples"] for data in samplers)
        assert merged.raw() == (total, weight)
        expected = total / weight if weight else 0.0
        assert merged.average == pytest.approx(expected)
        assert merged.peak == max(data["peak"] for data in samplers)

    def test_hand_computed_weighted_mean(self):
        # Shard 1 averages 4.0 over 10 cycles, shard 2 averages 8.0
        # over 30 cycles: the pooled average must weight by cycles
        # (7.0), not average the averages (6.0).
        one = OccupancySampler(total=40, samples=10, peak=6)
        two = OccupancySampler(total=240, samples=30, peak=9)
        merged = one.merge([two])
        assert merged.average == pytest.approx(7.0)
        assert merged.average != pytest.approx(6.0)
        assert merged.peak == 9


# -- real-trace splits ------------------------------------------------

BUDGET = 1200
SEGMENT_RECORDS = 32

_trace_state: dict = {}


@pytest.fixture(scope="module")
def split_trace(tmp_path_factory):
    """A segmented gzip trace plus its monolithic statistics."""
    if not _trace_state:
        path = tmp_path_factory.mktemp("merge") / "gzip.rtrc"
        written = write_workload_trace(
            "gzip", PAPER_4WIDE_PERFECT, path, budget=BUDGET, seed=7,
            segment_records=SEGMENT_RECORDS)
        mono = Simulation.for_trace_file(path).run()
        _trace_state["path"] = path
        _trace_state["segments"] = (written.record_count
                                    + SEGMENT_RECORDS - 1) \
            // SEGMENT_RECORDS
        _trace_state["mono"] = stats_to_dict(mono.stats)
    return _trace_state


def _run_ranges(path, ranges) -> SimulationStatistics:
    parts = [Simulation.for_trace_file(path, segments=span).run().stats
             for span in ranges]
    return parts[0].merge(parts[1:])


class TestTraceSplits:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_segment_splits_sum_exactly(self, data,
                                                  split_trace):
        segments = split_trace["segments"]
        cuts = data.draw(st.lists(
            st.integers(min_value=1, max_value=segments - 1),
            max_size=4, unique=True).map(sorted))
        edges = [0, *cuts, segments]
        ranges = [(edges[i], edges[i + 1])
                  for i in range(len(edges) - 1)]
        merged = stats_to_dict(_run_ranges(split_trace["path"], ranges))
        for name in ANY_SPLIT_EXACT:
            assert merged[name] == split_trace["mono"][name], (
                f"{name}: sharded {merged[name]} != monolithic "
                f"{split_trace['mono'][name]} for split {ranges}"
            )

    @pytest.mark.parametrize("shards", (2, 3, 4))
    def test_clean_planned_splits_sum_mispredictions_too(
            self, split_trace, shards):
        plan = plan_shards(split_trace["path"], shards)
        merged = stats_to_dict(
            _run_ranges(split_trace["path"], plan.ranges))
        for name in EXACT_SUM_COUNTERS:
            assert merged[name] == split_trace["mono"][name], (
                f"{name}: sharded {merged[name]} != monolithic "
                f"{split_trace['mono'][name]} under {plan}"
            )
