"""Region-sampled simulation conformance suite.

Pins the three promises of :mod:`repro.exec.regions`:

* **planning is deterministic** — a fixed ``(profile, regions, seed,
  warmup)`` tuple always yields the same plan, and the plan's weights
  partition the trace's segments exactly;
* **a sampled run is cheap and close** — on a >=64-segment trace the
  default plan executes at most 35% of the records, and its weighted
  IPC estimate lands within :data:`IPC_ERROR_BOUND` of the full
  replay (on a perfect-memory config; cache configs carry a
  documented cold-structure bias, see the README);
* **estimates never impersonate exact results** — merged documents
  carry a ``sampled`` marker, and a region unit's campaign cache key
  can never collide with the full run's key.
"""

from __future__ import annotations

import pytest

from repro.core.config import PAPER_4WIDE_PERFECT
from repro.serialize import stats_from_dict
from repro.exec import (
    ExecError,
    RegionPlan,
    RegionReducer,
    WorkUnit,
    execute_unit,
    merge_region_documents,
    plan_regions,
    region_units,
)
from repro.exec.regions import IPC_ERROR_BOUND, region_unit_id
from repro.serve.canon import cache_key
from repro.trace import ensure_profile, trace_content_digest
from repro.workloads.tracegen import write_workload_trace

BUDGET = 12_000
SEGMENT_RECORDS = 128
CONFIG = "4wide-perfect"


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("regions") / "vpr.rtrc"
    write_workload_trace("vpr", PAPER_4WIDE_PERFECT, path,
                         budget=BUDGET, seed=11,
                         segment_records=SEGMENT_RECORDS)
    return path


@pytest.fixture(scope="module")
def profile(trace):
    return ensure_profile(trace)


@pytest.fixture(scope="module")
def plan(trace, profile):
    return plan_regions(trace, profile, regions=8, seed=0)


def _unit(trace, directory, name="point"):
    return WorkUnit.for_trace(name, trace, CONFIG,
                              directory / f"{name}.json")


@pytest.fixture(scope="module")
def full_result(trace, tmp_path_factory):
    work = tmp_path_factory.mktemp("full")
    return execute_unit(_unit(trace, work))


@pytest.fixture(scope="module")
def sampled_result(trace, plan, tmp_path_factory):
    work = tmp_path_factory.mktemp("sampled")
    reducer = RegionReducer(_unit(trace, work), plan)
    for unit in region_units(_unit(trace, work), plan):
        reducer.add(execute_unit(unit))
    return reducer.merged()


class TestPlanning:
    def test_plan_is_deterministic(self, trace, profile, plan):
        assert plan_regions(trace, profile, regions=8, seed=0) == plan

    def test_seed_is_part_of_the_function(self, trace, profile, plan):
        reseeded = plan_regions(trace, profile, regions=8, seed=1)
        assert reseeded.seed == 1
        assert sum(r.weight for r in reseeded.regions) == \
            reseeded.total_segments

    def test_weights_partition_the_segments(self, plan):
        assert sum(r.weight for r in plan.regions) == \
            plan.total_segments
        for region in plan.regions:
            assert region.warm_lo <= region.lo < region.hi

    def test_plan_records_the_trace_identity(self, trace, plan):
        assert plan.trace_digest == trace_content_digest(trace)

    def test_invalid_parameters_rejected(self, trace, profile):
        with pytest.raises(ExecError, match="regions"):
            plan_regions(trace, profile, regions=0)
        with pytest.raises(ExecError, match="warmup"):
            plan_regions(trace, profile, warmup_segments=-1)

    def test_weights_must_partition(self, plan):
        regions = plan.regions
        broken = regions[0].__class__(
            **{**regions[0].__dict__, "weight": regions[0].weight + 1})
        with pytest.raises(ExecError, match="sum"):
            RegionPlan(trace_path=plan.trace_path,
                       trace_digest=plan.trace_digest, seed=plan.seed,
                       total_segments=plan.total_segments,
                       total_records=plan.total_records,
                       regions=(broken, *regions[1:]))


class TestRegionUnits:
    def test_units_carry_slice_warmup_and_weight(self, trace, plan,
                                                 tmp_path):
        base = _unit(trace, tmp_path)
        units = region_units(base, plan)
        assert len(units) == plan.count
        for unit, region in zip(units, plan.regions, strict=True):
            assert unit.unit_id == region_unit_id(
                base.unit_id, region.index, plan.count)
            assert unit.spec["segments"] == [region.warm_lo, region.hi]
            if region.warmup_instructions:
                assert unit.spec["warmup_instructions"] == \
                    region.warmup_instructions
            assert unit.tags["region"]["weight"] == region.weight

    def test_restricted_base_refused(self, trace, plan, tmp_path):
        sliced = WorkUnit.for_trace("point", trace, CONFIG,
                                    tmp_path / "point.json",
                                    segments=(0, 2))
        with pytest.raises(ExecError, match="segments"):
            region_units(sliced, plan)


class TestConformance:
    def test_trace_is_big_enough_to_mean_something(self, plan):
        assert plan.total_segments >= 64

    def test_sampled_run_executes_at_most_35_percent(self, plan):
        assert plan.coverage <= 0.35, plan.describe()

    def test_ipc_error_within_documented_bound(self, full_result,
                                               sampled_result):
        exact = stats_from_dict(full_result["stats"]).ipc
        estimate = stats_from_dict(sampled_result["stats"]).ipc
        assert exact > 0
        error = abs(estimate - exact) / exact
        assert error <= IPC_ERROR_BOUND, (
            f"sampled IPC {estimate:.4f} vs exact {exact:.4f}: "
            f"{100 * error:.2f}% > {100 * IPC_ERROR_BOUND:.0f}%")

    def test_sampled_document_is_marked_as_estimate(self,
                                                    sampled_result,
                                                    plan):
        assert sampled_result["sampled"] == {
            "regions": plan.count,
            "segments": plan.total_segments,
        }

    def test_sampled_merge_is_deterministic(self, trace, plan,
                                            sampled_result, tmp_path):
        reducer = RegionReducer(_unit(trace, tmp_path), plan)
        for unit in region_units(_unit(trace, tmp_path), plan):
            reducer.add(execute_unit(unit))
        again = reducer.merged()
        assert again["stats"] == sampled_result["stats"]
        assert again["sampled"] == sampled_result["sampled"]


class TestCacheKeying:
    def test_region_keys_never_collide_with_the_full_run(self, trace,
                                                         plan,
                                                         tmp_path):
        digest = trace_content_digest(trace)
        base = _unit(trace, tmp_path)
        full_key = cache_key(base.spec, trace_digest=digest)
        region_keys = {
            cache_key(unit.spec, trace_digest=digest)
            for unit in region_units(base, plan)
        }
        assert full_key not in region_keys
        assert len(region_keys) == plan.count  # pairwise distinct too


class TestMergeValidation:
    def test_incomplete_reducer_refuses_to_merge(self, trace, plan,
                                                 tmp_path):
        reducer = RegionReducer(_unit(trace, tmp_path), plan)
        assert not reducer.complete
        with pytest.raises(ExecError):
            reducer.merged()

    def test_weightless_document_refused(self, trace, plan, tmp_path):
        unit = region_units(_unit(trace, tmp_path), plan)[0]
        payload = execute_unit(unit)
        stripped = {key: value for key, value in payload.items()
                    if key != "region"}
        with pytest.raises(ExecError, match="weight"):
            merge_region_documents([stripped])

    def test_mixed_configurations_refused(self, trace, plan,
                                          tmp_path):
        base = _unit(trace, tmp_path)
        units = region_units(base, plan)
        first = execute_unit(units[0])
        other_unit = WorkUnit(
            unit_id=units[1].unit_id,
            spec={**units[1].spec, "config": "2wide-cache"},
            result_path=str(tmp_path / "other.json"),
            tags=units[1].tags)
        second = execute_unit(other_unit)
        with pytest.raises(ExecError, match="configuration"):
            merge_region_documents([first, second])

    def test_empty_merge_refused(self):
        with pytest.raises(ExecError, match="nothing"):
            merge_region_documents([])
