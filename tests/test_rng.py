"""Tests for the deterministic workload PRNG."""

from hypothesis import given, strategies as st

from repro.utils.rng import XorShiftRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = XorShiftRNG(1234)
        b = XorShiftRNG(1234)
        assert [a.next_u64() for _ in range(50)] == \
               [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = XorShiftRNG(1)
        b = XorShiftRNG(2)
        assert [a.next_u64() for _ in range(8)] != \
               [b.next_u64() for _ in range(8)]

    def test_zero_seed_works(self):
        rng = XorShiftRNG(0)
        assert rng.next_u64() != 0

    def test_known_value_stability(self):
        """Pin the first output for seed 2009: any algorithm change
        that silently alters every generated trace must fail here."""
        rng = XorShiftRNG(2009)
        first = rng.next_u64()
        rng2 = XorShiftRNG(2009)
        assert rng2.next_u64() == first
        # Regenerating in a subprocess would give the same value; the
        # generator is pure integer arithmetic with no process state.

    def test_fork_independence(self):
        root = XorShiftRNG(7)
        fork_a = root.fork(1)
        root2 = XorShiftRNG(7)
        fork_a2 = root2.fork(1)
        assert [fork_a.next_u64() for _ in range(10)] == \
               [fork_a2.next_u64() for _ in range(10)]

    def test_forks_with_different_ids_differ(self):
        root = XorShiftRNG(7)
        a = root.fork(1)
        b = root.fork(2)
        assert [a.next_u64() for _ in range(8)] != \
               [b.next_u64() for _ in range(8)]


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = XorShiftRNG(3)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds(self):
        rng = XorShiftRNG(4)
        values = [rng.randint(3, 9) for _ in range(2000)]
        assert min(values) == 3
        assert max(values) == 9

    def test_randint_single_value(self):
        rng = XorShiftRNG(5)
        assert rng.randint(42, 42) == 42

    def test_randint_empty_range(self):
        rng = XorShiftRNG(5)
        try:
            rng.randint(10, 9)
        except ValueError:
            pass
        else:
            raise AssertionError("empty range accepted")

    def test_chance_extremes(self):
        rng = XorShiftRNG(6)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_chance_rate(self):
        rng = XorShiftRNG(7)
        hits = sum(rng.chance(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_geometric_mean(self):
        rng = XorShiftRNG(8)
        samples = [rng.geometric(5.0) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert 4.5 < mean < 5.5
        assert min(samples) >= 1

    def test_geometric_degenerate(self):
        rng = XorShiftRNG(9)
        assert rng.geometric(1.0) == 1
        assert rng.geometric(0.5) == 1

    def test_choose_weighted_respects_weights(self):
        rng = XorShiftRNG(10)
        counts = {"a": 0, "b": 0}
        for _ in range(10_000):
            counts[rng.choose_weighted({"a": 3.0, "b": 1.0})] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.5 < ratio < 3.6

    def test_choose_weighted_zero_total(self):
        rng = XorShiftRNG(11)
        try:
            rng.choose_weighted({"a": 0.0})
        except ValueError:
            pass
        else:
            raise AssertionError("zero weights accepted")


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_any_seed_produces_valid_stream(seed):
    rng = XorShiftRNG(seed)
    for _ in range(5):
        assert 0 <= rng.next_u64() < 2**64


@given(st.integers(min_value=0, max_value=2**32),
       st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=100))
def test_randint_always_in_range(seed, low, span):
    rng = XorShiftRNG(seed)
    high = low + span
    for _ in range(10):
        assert low <= rng.randint(low, high) <= high
