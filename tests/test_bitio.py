"""Unit and property tests for the bit-granular I/O primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.byte_length == 0
        assert writer.getvalue() == b""

    def test_single_bits_msb_first(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b1, 1)
        assert writer.bit_length == 4
        assert writer.getvalue()[0] == 0b1011_0000

    def test_byte_boundary_crossing(self):
        writer = BitWriter()
        writer.write(0xABC, 12)
        assert writer.byte_length == 2
        assert writer.getvalue() == bytes([0xAB, 0xC0])

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0b100, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 8)

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0, -1)

    def test_write_bool(self):
        writer = BitWriter()
        writer.write_bool(True)
        writer.write_bool(False)
        writer.write_bool(True)
        assert writer.getvalue()[0] == 0b1010_0000

    def test_clear(self):
        writer = BitWriter()
        writer.write(0xFF, 8)
        writer.clear()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""


class TestBitReader:
    def test_roundtrip_simple(self):
        writer = BitWriter()
        writer.write(42, 13)
        reader = BitReader(writer.getvalue())
        assert reader.read(13) == 42

    def test_bits_remaining(self):
        reader = BitReader(bytes(2))
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11

    def test_explicit_bit_length(self):
        reader = BitReader(bytes(2), bit_length=10)
        assert reader.bits_remaining == 10
        reader.read(10)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_bit_length_exceeding_buffer_rejected(self):
        with pytest.raises(ValueError):
            BitReader(bytes(1), bit_length=9)

    def test_read_past_end_raises(self):
        reader = BitReader(bytes(1))
        with pytest.raises(EOFError):
            reader.read(9)

    def test_read_bool(self):
        reader = BitReader(bytes([0b1000_0000]))
        assert reader.read_bool() is True
        assert reader.read_bool() is False

    def test_seek_bit(self):
        writer = BitWriter()
        writer.write(0b1111_0000, 8)
        reader = BitReader(writer.getvalue())
        reader.read(8)
        reader.seek_bit(4)
        assert reader.read(4) == 0

    def test_seek_out_of_range(self):
        reader = BitReader(bytes(1))
        with pytest.raises(ValueError):
            reader.seek_bit(9)


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**40 - 1),
              st.integers(min_value=1, max_value=40)),
    max_size=60,
))
def test_roundtrip_property(fields):
    """Any sequence of (value, width) pairs survives a roundtrip."""
    writer = BitWriter()
    masked = []
    for value, width in fields:
        value &= (1 << width) - 1
        masked.append((value, width))
        writer.write(value, width)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    for value, width in masked:
        assert reader.read(width) == value
    assert reader.bits_remaining == 0


@given(st.lists(st.integers(min_value=1, max_value=33), max_size=40))
def test_bit_length_accounting(widths):
    """bit_length equals the sum of written widths."""
    writer = BitWriter()
    for width in widths:
        writer.write(0, width)
    assert writer.bit_length == sum(widths)
    assert writer.byte_length == (sum(widths) + 7) // 8
