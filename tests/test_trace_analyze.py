"""The trace profiler: per-segment behaviour profiles and their
``.rprof`` sidecars.

The profiler is the measurement half of region sampling
(:mod:`repro.exec.regions`): its per-segment sums must agree with the
independent whole-trace measurement (:func:`measure_trace`), its
output must be a deterministic pure function of the trace bytes, and
its sidecar cache must never serve a profile for different bytes than
the ones on disk (content-digest staleness).
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import PAPER_4WIDE_PERFECT
from repro.trace import (
    RecordKind,
    analyze_trace,
    ensure_profile,
    iter_trace_records,
    load_profile,
    measure_trace,
    profile_path,
    read_segment_table,
    trace_content_digest,
    write_profile,
)
from repro.trace.analyze import ProfileError, TraceProfile
from repro.workloads.tracegen import write_workload_trace

BUDGET = 6_000
SEGMENT_RECORDS = 256


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("analyze") / "gzip.rtrc"
    write_workload_trace("gzip", PAPER_4WIDE_PERFECT, path,
                         budget=BUDGET, seed=7,
                         segment_records=SEGMENT_RECORDS)
    return path


@pytest.fixture(scope="module")
def profile(trace):
    return analyze_trace(trace)


class TestAnalyzeTrace:
    def test_segment_sums_match_whole_trace_measurement(self, trace,
                                                        profile):
        measured = measure_trace(iter_trace_records(trace))
        assert profile.total_records == measured.total_records
        assert sum(s.wrong_path for s in profile.segments) == \
            measured.wrong_path_records
        assert profile.total_committed == measured.correct_path_records

    def test_segment_mix_sums_match_committed_path(self, trace,
                                                   profile):
        # The analyzer profiles the *committed* mix (wrong-path
        # records never reach it), so recompute that independently.
        committed = [r for r in iter_trace_records(trace) if not r.tag]
        branches = [r for r in committed
                    if r.kind is RecordKind.BRANCH]
        memory = [r for r in committed if r.kind is RecordKind.MEMORY]
        assert sum(s.branches for s in profile.segments) == \
            len(branches)
        assert sum(s.taken_branches for s in profile.segments) == \
            sum(1 for r in branches if r.taken)
        assert sum(s.stores for s in profile.segments) == \
            sum(1 for r in memory if r.is_store)
        assert sum(s.loads + s.stores for s in profile.segments) == \
            len(memory)

    def test_segments_follow_the_segment_table(self, trace, profile):
        table = read_segment_table(trace)
        assert len(profile.segments) == len(table)
        for segment, entry in zip(profile.segments, table,
                                  strict=True):
            assert segment.index == entry.index
            assert segment.records == entry.record_count

    def test_profile_is_deterministic(self, trace, profile):
        again = analyze_trace(trace)
        assert again.to_dict() == profile.to_dict()

    def test_digest_matches_streamed_content_digest(self, trace,
                                                    profile):
        assert profile.digest == trace_content_digest(trace)
        assert profile.digest.startswith("sha256:")

    def test_features_are_normalized(self, profile):
        for segment in profile.segments:
            vector = segment.features()
            assert all(0.0 <= value <= 1.0 for value in vector)
            assert len(vector) == 6 + profile.bbv_dim

    def test_round_trip_through_dict(self, profile):
        assert TraceProfile.from_dict(profile.to_dict()).to_dict() \
            == profile.to_dict()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            analyze_trace(tmp_path / "nope.rtrc")

    def test_content_digest_rejects_directories(self, tmp_path):
        with pytest.raises(ProfileError):
            trace_content_digest(tmp_path)


class TestSidecar:
    def test_write_then_load(self, trace, profile, tmp_path):
        sidecar = tmp_path / "copy.rprof"
        write_profile(profile, sidecar)
        # load_profile keys on the digest of the *trace* next to the
        # sidecar, so exercise the real location too.
        write_profile(profile, profile_path(trace))
        assert load_profile(trace).to_dict() == profile.to_dict()
        assert json.loads(sidecar.read_text())["schema"] >= 1

    def test_stale_sidecar_ignored_on_digest_mismatch(self, profile,
                                                      tmp_path):
        # Same filename, different trace bytes: the sidecar was
        # profiled from *other* content and must read as absent.
        path = tmp_path / "other.rtrc"
        write_workload_trace("gzip", PAPER_4WIDE_PERFECT, path,
                             budget=BUDGET, seed=8,
                             segment_records=SEGMENT_RECORDS)
        write_profile(profile, profile_path(path))
        assert load_profile(path) is None

    def test_malformed_sidecar_reads_as_absent(self, trace, profile):
        sidecar = profile_path(trace)
        sidecar.write_text("{not json")
        assert load_profile(trace) is None
        sidecar.write_text(json.dumps({"schema": 999}))
        assert load_profile(trace) is None

    def test_ensure_profile_reuses_then_reanalyzes(self, trace):
        first = ensure_profile(trace)
        assert profile_path(trace).exists()
        # A fresh sidecar short-circuits the streaming pass...
        assert ensure_profile(trace).to_dict() == first.to_dict()
        # ...and force re-measures (identically, by determinism).
        assert ensure_profile(trace,
                              force=True).to_dict() == first.to_dict()


class TestAnalyzeCli:
    def test_text_and_json_output(self, trace, capsys):
        from repro.cli import main
        assert main(["trace", "analyze", str(trace)]) == 0
        text = capsys.readouterr().out
        assert "segments" in text and "trace digest" in text
        assert main(["trace", "analyze", str(trace),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["digest"] == trace_content_digest(trace)

    def test_missing_file_exits_cleanly(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["trace", "analyze", str(tmp_path / "nope.rtrc")])
