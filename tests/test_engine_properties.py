"""Property-based tests: the engine must uphold its invariants on
arbitrary well-formed traces.

The strategy builds random traces with the same structural contract as
the real generators: wrong-path blocks appear only immediately after
conditional-branch records, and contain only tagged records.
"""

from hypothesis import given, settings, strategies as st

from repro.bpred.unit import PERFECT_PREDICTOR
from repro.core import ReSimEngine
from repro.core.config import ProcessorConfig
from repro.isa.opcodes import BranchKind, FuClass
from repro.trace.record import BranchRecord, MemoryRecord, OtherRecord

CONFIG = ProcessorConfig(predictor=PERFECT_PREDICTOR)

_regs = st.integers(min_value=0, max_value=33)


@st.composite
def plain_record(draw, tag=False):
    kind = draw(st.sampled_from(["alu", "mul", "div", "load", "store"]))
    if kind in ("alu", "mul", "div"):
        fu = {"alu": FuClass.ALU, "mul": FuClass.MUL,
              "div": FuClass.DIV}[kind]
        dest = 0 if kind != "alu" else draw(
            st.integers(min_value=1, max_value=31))
        return OtherRecord(tag=tag, fu=fu, dest=dest,
                           src1=draw(_regs), src2=draw(_regs))
    address = draw(st.integers(min_value=0, max_value=0xFFFF)) * 4
    if kind == "load":
        return MemoryRecord(tag=tag, fu=FuClass.LOAD,
                            dest=draw(st.integers(min_value=1, max_value=31)),
                            src1=draw(_regs), address=address)
    return MemoryRecord(tag=tag, fu=FuClass.STORE, is_store=True,
                        src1=draw(_regs), src2=draw(_regs),
                        address=address)


@st.composite
def structured_trace(draw):
    """Correct-path records with optional tagged blocks after branches."""
    segments = draw(st.lists(st.tuples(
        st.lists(plain_record(), min_size=1, max_size=8),
        st.booleans(),   # append a branch?
        st.booleans(),   # branch taken?
        st.integers(min_value=0, max_value=6),  # wrong-path block length
    ), min_size=1, max_size=12))
    trace = []
    for body, with_branch, taken, block_length in segments:
        trace.extend(body)
        if with_branch:
            trace.append(BranchRecord(
                fu=FuClass.BRANCH, branch_kind=BranchKind.COND,
                taken=taken, target=0x0040_0800,
                src1=draw(_regs),
            ))
            for _ in range(block_length):
                trace.append(draw(plain_record(tag=True)))
    return trace


@settings(max_examples=60, deadline=None)
@given(structured_trace())
def test_engine_invariants(trace):
    """Every structured trace simulates to completion with consistent
    accounting and bounded occupancy."""
    # Perfect BP predicts every branch correctly, so tagged blocks are
    # "mispredicted" only from the trace's point of view — which is
    # exactly the authoritative-signal contract.  Use a real predictor
    # config instead so tagged blocks drive recovery:
    config = ProcessorConfig()
    engine = ReSimEngine(config, trace)
    result = engine.run()
    stats = result.stats

    correct_path = sum(1 for record in trace if not record.tag)
    wrong_path = len(trace) - correct_path

    # Accounting identities.
    assert int(stats.committed_instructions) == correct_path
    assert int(stats.trace_records_consumed) == len(trace)
    assert (int(stats.fetched_wrong_path)
            + int(stats.discarded_wrong_path)) == wrong_path
    assert int(stats.fetched_instructions) == \
        correct_path + int(stats.fetched_wrong_path)

    # Physical bounds.
    assert stats.rob_occupancy.peak <= config.rob_entries
    assert stats.lsq_occupancy.peak <= config.lsq_entries
    assert stats.ifq_occupancy.peak <= config.ifq_entries
    if correct_path:
        assert result.major_cycles >= correct_path / config.width
        assert result.ipc <= config.width

    # Mispredictions equal the number of tagged blocks.
    blocks = 0
    previous_tag = False
    for record in trace:
        if record.tag and not previous_tag:
            blocks += 1
        previous_tag = record.tag
    assert int(stats.mispredictions) == blocks


@settings(max_examples=30, deadline=None)
@given(structured_trace(),
       st.sampled_from([1, 2, 4]),
       st.sampled_from([8, 16, 32]))
def test_engine_invariants_across_configs(trace, width, rob):
    """The invariants hold for any width/ROB combination."""
    config = ProcessorConfig(width=width, rob_entries=rob,
                             ifq_entries=max(2, width))
    result = ReSimEngine(config, trace).run()
    correct_path = sum(1 for record in trace if not record.tag)
    assert int(result.stats.committed_instructions) == correct_path
    assert result.ipc <= width + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.lists(plain_record(), min_size=1, max_size=60))
def test_wider_machine_never_slower_without_branches(trace):
    """Monotonicity on branch-free traces: doubling the width cannot
    increase the cycle count.

    With branches the property is genuinely false for real OoO
    machines (a wider front end reaches the wrong path faster and
    shifts recovery timing), so it is only asserted where it actually
    holds.
    """
    narrow = ReSimEngine(ProcessorConfig(width=2), trace).run()
    wide = ReSimEngine(ProcessorConfig(width=4), trace).run()
    assert wide.major_cycles <= narrow.major_cycles + 1


@settings(max_examples=20, deadline=None)
@given(structured_trace())
def test_determinism_property(trace):
    """Two engines on the same trace produce identical statistics."""
    a = ReSimEngine(ProcessorConfig(), trace).run()
    b = ReSimEngine(ProcessorConfig(), trace).run()
    assert a.major_cycles == b.major_cycles
    assert int(a.stats.fetched_instructions) == \
        int(b.stats.fetched_instructions)
