"""CLI smoke tests: every subcommand through ``main(argv)``.

Each subcommand must exit 0 on a healthy invocation (tiny budgets,
tmp-dir outputs), and ``simulate`` must print exactly the numbers a
direct :class:`repro.session.Simulation` run produces — the CLI is a
thin shell over the facade, and this pins it there.
"""

import json

import pytest

from repro.cli import main
from repro.session import CONFIGS, Simulation

BUDGET = "1500"


class TestTrace:
    def test_synthetic_workload(self, tmp_path, capsys):
        out = tmp_path / "gzip.rtrc"
        assert main(["trace", "gzip", str(out),
                     "--budget", BUDGET]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_kernel_records_start_pc(self, tmp_path):
        out = tmp_path / "vecsum.rtrc"
        assert main(["trace", "vecsum", str(out),
                     "--budget", BUDGET]) == 0
        from repro.trace.fileio import read_trace_header
        header = read_trace_header(out)
        assert "start_pc" in header.metadata

    def test_unknown_workload_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["trace", "doom", str(tmp_path / "x.rtrc"),
                  "--budget", BUDGET])


class TestSimulate:
    def test_workload_output_matches_direct_simulation(self, capsys):
        assert main(["simulate", "gzip", "--budget", BUDGET]) == 0
        cli_output = capsys.readouterr().out

        session = (Simulation.for_workload(
            "gzip", CONFIGS.get("4wide-perfect"),
            budget=int(BUDGET), seed=7)
            .with_devices("xc4vlx40", "xc5vlx50t").run())
        assert session.stats.report() in cli_output
        assert f"{session.mips('xc4vlx40'):7.2f} MIPS" in cli_output
        assert f"{session.mips('xc5vlx50t'):7.2f} MIPS" in cli_output

    def test_trace_file_round_trip(self, tmp_path, capsys):
        out = tmp_path / "vecsum.rtrc"
        assert main(["trace", "vecsum", str(out),
                     "--budget", BUDGET]) == 0
        capsys.readouterr()
        assert main(["simulate", "--trace-file", str(out)]) == 0
        direct = Simulation.for_trace_file(out).run()
        assert direct.stats.report() in capsys.readouterr().out

    def test_predictor_mismatch_warns(self, tmp_path, capsys):
        out = tmp_path / "t.rtrc"
        assert main(["trace", "vecsum", str(out),
                     "--budget", BUDGET]) == 0
        assert main(["simulate", "--trace-file", str(out),
                     "--config", "2wide-cache"]) == 0
        assert "different" in capsys.readouterr().err

    def test_corrupt_trace_file_exits(self, tmp_path):
        bad = tmp_path / "bad.rtrc"
        bad.write_bytes(b"not a trace file")
        with pytest.raises(SystemExit, match="bad.rtrc"):
            main(["simulate", "--trace-file", str(bad)])

    def test_unknown_config_exits(self):
        with pytest.raises(SystemExit, match="unknown config"):
            main(["simulate", "gzip", "--config", "9wide"])


class TestTables:
    def test_table4_renders(self, capsys):
        assert main(["tables", "table4", "--budget", "1000"]) == 0
        assert "Area" in capsys.readouterr().out

    def test_unknown_table_exits(self):
        with pytest.raises(SystemExit, match="unknown table"):
            main(["tables", "table9"])


class TestArea:
    def test_area_breakdown(self, capsys):
        assert main(["area"]) == 0
        assert "slices" in capsys.readouterr().out.lower()

    def test_with_caches(self, capsys):
        assert main(["area", "--with-caches"]) == 0
        capsys.readouterr()


class TestVhdl:
    def test_emits_sources(self, tmp_path, capsys):
        rtl = tmp_path / "rtl"
        assert main(["vhdl", str(rtl)]) == 0
        written = list(rtl.glob("*.vhd"))
        assert written
        assert "wrote" in capsys.readouterr().out


class TestMulticore:
    def test_runs_on_large_device(self, capsys):
        assert main(["multicore", "gzip", "--budget", BUDGET,
                     "--device", "xc4vlx100"]) == 0
        out = capsys.readouterr().out
        assert "instance(s)" in out
        assert "aggregate MIPS" in out

    def test_unknown_device_exits(self):
        with pytest.raises(SystemExit, match="unknown device"):
            main(["multicore", "gzip", "--device", "xc1"])


class TestSweep:
    def test_sweep_and_resume(self, tmp_path, capsys):
        results = tmp_path / "results"
        argv = ["sweep", "gzip", "--rob", "8,16",
                "--budget", BUDGET, "--results-dir", str(results),
                "--json", str(tmp_path / "sweep.json")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 design points" in first
        document = json.loads((tmp_path / "sweep.json").read_text())
        assert len(document["outcomes"]) == 2

        # Rerun: everything satisfied from checkpoints.
        assert main(argv) == 0
        assert "2 resumed from checkpoints" in capsys.readouterr().out


class TestSweepBackends:
    def test_backend_serial_named_in_notes(self, tmp_path, capsys):
        assert main(["sweep", "gzip", "--rob", "8,16",
                     "--budget", BUDGET, "--backend", "serial",
                     "--results-dir", str(tmp_path / "out")]) == 0
        assert "backend serial" in capsys.readouterr().out

    def test_backend_queue_with_local_workers(self, tmp_path, capsys):
        assert main(["sweep", "gzip", "--rob", "8,16",
                     "--budget", BUDGET, "--backend", "queue",
                     "--workers", "2", "--queue-timeout", "120",
                     "--results-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "2 design points" in out
        assert "backend queue" in out
        assert (tmp_path / "out" / "queue" / "done").is_dir()

    def test_unknown_backend_fails_before_simulating(self, tmp_path):
        out = tmp_path / "out"
        with pytest.raises(SystemExit, match="unknown execution"):
            main(["sweep", "gzip", "--rob", "8,16",
                  "--backend", "bogus", "--results-dir", str(out)])
        assert not out.exists()

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        assert main(["sweep", "gzip", "--rob", "8,16",
                     "--budget", BUDGET, "--progress",
                     "--results-dir", str(tmp_path / "out")]) == 0
        err = capsys.readouterr().err
        assert "[sweep] 2 design point(s) to evaluate" in err
        assert "[sweep] complete:" in err


class TestSearch:
    def test_hillclimb_search(self, tmp_path, capsys):
        assert main(["search", "gzip", "--rob", "8,16,32",
                     "--budget", BUDGET, "--strategy", "hillclimb",
                     "--results-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "hillclimb search evaluated" in out
        assert "best ipc=" in out

    def test_random_search_with_seed(self, tmp_path, capsys):
        argv = ["search", "gzip", "--rob", "8,16,32,64",
                "--lsq", "4,8", "--budget", BUDGET,
                "--strategy", "random", "--samples", "3",
                "--search-seed", "5",
                "--results-dir", str(tmp_path / "out")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "random search evaluated 3 point(s)" in first
        # Same seed, same directory: identical points, all resumed.
        assert main(argv) == 0
        assert "resumed from checkpoints" in capsys.readouterr().out

    def test_unknown_strategy_and_metric_fail_early(self, tmp_path):
        out = tmp_path / "out"
        with pytest.raises(SystemExit, match="unknown search strategy"):
            main(["search", "gzip", "--rob", "8,16",
                  "--strategy", "annealing",
                  "--results-dir", str(out)])
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["search", "gzip", "--rob", "8,16",
                  "--metric", "goodness", "--results-dir", str(out)])
        assert not out.exists()

    def test_search_requires_an_axis(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to search"):
            main(["search", "gzip",
                  "--results-dir", str(tmp_path / "out")])


class TestWorker:
    def test_worker_drains_empty_queue(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path / "queue"),
                     "--exit-when-drained"]) == 0
        assert "processed 0 unit(s)" in capsys.readouterr().out

    def test_worker_completes_coordinator_units(self, tmp_path,
                                                capsys):
        """Two-terminal walkthrough, scripted: enqueue units by hand
        (the coordinator side), then drain them with `resim worker`
        (the second terminal)."""
        from repro.core.config import PAPER_4WIDE_PERFECT
        from repro.exec import WorkUnit, enqueue, queue_paths
        from repro.serialize import config_to_dict
        from repro.workloads.tracegen import write_workload_trace

        trace = tmp_path / "gzip.rtrc"
        write_workload_trace("gzip", PAPER_4WIDE_PERFECT, trace,
                             budget=int(BUDGET), seed=7)
        paths = queue_paths(tmp_path / "queue")
        enqueue(paths, WorkUnit.for_trace(
            "point0", trace, config_to_dict(PAPER_4WIDE_PERFECT),
            tmp_path / "point0.json"))
        assert main(["worker", str(tmp_path / "queue"),
                     "--exit-when-drained", "--quiet"]) == 0
        assert "processed 1 unit(s)" in capsys.readouterr().out
        assert (tmp_path / "point0.json").exists()

    def test_worker_validates_options(self, tmp_path):
        with pytest.raises(SystemExit, match="poll-seconds"):
            main(["worker", str(tmp_path), "--poll-seconds", "0"])
        with pytest.raises(SystemExit, match="lease-seconds"):
            main(["worker", str(tmp_path), "--lease-seconds", "-1"])


class TestShardedCli:
    def test_sweep_with_shards_matches_serial(self, tmp_path, capsys):
        """`--shards 2` through the CLI: exact-sum counters equal the
        serial monolithic sweep's, and the note names the shards."""
        from repro.exec import EXACT_SUM_COUNTERS
        mono = tmp_path / "mono.json"
        shard = tmp_path / "shard.json"
        common = ["sweep", "gzip", "--rob", "16", "--budget", BUDGET,
                  "--segment-records", "64"]
        assert main([*common, "--results-dir",
                     str(tmp_path / "mono"), "--json", str(mono)]) == 0
        capsys.readouterr()
        assert main([*common, "--shards", "2", "--results-dir",
                     str(tmp_path / "shard"), "--json",
                     str(shard)]) == 0
        assert "2 shards per point" in capsys.readouterr().out
        mono_doc = json.loads(mono.read_text())["outcomes"][0]
        shard_doc = json.loads(shard.read_text())["outcomes"][0]
        for counter in EXACT_SUM_COUNTERS:
            assert shard_doc["stats"][counter] == \
                mono_doc["stats"][counter], counter
        assert len(shard_doc["stats"]["shards"]) == 2

    def test_stats_merge_subcommand(self, tmp_path, capsys):
        """`resim stats merge` exposes the reducer standalone."""
        assert main(["sweep", "gzip", "--rob", "16", "--budget",
                     BUDGET, "--segment-records", "64", "--shards",
                     "2", "--results-dir", str(tmp_path / "sw")]) == 0
        capsys.readouterr()
        shard_files = sorted(
            str(path) for path in (tmp_path / "sw").glob("*.s*of2.json"))
        assert len(shard_files) == 2
        merged_path = tmp_path / "merged.json"
        assert main(["stats", "merge", *shard_files,
                     "--output", str(merged_path)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 result document(s)" in out
        assert "merged from shards      : 2" in out
        merged = json.loads(merged_path.read_text())
        # The standalone merge agrees with the sweep's own reducer.
        checkpoint = next(
            path for path in (tmp_path / "sw").glob("*.json")
            if ".s" not in path.name and path.name != "sweep.json")
        assert merged["stats"] == \
            json.loads(checkpoint.read_text())["stats"]

    def test_stats_merge_rejects_mixed_points(self, tmp_path, capsys):
        assert main(["sweep", "gzip", "--rob", "8,16", "--budget",
                     BUDGET, "--results-dir",
                     str(tmp_path / "sw")]) == 0
        capsys.readouterr()
        points = sorted(
            str(path) for path in (tmp_path / "sw").glob("*.json")
            if path.name != "sweep.json")
        assert len(points) == 2
        with pytest.raises(SystemExit,
                           match="different design points"):
            main(["stats", "merge", *points])

    def test_stats_merge_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["stats", "merge", str(bad)])
        with pytest.raises(SystemExit, match="No such file|o such"):
            main(["stats", "merge", str(tmp_path / "missing.json")])


class TestSpecHash:
    def test_flags_and_file_agree(self, tmp_path, capsys):
        assert main(["spec", "hash", "--workload", "gzip",
                     "--budget", BUDGET]) == 0
        from_flags = capsys.readouterr().out.strip()
        assert len(from_flags) == 40
        spec = Simulation.for_workload(
            "gzip", CONFIGS.get("4wide-perfect"),
            budget=int(BUDGET), seed=7).to_spec()
        saved = tmp_path / "spec.json"
        saved.write_text(json.dumps(spec))
        assert main(["spec", "hash", "--file", str(saved)]) == 0
        assert capsys.readouterr().out.strip() == from_flags

    def test_key_order_does_not_matter(self, tmp_path, capsys):
        spec = Simulation.for_workload(
            "gzip", CONFIGS.get("4wide-perfect"),
            budget=int(BUDGET), seed=7).to_spec()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(spec))
        b.write_text(json.dumps(dict(reversed(list(spec.items())))))
        assert main(["spec", "hash", "--file", str(a)]) == 0
        hash_a = capsys.readouterr().out.strip()
        assert main(["spec", "hash", "--file", str(b)]) == 0
        assert capsys.readouterr().out.strip() == hash_a

    def test_length_and_validation(self, capsys):
        assert main(["spec", "hash", "--workload", "gzip",
                     "--budget", BUDGET, "--length", "64"]) == 0
        assert len(capsys.readouterr().out.strip()) == 64
        with pytest.raises(SystemExit, match="--length"):
            main(["spec", "hash", "--length", "2"])
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["spec", "hash", "--file", "/dev/null"])


class TestTraceInfoJson:
    def test_json_format_carries_cache_digest(self, tmp_path, capsys):
        out = tmp_path / "gzip.rtrc"
        assert main(["trace", "gzip", str(out),
                     "--budget", BUDGET]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(out),
                     "--format", "json"]) == 0
        raw = capsys.readouterr().out
        document = json.loads(raw)
        from repro.serve import trace_digest
        assert document["content_digest"] == trace_digest(out)
        assert document["records"] > 0
        assert document["format_version"] == 2
        assert document["segments"]
        # Canonical form: sorted keys, so output is diffable.
        assert raw.strip() \
            == json.dumps(document, indent=2, sort_keys=True)

    def test_text_format_also_names_digest(self, tmp_path, capsys):
        out = tmp_path / "v.rtrc"
        assert main(["trace", "vecsum", str(out),
                     "--budget", BUDGET]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(out)]) == 0
        assert "content digest       : sha256:" \
            in capsys.readouterr().out
