"""Run the executable examples embedded in docstrings.

The package docstring's quickstart and the bit-I/O examples are part
of the documentation contract; they must keep working verbatim.
"""

import doctest

import pytest

import repro
import repro.serialize
import repro.utils.bitio
import repro.utils.registry


@pytest.mark.parametrize("module", [repro.utils.bitio, repro,
                                    repro.serialize,
                                    repro.utils.registry],
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, \
        f"no doctests collected in {module.__name__}"
    assert result.failed == 0
