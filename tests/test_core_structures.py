"""Tests for the engine's building blocks: in-flight ops, rename table,
functional-unit pool, statistics registers, pipeline configs."""

from dataclasses import fields

import pytest

from repro.bpred.unit import PERFECT_PREDICTOR
from repro.core.config import (
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
)
from repro.core.fu import FunctionalUnitPool
from repro.core.inflight import InFlightOp, OpState
from repro.core.rename import RenameTable
from repro.core.stats import Counter64, OccupancySampler, SimulationStatistics
from repro.isa.opcodes import FuClass
from repro.trace.record import MemoryRecord, OtherRecord


def _op(seq=0, record=None, tag=False) -> InFlightOp:
    record = record or OtherRecord(dest=5, src1=3, tag=tag)
    return InFlightOp(seq=seq, record=record, pc=0x400000 + 8 * seq)


class TestProcessorConfig:
    def test_paper_defaults(self):
        config = PAPER_4WIDE_PERFECT
        assert config.width == 4
        assert config.rob_entries == 16
        assert config.lsq_entries == 8
        assert (config.alu_count, config.mul_count, config.div_count) \
            == (4, 1, 1)
        assert (config.alu_latency, config.mul_latency, config.div_latency) \
            == (1, 3, 10)
        assert config.misfetch_penalty == 3
        assert config.misspeculation_penalty == 3
        assert config.perfect_memory

    def test_fast_comparison_config(self):
        config = PAPER_2WIDE_CACHE
        assert config.width == 2
        assert config.predictor is PERFECT_PREDICTOR
        assert not config.perfect_memory
        assert config.icache.size_bytes == 32 * 1024
        assert config.icache.assoc == 8
        assert config.icache.block_bytes == 64

    def test_pipeline_selection_constraints(self):
        # 4-wide with 3 memory ports: optimized (N+3) applies.
        assert PAPER_4WIDE_PERFECT.supports_optimized_pipeline
        # 2-wide with 2 memory ports: needs N+4.
        assert not PAPER_2WIDE_CACHE.supports_optimized_pipeline

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(width=0)
        with pytest.raises(ValueError):
            ProcessorConfig(rob_entries=2, width=4)
        with pytest.raises(ValueError):
            ProcessorConfig(misfetch_penalty=-1)

    def test_fu_latency_mapping(self):
        config = PAPER_4WIDE_PERFECT
        assert config.fu_latency(FuClass.ALU) == 1
        assert config.fu_latency(FuClass.MUL) == 3
        assert config.fu_latency(FuClass.DIV) == 10
        assert config.fu_latency(FuClass.BRANCH) == 1

    def test_with_width(self):
        assert PAPER_4WIDE_PERFECT.with_width(2).width == 2


class TestInFlightOp:
    def test_commit_flag_same_cycle(self):
        """The paper's flag: completed in cycle T may not commit in T."""
        op = _op()
        op.state = OpState.COMPLETED
        op.completed_cycle = 10
        assert not op.committable(10)
        assert op.committable(11)

    def test_classification(self):
        load = _op(record=MemoryRecord(fu=FuClass.LOAD, dest=4, src1=2))
        assert load.is_load and load.is_mem and not load.is_store
        store = _op(record=MemoryRecord(fu=FuClass.STORE, is_store=True,
                                        src1=2, src2=3))
        assert store.is_store and not store.is_load

    def test_operands_ready(self):
        op = _op()
        assert op.operands_ready
        op.waiting_on.add(7)
        assert not op.operands_ready


class TestRenameTable:
    def test_dependency_tracking(self):
        table = RenameTable()
        producer = _op(seq=1)
        table.define(5, producer)
        assert table.pending_dependency(5) is producer
        producer.state = OpState.COMPLETED
        assert table.pending_dependency(5) is None

    def test_overwrite_by_newer_producer(self):
        table = RenameTable()
        old = _op(seq=1)
        new = _op(seq=2)
        table.define(5, old)
        table.define(5, new)
        assert table.producer_of(5) is new

    def test_retire_clears_own_entries_only(self):
        table = RenameTable()
        a, b = _op(seq=1), _op(seq=2)
        table.define(5, a)
        table.define(6, b)
        table.retire(a)
        assert table.producer_of(5) is None
        assert table.producer_of(6) is b

    def test_squash_wrong_path(self):
        table = RenameTable()
        good = _op(seq=1)
        bad = _op(seq=2, tag=True)
        table.define(5, good)
        table.define(6, bad)
        assert table.squash_wrong_path() == 1
        assert table.producer_of(6) is None
        assert table.producer_of(5) is good


class TestFunctionalUnitPool:
    def test_alu_per_cycle_limit(self):
        pool = FunctionalUnitPool(PAPER_4WIDE_PERFECT)
        pool.begin_cycle()
        for _ in range(4):
            assert pool.can_issue(FuClass.ALU, cycle=1)
            assert pool.issue(FuClass.ALU, cycle=1) == 1
        assert not pool.can_issue(FuClass.ALU, cycle=1)
        pool.begin_cycle()
        assert pool.can_issue(FuClass.ALU, cycle=2)  # pipelined

    def test_branches_use_alu(self):
        pool = FunctionalUnitPool(PAPER_4WIDE_PERFECT)
        pool.begin_cycle()
        for _ in range(4):
            pool.issue(FuClass.BRANCH, cycle=1)
        assert not pool.can_issue(FuClass.ALU, cycle=1)

    def test_multiplier_pipelined(self):
        pool = FunctionalUnitPool(PAPER_4WIDE_PERFECT)
        pool.begin_cycle()
        assert pool.issue(FuClass.MUL, cycle=1) == 3
        pool.begin_cycle()
        assert pool.can_issue(FuClass.MUL, cycle=2)  # next cycle OK

    def test_divider_unpipelined(self):
        pool = FunctionalUnitPool(PAPER_4WIDE_PERFECT)
        pool.begin_cycle()
        assert pool.issue(FuClass.DIV, cycle=1) == 10
        pool.begin_cycle()
        assert not pool.can_issue(FuClass.DIV, cycle=2)  # busy 10 cycles
        pool.begin_cycle()
        assert pool.can_issue(FuClass.DIV, cycle=11)

    def test_issue_without_capacity_raises(self):
        pool = FunctionalUnitPool(PAPER_4WIDE_PERFECT)
        pool.begin_cycle()
        pool.issue(FuClass.DIV, cycle=1)
        with pytest.raises(RuntimeError):
            pool.issue(FuClass.DIV, cycle=1)


class TestStatistics:
    def test_counter64_wraps_like_hardware(self):
        counter = Counter64((1 << 64) - 1)
        counter.increment()
        assert counter.value == 0  # 64-bit register overflow semantics

    def test_counter64_int_conversion(self):
        counter = Counter64(5)
        counter.increment(3)
        assert int(counter) == 8

    def test_occupancy_sampler(self):
        sampler = OccupancySampler()
        for value in (2, 4, 6):
            sampler.sample(value)
        assert sampler.average == pytest.approx(4.0)
        assert sampler.peak == 6

    def test_counter64_equality_and_hash(self):
        assert Counter64(5) == Counter64(5) == 5
        assert Counter64(5) != Counter64(6)
        assert Counter64(5) != "5"
        assert hash(Counter64(5)) == hash(Counter64(5))

    def test_occupancy_sampler_raw_state(self):
        """Merge-safe accessors: reducers read (total, samples), not
        private fields."""
        sampler = OccupancySampler()
        assert sampler.raw() == (0, 0)
        for value in (3, 5):
            sampler.sample(value)
        assert sampler.raw() == (8, 2)

    def test_occupancy_sampler_merge_pools_weighted(self):
        light = OccupancySampler()          # avg 2.0 over 1 cycle
        light.sample(2)
        heavy = OccupancySampler()          # avg 8.0 over 3 cycles
        for value in (7, 8, 9):
            heavy.sample(value)
        merged = light.merge([heavy])
        assert merged.raw() == (26, 4)
        assert merged.average == pytest.approx(6.5)  # not (2+8)/2
        assert merged.peak == 9
        # Parts are untouched; merging nothing copies.
        assert light.raw() == (2, 1)
        identity = heavy.merge([])
        assert identity == heavy and identity is not heavy

    def test_derived_rates_guard_zero(self):
        stats = SimulationStatistics()
        assert stats.ipc == 0.0
        assert stats.misprediction_rate == 0.0
        assert stats.dcache_miss_rate == 0.0

    def test_report_renders(self):
        stats = SimulationStatistics()
        stats.major_cycles.increment(10)
        stats.committed_instructions.increment(15)
        text = stats.report()
        assert "IPC 1.500" in text

    def test_report_covers_every_field(self):
        # Drift guard: a Counter64 field (or sampler peak) added to
        # SimulationStatistics without a report() line would silently
        # vanish from every CLI run.  Give each field a distinct
        # value and require that value (or for samplers: the peak) to
        # appear somewhere in the rendered report.
        stats = SimulationStatistics()
        value = 1_000_003  # large primes: never rendering artifacts
        expected: dict[str, int] = {}
        for spec in fields(SimulationStatistics):
            if spec.name == "shards":
                continue
            slot = getattr(stats, spec.name)
            if isinstance(slot, Counter64):
                slot.increment(value)
                expected[spec.name] = value
            else:  # OccupancySampler: the peak must be reported
                for _ in range(7):
                    slot.sample(value)
                expected[spec.name] = value
            value += 1_000_033
        text = stats.report()
        for name, rendered in expected.items():
            assert str(rendered) in text, (
                f"SimulationStatistics.{name} (value {rendered}) "
                f"does not appear in report(); update report() when "
                f"adding statistics fields")

    def test_report_distinguishes_region_merges(self):
        base = SimulationStatistics()
        exact = base.merge([SimulationStatistics()],
                           shards=[{"index": 0}, {"index": 1}])
        assert "merged from shards" in exact.report()
        sampled = base.merge(
            [SimulationStatistics()], weights=[2, 3],
            shards=[{"index": 0, "weight": 2},
                    {"index": 1, "weight": 3}])
        assert "merged from regions" in sampled.report()
