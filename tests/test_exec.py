"""Tests for the execution-backend layer (:mod:`repro.exec`):
work-unit serialization and idempotent execution, backend parity
(serial / process pool / directory queue must be bit-identical), and
the directory queue's crash tolerance — stale-lease reclaim, a worker
killed mid-unit, error propagation."""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import PAPER_4WIDE_PERFECT
from repro.exec import (
    BACKENDS,
    DirectoryQueueBackend,
    ExecError,
    ProcessPoolBackend,
    SerialBackend,
    UnitExecutionError,
    WorkUnit,
    enqueue,
    execute_unit,
    load_unit_result,
    queue_paths,
    reclaim_stale,
    run_worker,
)
from repro.exec.queue import claim_next
from repro.serialize import config_to_dict, stats_to_dict
from repro.session import Simulation
from repro.workloads.tracegen import write_workload_trace

BUDGET = 1200


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """One shared gzip trace every unit in this module simulates."""
    path = tmp_path_factory.mktemp("trace") / "gzip.rtrc"
    write_workload_trace("gzip", PAPER_4WIDE_PERFECT, path,
                         budget=BUDGET, seed=7)
    return path


def make_unit(trace_file, out_dir, rob=16, uid=None) -> WorkUnit:
    config = replace(PAPER_4WIDE_PERFECT, rob_entries=rob)
    uid = uid or f"rob{rob}"
    return WorkUnit.for_trace(
        uid, trace_file, config_to_dict(config),
        Path(out_dir) / f"{uid}.json",
        tags={"sweep": {"workload": "gzip"}})


class TestWorkUnit:
    def test_dict_round_trip(self, trace_file, tmp_path):
        unit = make_unit(trace_file, tmp_path)
        restored = WorkUnit.from_dict(
            json.loads(json.dumps(unit.to_dict())))
        assert restored == unit

    def test_segment_range_lands_in_spec(self, trace_file, tmp_path):
        unit = WorkUnit.for_trace(
            "shard0", trace_file, "4wide-perfect",
            tmp_path / "shard0.json", segments=(0, 2), start_pc=4096)
        assert unit.spec["segments"] == [0, 2]
        assert unit.spec["start_pc"] == 4096

    def test_path_traversing_unit_id_rejected(self, tmp_path):
        for bad in ("../evil", "a/b", "", "x y"):
            with pytest.raises(ExecError, match="unit_id"):
                WorkUnit(unit_id=bad, spec={"workload": "gzip"},
                         result_path=str(tmp_path / "r.json"))

    def test_reserved_tags_rejected(self, tmp_path):
        with pytest.raises(ExecError, match="shadow"):
            WorkUnit(unit_id="u", spec={"workload": "gzip"},
                     result_path=str(tmp_path / "r.json"),
                     tags={"stats": {}})

    def test_foreign_schema_rejected(self, trace_file, tmp_path):
        document = make_unit(trace_file, tmp_path).to_dict()
        document["schema"] = 99
        with pytest.raises(ExecError, match="schema"):
            WorkUnit.from_dict(document)

    def test_missing_key_rejected(self):
        with pytest.raises(ExecError, match="missing key"):
            WorkUnit.from_dict({"schema": 1, "unit_id": "u"})


class TestExecuteUnit:
    def test_matches_direct_simulation(self, trace_file, tmp_path):
        unit = make_unit(trace_file, tmp_path, rob=8)
        payload = execute_unit(unit)
        direct = Simulation.for_trace_file(
            trace_file,
            config=replace(PAPER_4WIDE_PERFECT, rob_entries=8)).run()
        assert payload["stats"] == stats_to_dict(direct.stats)
        assert payload["config"] == config_to_dict(direct.config)
        assert payload["sweep"] == {"workload": "gzip"}  # tag merged
        assert load_unit_result(unit.result_path) == payload

    def test_execution_is_idempotent(self, trace_file, tmp_path):
        unit = make_unit(trace_file, tmp_path, rob=32)
        first = execute_unit(unit)
        second = execute_unit(unit)
        assert first == second
        assert json.loads(Path(unit.result_path).read_text()) == first

    def test_load_unit_result_rejects_garbage(self, tmp_path):
        assert load_unit_result(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_unit_result(bad) is None
        bad.write_text(json.dumps({"schema": 99, "stats": {}}))
        assert load_unit_result(bad) is None
        bad.write_text(json.dumps({"schema": 1, "stats": "nope"}))
        assert load_unit_result(bad) is None


class TestBackendProtocol:
    def test_registry_names(self):
        assert set(BACKENDS) >= {"serial", "pool", "queue"}
        assert BACKENDS.get("process-pool") is ProcessPoolBackend
        assert BACKENDS.get("directory-queue") is DirectoryQueueBackend

    def test_duplicate_unit_id_rejected(self, trace_file, tmp_path):
        backend = SerialBackend()
        backend.submit(make_unit(trace_file, tmp_path))
        with pytest.raises(ExecError, match="already enqueued"):
            backend.submit(make_unit(trace_file, tmp_path))

    def test_pool_needs_positive_workers(self):
        with pytest.raises(ExecError, match="workers"):
            ProcessPoolBackend(0)

    def test_queue_validates_parameters(self, tmp_path):
        with pytest.raises(ExecError, match="workers"):
            DirectoryQueueBackend(tmp_path, workers=-1)
        with pytest.raises(ExecError, match="lease_seconds"):
            DirectoryQueueBackend(tmp_path, lease_seconds=0)
        with pytest.raises(ExecError, match="poll_seconds"):
            DirectoryQueueBackend(tmp_path, poll_seconds=0)
        with pytest.raises(ExecError, match="timeout"):
            DirectoryQueueBackend(tmp_path, timeout=0)

    def test_serial_propagates_unit_exception(self, tmp_path):
        unit = WorkUnit(unit_id="boom",
                        spec={"workload": "nonesuch"},
                        result_path=str(tmp_path / "boom.json"))
        from repro.workloads.tracegen import UnknownWorkloadError
        with pytest.raises(UnknownWorkloadError):
            SerialBackend().run_units([unit])


class TestBackendParity:
    def test_all_backends_bit_identical(self, trace_file, tmp_path):
        """Acceptance: serial, pool, and directory queue (2 workers)
        produce byte-identical result documents for the same batch."""
        def units(sub):
            directory = tmp_path / sub
            directory.mkdir()
            return [make_unit(trace_file, directory, rob=rob)
                    for rob in (8, 16, 32)]

        serial = SerialBackend().run_units(units("serial"))
        pool = ProcessPoolBackend(2).run_units(units("pool"))
        queue = DirectoryQueueBackend(
            tmp_path / "q" / "queue", workers=2, poll_seconds=0.02,
            timeout=120).run_units(units("q"))
        assert set(serial) == set(pool) == set(queue)
        for unit_id, payload in serial.items():
            assert pool[unit_id] == payload
            assert queue[unit_id] == payload

    def test_on_result_sees_every_unit(self, trace_file, tmp_path):
        batch = [make_unit(trace_file, tmp_path, rob=rob)
                 for rob in (8, 64)]
        seen = []
        SerialBackend().run_units(
            batch, on_result=lambda u, p: seen.append(u.unit_id))
        assert seen == ["rob8", "rob64"]


def _spawn_worker(queue_dir, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.exec", str(queue_dir),
         "--poll-seconds", "0.02", *extra],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestDirectoryQueue:
    def test_worker_drains_enqueued_units(self, trace_file, tmp_path):
        paths = queue_paths(tmp_path / "queue")
        batch = [make_unit(trace_file, tmp_path, rob=rob)
                 for rob in (8, 16)]
        assert all(enqueue(paths, unit) for unit in batch)
        assert not enqueue(paths, batch[0])  # no double-enqueue
        processed = run_worker(paths.root, exit_when_drained=True,
                               poll_seconds=0.02)
        assert processed == 2
        for unit in batch:
            assert load_unit_result(unit.result_path) is not None
        assert not list(paths.pending.glob("*.json"))
        assert not list(paths.leases.glob("*.json"))
        assert len(list(paths.done.glob("*.json"))) == 2

    def test_worker_skips_already_satisfied_unit(self, trace_file,
                                                 tmp_path):
        unit = make_unit(trace_file, tmp_path, rob=8)
        execute_unit(unit)
        stamp = Path(unit.result_path).stat().st_mtime_ns
        paths = queue_paths(tmp_path / "queue")
        enqueue(paths, unit)
        run_worker(paths.root, exit_when_drained=True,
                   poll_seconds=0.02)
        # Completed for free: the existing result was honored, not
        # recomputed (its file was never rewritten).
        assert Path(unit.result_path).stat().st_mtime_ns == stamp
        assert (paths.done / "rob8.json").exists()

    def test_stale_lease_is_reclaimed_and_completed(self, trace_file,
                                                    tmp_path):
        """The on-disk state a crashed worker leaves — a claimed unit
        going silent — must be recoverable by anyone."""
        paths = queue_paths(tmp_path / "queue")
        unit = make_unit(trace_file, tmp_path, rob=16)
        enqueue(paths, unit)
        lease = claim_next(paths)  # "worker" claims, then dies
        assert lease is not None and lease.exists()
        assert not list(paths.pending.glob("*.json"))
        # Fresh lease: not reclaimable yet.
        assert reclaim_stale(paths, lease_seconds=60) == 0
        # Silence past the horizon: reclaimable by anyone.
        old = time.time() - 120
        os.utime(lease, (old, old))
        assert reclaim_stale(paths, lease_seconds=60) == 1
        assert list(paths.pending.glob("*.json"))
        processed = run_worker(paths.root, exit_when_drained=True,
                               poll_seconds=0.02)
        assert processed == 1
        assert load_unit_result(unit.result_path) is not None

    def test_lease_with_existing_result_completes_not_reruns(
            self, trace_file, tmp_path):
        """Worker died between result write and lease rename: the
        reclaim pass must finish the bookkeeping, not re-simulate."""
        paths = queue_paths(tmp_path / "queue")
        unit = make_unit(trace_file, tmp_path, rob=32)
        enqueue(paths, unit)
        lease = claim_next(paths)
        execute_unit(unit)  # result lands; lease never completed
        old = time.time() - 120
        os.utime(lease, (old, old))
        assert reclaim_stale(paths, lease_seconds=60) == 0
        assert (paths.done / "rob32.json").exists()
        assert not lease.exists()

    def test_worker_killed_mid_unit_leaves_reclaimable_lease(
            self, tmp_path):
        """Satellite: SIGKILL a worker mid-simulation; its lease must
        survive (reclaimable), and another worker must complete the
        batch with no duplicated or lost units."""
        trace = tmp_path / "slow.rtrc"
        write_workload_trace("gzip", PAPER_4WIDE_PERFECT, trace,
                             budget=30_000, seed=7)
        unit = make_unit(trace, tmp_path, rob=16, uid="victim")
        paths = queue_paths(tmp_path / "queue")
        enqueue(paths, unit)
        worker = _spawn_worker(paths.root)
        try:
            deadline = time.monotonic() + 30
            lease = None  # claimant-unique name: victim.<nonce>.json
            while lease is None:
                assert time.monotonic() < deadline, \
                    "worker never claimed the unit"
                assert worker.poll() is None, "worker exited early"
                lease = next(
                    iter(paths.leases.glob("victim.*.json")), None)
                if lease is None:
                    time.sleep(0.005)
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup
                worker.kill()
                worker.wait()
        # Killed mid-unit: the claim is still on disk, unfinished.
        assert lease.exists()
        assert load_unit_result(unit.result_path) is None
        # Another worker (after the lease horizon) completes it.
        old = time.time() - 120
        os.utime(lease, (old, old))
        processed = run_worker(paths.root, exit_when_drained=True,
                               poll_seconds=0.02, lease_seconds=60)
        assert processed == 1
        payload = load_unit_result(unit.result_path)
        assert payload is not None and "error" not in payload
        assert len(list(paths.done.glob("*.json"))) == 1
        assert not lease.exists()

    def test_failing_unit_surfaces_as_unit_execution_error(
            self, tmp_path):
        unit = WorkUnit(unit_id="boom",
                        spec={"workload": "nonesuch"},
                        result_path=str(tmp_path / "boom.json"))
        backend = DirectoryQueueBackend(
            tmp_path / "queue", workers=1, poll_seconds=0.02,
            timeout=120)
        with pytest.raises(UnitExecutionError,
                           match="UnknownWorkloadError") as info:
            backend.run_units([unit])
        assert info.value.unit_id == "boom"
        assert info.value.kind == "UnknownWorkloadError"
        # The error document is on disk for post-mortems...
        payload = load_unit_result(unit.result_path)
        assert payload["error"]["type"] == "UnknownWorkloadError"
        # ...but is never mistaken for a usable checkpoint.
        assert "stats" not in payload

    def test_failed_unit_is_retried_on_the_next_run(self, trace_file,
                                                    tmp_path):
        """A stale error document must not poison later runs: once
        the cause is fixed, re-submitting the unit re-executes it
        (the 'a later rerun recomputes it' contract)."""
        moved = tmp_path / "not-there-yet.rtrc"
        unit = WorkUnit.for_trace(
            "flaky", moved, config_to_dict(PAPER_4WIDE_PERFECT),
            tmp_path / "flaky.json")
        queue_dir = tmp_path / "queue"
        with pytest.raises(UnitExecutionError):
            DirectoryQueueBackend(
                queue_dir, workers=1, poll_seconds=0.02,
                timeout=120).run_units([unit])
        assert "error" in load_unit_result(unit.result_path)
        # The transient cause goes away (the trace appears)...
        moved.write_bytes(Path(trace_file).read_bytes())
        # ...and a rerun recomputes instead of replaying the error.
        results = DirectoryQueueBackend(
            queue_dir, workers=1, poll_seconds=0.02,
            timeout=120).run_units([unit])
        assert "stats" in results["flaky"]
        assert load_unit_result(unit.result_path) == results["flaky"]

    def test_coordinator_timeout_when_no_workers(self, trace_file,
                                                 tmp_path):
        backend = DirectoryQueueBackend(
            tmp_path / "queue", workers=0, poll_seconds=0.02,
            timeout=0.3)
        with pytest.raises(ExecError, match="no unit completed"):
            backend.run_units([make_unit(trace_file, tmp_path)])

    def test_live_lease_defers_the_timeout(self, trace_file,
                                           tmp_path):
        """A heartbeaten lease proves a worker is alive: a unit
        slower than --queue-timeout must not abort the run."""
        import threading
        paths = queue_paths(tmp_path / "queue")
        unit = make_unit(trace_file, tmp_path, rob=16)
        enqueue(paths, unit)
        lease = claim_next(paths)  # a live (fresh) worker's claim
        assert lease is not None

        def slow_worker():
            time.sleep(0.8)  # well past the 0.2s timeout below
            execute_unit(unit)

        thread = threading.Thread(target=slow_worker)
        thread.start()
        try:
            backend = DirectoryQueueBackend(
                tmp_path / "queue", workers=0, poll_seconds=0.02,
                timeout=0.2, lease_seconds=60)
            results = backend.run_units([unit])
        finally:
            thread.join()
        assert "stats" in results["rob16"]

    def test_stale_result_for_different_spec_not_revived(
            self, trace_file, tmp_path):
        """A result file produced by a *different* unit at the same
        path (same id, different spec) must be recomputed, not
        reused — reusing it would break the bit-identical contract
        with the serial backend."""
        stale = make_unit(trace_file, tmp_path, rob=8, uid="point")
        execute_unit(stale)  # rob=8 statistics now live at the path
        fresh = make_unit(trace_file, tmp_path, rob=64, uid="point")
        queued = DirectoryQueueBackend(
            tmp_path / "queue", workers=1, poll_seconds=0.02,
            timeout=120).run_units([fresh])
        reference = SerialBackend().run_units(
            [make_unit(trace_file, tmp_path / "ref", rob=64,
                       uid="point")])
        assert queued["point"]["stats"] == \
            reference["point"]["stats"]
        assert queued["point"]["config"]["rob_entries"] == 64

    def test_worker_recomputes_mismatched_result(self, trace_file,
                                                 tmp_path):
        """Same guard on the worker side: an existing result is only
        honored when it matches the claimed unit exactly."""
        stale = make_unit(trace_file, tmp_path, rob=8, uid="point")
        execute_unit(stale)
        fresh = make_unit(trace_file, tmp_path, rob=64, uid="point")
        paths = queue_paths(tmp_path / "queue")
        enqueue(paths, fresh)
        assert run_worker(paths.root, exit_when_drained=True,
                          poll_seconds=0.02) == 1
        payload = load_unit_result(fresh.result_path)
        assert payload["config"]["rob_entries"] == 64

    def test_result_matches_unit_gates_on_identity(self, trace_file,
                                                   tmp_path):
        from repro.exec.unit import result_matches_unit
        unit = make_unit(trace_file, tmp_path, rob=16)
        payload = execute_unit(unit)
        assert result_matches_unit(payload, unit)
        assert not result_matches_unit(None, unit)
        assert not result_matches_unit(
            payload, make_unit(trace_file, tmp_path, rob=8,
                               uid="rob16"))
        other_tags = WorkUnit(unit_id=unit.unit_id, spec=unit.spec,
                              result_path=unit.result_path,
                              tags={"sweep": {"workload": "bzip2"}})
        assert not result_matches_unit(payload, other_tags)

    def test_unreadable_descriptor_abandoned_not_counted(
            self, tmp_path):
        paths = queue_paths(tmp_path / "queue")
        (paths.pending / "garbage.json").write_text("{not json")
        assert run_worker(paths.root, exit_when_drained=True,
                          poll_seconds=0.02) == 0
        assert (paths.done / "garbage.json").exists()
        assert not list(paths.pending.glob("*.json"))

    def test_reusable_across_drains(self, trace_file, tmp_path):
        """One backend instance serves batch after batch (the shape
        adaptive search uses)."""
        backend = DirectoryQueueBackend(
            tmp_path / "queue", workers=1, poll_seconds=0.02,
            timeout=120)
        first = backend.run_units(
            [make_unit(trace_file, tmp_path, rob=8)])
        second = backend.run_units(
            [make_unit(trace_file, tmp_path, rob=16)])
        assert set(first) == {"rob8"}
        assert set(second) == {"rob16"}


# -- sharded execution ------------------------------------------------

from repro.exec import (  # noqa: E402  (grouped with their tests)
    EXACT_SUM_COUNTERS,
    ShardPlan,
    ShardReducer,
    merge_result_documents,
    plan_shards,
    shard_units,
)
from repro.trace.fileio import read_segment_table  # noqa: E402
from repro.trace.fileio import iter_trace_records  # noqa: E402


@pytest.fixture(scope="module")
def segmented_trace(tmp_path_factory):
    """A finely segmented trace the shard planner can actually split."""
    path = tmp_path_factory.mktemp("shard") / "gzip.rtrc"
    write_workload_trace("gzip", PAPER_4WIDE_PERFECT, path,
                         budget=2_000, seed=7, segment_records=64)
    return path


def make_base_unit(trace, out_dir, uid="point") -> WorkUnit:
    return WorkUnit.for_trace(
        uid, trace, config_to_dict(PAPER_4WIDE_PERFECT),
        Path(out_dir) / f"{uid}.json",
        tags={"sweep": {"workload": "gzip"}})


class TestShardPlan:
    def test_ranges_partition_the_segment_table(self, segmented_trace):
        table = read_segment_table(segmented_trace)
        plan = plan_shards(segmented_trace, 4)
        assert plan.shards == 4
        assert plan.ranges[0][0] == 0
        assert plan.ranges[-1][1] == len(table)
        for (_, hi), (lo, _) in zip(plan.ranges, plan.ranges[1:], strict=False):
            assert hi == lo  # contiguous, no gap, no overlap
        assert plan.total_records == sum(s.record_count for s in table)

    def test_boundaries_are_clean(self, segmented_trace):
        """Every shard must open on the correct path — a boundary
        cutting a branch from its wrong-path block would lose the
        misprediction signal."""
        table = read_segment_table(segmented_trace)
        plan = plan_shards(segmented_trace, 5)
        for lo, _ in plan.ranges[1:]:
            first = next(iter_trace_records(
                segmented_trace, segments=table[lo:lo + 1]))
            assert not first.tag, f"shard boundary {lo} is dirty"

    def test_shards_balanced_by_records(self, segmented_trace):
        plan = plan_shards(segmented_trace, 4)
        ideal = plan.total_records / 4
        for count in plan.records:
            # Clean snapping moves cuts by about a segment, no more.
            assert abs(count - ideal) <= 3 * 64

    def test_more_shards_than_segments_clamps(self, segmented_trace):
        table = read_segment_table(segmented_trace)
        plan = plan_shards(segmented_trace, 10_000)
        assert plan.shards <= len(table)
        assert all(count > 0 for count in plan.records)

    def test_single_shard_and_bad_count(self, segmented_trace):
        plan = plan_shards(segmented_trace, 1)
        assert plan.shards == 1
        with pytest.raises(ExecError, match="shards must be >= 1"):
            plan_shards(segmented_trace, 0)

    def test_v1_trace_is_one_pseudo_segment(self, tmp_path):
        from repro.trace.fileio import write_trace_file
        from repro.workloads.tracegen import generate_workload_trace
        generation, start_pc = generate_workload_trace(
            "gzip", PAPER_4WIDE_PERFECT, budget=500, seed=7)
        path = tmp_path / "v1.rtrc"
        write_trace_file(path, generation.records, version=1)
        plan = plan_shards(path, 4)  # cannot split a v1 payload
        assert plan.shards == 1


class TestShardPlanAdversarial:
    """Boundary snapping against traces *built* to have dirty
    stretches exactly where the record-balanced cuts want to land.

    Regression for the planner's forward-only boundary scan: one long
    dirty stretch used to push a boundary past every later target,
    starving all trailing shards down to single segments."""

    SEGMENT_RECORDS = 8

    def _tagged_trace(self, directory, dirty, *, segments=16):
        """A v2 trace whose segment ``i`` opens wrong-path (dirty)
        exactly when ``i in dirty`` — the only thing the planner's
        cleanliness probe looks at."""
        from repro.trace.fileio import write_trace_file
        from repro.trace.record import OtherRecord
        records = [
            OtherRecord(tag=(slot == 0 and segment in dirty))
            for segment in range(segments)
            for slot in range(self.SEGMENT_RECORDS)]
        path = Path(directory) / "adversarial.rtrc"
        write_trace_file(path, records,
                         segment_records=self.SEGMENT_RECORDS)
        return path

    def _assert_boundaries_clean(self, plan, dirty):
        for lo, _ in plan.ranges[1:]:
            assert lo not in dirty, f"boundary {lo} is dirty"

    def test_dirty_stretch_does_not_starve_trailing_shards(
            self, tmp_path):
        # Targets for 4 shards over 16 uniform segments: 4, 8, 12.
        # Segments 4..11 are dirty; the nearest-in-either-direction
        # search lands 3 / 12 / 13, keeping four shards alive.  The
        # old forward-only scan slid the first boundary to 12 and
        # left every trailing shard a single segment.
        dirty = set(range(4, 12))
        plan = plan_shards(self._tagged_trace(tmp_path, dirty), 4)
        assert plan.ranges == ((0, 3), (3, 12), (12, 13), (13, 16))
        self._assert_boundaries_clean(plan, dirty)

    def test_all_dirty_interior_collapses_to_one_shard(self, tmp_path):
        # No clean cut exists at all: merging into one shard is the
        # only sound plan (never an empty or dirty-opening shard).
        dirty = set(range(1, 16))
        plan = plan_shards(self._tagged_trace(tmp_path, dirty), 4)
        assert plan.ranges == ((0, 16),)

    @given(data=st.data(),
           shards=st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_boundaries_are_nearest_clean_cuts(self, data, shards,
                                               tmp_path_factory):
        """Property: every chosen boundary is clean, respects the
        previous boundary's floor, and no *closer* admissible clean
        segment to the record-balanced target exists (the
        nearest-in-either-direction contract)."""
        segments = data.draw(st.integers(min_value=4, max_value=24))
        dirty = data.draw(st.sets(
            st.integers(min_value=1, max_value=segments - 1)))
        trace = self._tagged_trace(
            tmp_path_factory.mktemp("adv"), dirty, segments=segments)
        plan = plan_shards(trace, shards)
        assert plan.ranges[0][0] == 0
        assert plan.ranges[-1][1] == segments
        assert all(hi > lo for lo, hi in plan.ranges)
        self._assert_boundaries_clean(plan, dirty)
        # Replay the target rule; check nearest-ness of each cut.
        effective = min(shards, segments)
        boundaries = [lo for lo, _ in plan.ranges[1:]]
        previous = 0
        from bisect import bisect_left
        cumulative = [self.SEGMENT_RECORDS * index
                      for index in range(segments + 1)]
        total = cumulative[-1]
        for k in range(1, effective):
            if previous + 1 > segments - 1 or not boundaries:
                break
            target = (total * k) // effective
            candidate = min(max(bisect_left(cumulative, target),
                                previous + 1), segments - 1)
            admissible = [index for index in range(previous + 1,
                                                   segments)
                          if index not in dirty]
            if not admissible:
                continue  # planner merged this cut into a neighbor
            chosen = boundaries.pop(0)
            best = min(abs(index - candidate) for index in admissible)
            assert abs(chosen - candidate) == best, (
                f"boundary {chosen} is {abs(chosen - candidate)} "
                f"segments from target {candidate}; a clean cut "
                f"{best} away existed (dirty={sorted(dirty)})")
            previous = chosen
        assert not boundaries, "planner produced unexplained cuts"


class TestShardUnits:
    def test_units_carry_ranges_tags_and_paths(self, segmented_trace,
                                               tmp_path):
        base = make_base_unit(segmented_trace, tmp_path)
        plan = plan_shards(segmented_trace, 3)
        units = shard_units(base, plan)
        assert [u.spec["segments"] for u in units] == \
            [list(span) for span in plan.ranges]
        for index, unit in enumerate(units):
            assert unit.unit_id == f"point.s{index}of3"
            assert unit.tags["shard"] == {
                "index": index, "of": 3, "unit": "point"}
            assert unit.tags["sweep"] == base.tags["sweep"]
            assert unit.result_path.endswith(f"point.s{index}of3.json")
            # Everything else of the spec rides along unchanged.
            rest = {k: v for k, v in unit.spec.items()
                    if k != "segments"}
            assert rest == dict(base.spec)

    def test_already_sharded_unit_refused(self, segmented_trace,
                                          tmp_path):
        base = WorkUnit.for_trace(
            "shard", segmented_trace, "4wide-perfect",
            tmp_path / "s.json", segments=(0, 2))
        with pytest.raises(ExecError, match="already segment"):
            shard_units(base, plan_shards(segmented_trace, 2))

    def test_sharded_result_key_is_reserved(self, tmp_path):
        with pytest.raises(ExecError, match="may not shadow"):
            WorkUnit(unit_id="x", spec={"workload": "gzip"},
                     result_path=str(tmp_path / "x.json"),
                     tags={"sharded": {}})


class TestShardReducer:
    def test_merged_document_matches_monolithic_exact_sums(
            self, segmented_trace, tmp_path):
        base = make_base_unit(segmented_trace, tmp_path)
        monolithic = execute_unit(base)
        plan = plan_shards(segmented_trace, 4)
        reducer = ShardReducer(base, plan)
        for unit in shard_units(base, plan):
            reducer.add(execute_unit(unit))
        assert reducer.complete
        merged = reducer.write()
        for counter in EXACT_SUM_COUNTERS:
            assert merged["stats"][counter] == \
                monolithic["stats"][counter], counter
        # The merged document is checkpoint-shaped: loadable, shard-
        # tagged, carrying the monolithic unit's identity and tags.
        loaded = load_unit_result(base.result_path)
        assert loaded is not None
        assert loaded["unit_id"] == base.unit_id
        assert loaded["spec"] == dict(base.spec)
        assert loaded["sweep"] == base.tags["sweep"]
        assert loaded["sharded"]["shards"] == 4
        assert len(loaded["stats"]["shards"]) == 4

    def test_out_of_order_and_duplicate_adds(self, segmented_trace,
                                             tmp_path):
        base = make_base_unit(segmented_trace, tmp_path, uid="ooo")
        plan = plan_shards(segmented_trace, 2)
        payloads = [execute_unit(u) for u in shard_units(base, plan)]
        reducer = ShardReducer(base, plan)
        reducer.add(payloads[1])  # any order
        with pytest.raises(ExecError, match="not collected yet"):
            reducer.merged()
        reducer.add(payloads[0])
        assert reducer.complete
        with pytest.raises(ExecError, match="duplicate result"):
            reducer.add(payloads[0])

    def test_foreign_and_untagged_payloads_rejected(
            self, segmented_trace, tmp_path):
        base = make_base_unit(segmented_trace, tmp_path, uid="bad")
        plan = plan_shards(segmented_trace, 2)
        reducer = ShardReducer(base, plan)
        with pytest.raises(ExecError, match="no shard tag"):
            reducer.add(execute_unit(base))  # monolithic result
        other_plan_payload = execute_unit(
            shard_units(make_base_unit(segmented_trace, tmp_path,
                                       uid="other"),
                        plan_shards(segmented_trace, 3))[0])
        with pytest.raises(ExecError, match="does not belong"):
            reducer.add(other_plan_payload)
        # Same shard count, different unit: still refused — a shard
        # of another design point must never fold into this one.
        foreign_unit_payload = execute_unit(
            shard_units(make_base_unit(segmented_trace, tmp_path,
                                       uid="foreign"), plan)[0])
        with pytest.raises(ExecError, match="does not belong"):
            reducer.add(foreign_unit_payload)

    def test_merge_refuses_shards_of_different_runs(
            self, segmented_trace, tmp_path):
        """Two shards with equal configs but different run specs
        (budget/seed/trace) describe different experiments; the
        standalone reducer must refuse, not average them."""
        base = make_base_unit(segmented_trace, tmp_path, uid="runa")
        plan = plan_shards(segmented_trace, 2)
        units = shard_units(base, plan)
        good = execute_unit(units[0])
        other = dict(execute_unit(units[1]))
        other_spec = dict(other["spec"])
        other_spec["budget"] = 99_999  # same config, different run
        other["spec"] = other_spec
        with pytest.raises(ExecError, match="different runs"):
            merge_result_documents([good, other])

    def test_merge_refuses_errors_and_mixed_configs(
            self, segmented_trace, tmp_path):
        base = make_base_unit(segmented_trace, tmp_path, uid="mix")
        plan = plan_shards(segmented_trace, 2)
        units = shard_units(base, plan)
        good = execute_unit(units[0])
        from repro.exec.unit import error_document
        failed = error_document(units[1], ValueError("boom"))
        with pytest.raises(ExecError, match="failed shard"):
            merge_result_documents([good, failed])
        other_config = replace(PAPER_4WIDE_PERFECT, rob_entries=8)
        foreign = dict(good)
        foreign["config"] = config_to_dict(other_config)
        with pytest.raises(ExecError, match="different design points"):
            merge_result_documents([good, foreign])
        with pytest.raises(ExecError, match="nothing to merge"):
            merge_result_documents([])

    def test_standalone_merge_composes_associatively(
            self, segmented_trace, tmp_path):
        """`resim stats merge` semantics: merging merged documents
        flattens provenance, and any grouping yields the same
        statistics."""
        base = make_base_unit(segmented_trace, tmp_path, uid="assoc")
        plan = plan_shards(segmented_trace, 3)
        payloads = [execute_unit(u) for u in shard_units(base, plan)]
        flat = merge_result_documents(payloads)
        nested = merge_result_documents(
            [merge_result_documents(payloads[:2]), payloads[2]])
        assert flat["stats"] == nested["stats"]
        assert len(nested["stats"]["shards"]) == 3


class TestShardedQueueFaultTolerance:
    def test_killed_shard_worker_unit_reclaimed_merge_unchanged(
            self, tmp_path):
        """Satellite: SIGKILL a worker mid-shard; the shard's unit is
        reclaimed and re-run, and the merged point result is
        byte-identical to an undisturbed reduction."""
        trace = tmp_path / "slow.rtrc"
        write_workload_trace("gzip", PAPER_4WIDE_PERFECT, trace,
                             budget=30_000, seed=7,
                             segment_records=2048)
        base = make_base_unit(trace, tmp_path, uid="victim")
        plan = plan_shards(trace, 2)
        units = shard_units(base, plan)
        reference = [execute_unit(unit) for unit in units]
        for unit in units:  # forget the reference runs' files
            Path(unit.result_path).unlink()

        paths = queue_paths(tmp_path / "queue")
        for unit in units:
            assert enqueue(paths, unit)
        worker = _spawn_worker(paths.root)
        try:
            deadline = time.monotonic() + 30
            lease = None
            while lease is None:
                assert time.monotonic() < deadline, \
                    "worker never claimed a shard"
                assert worker.poll() is None, "worker exited early"
                lease = next(
                    iter(paths.leases.glob("victim.s*.json")), None)
                if lease is None:
                    time.sleep(0.005)
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup
                worker.kill()
                worker.wait()
        assert lease.exists()  # the kill left a reclaimable claim
        old = time.time() - 120
        os.utime(lease, (old, old))
        processed = run_worker(paths.root, exit_when_drained=True,
                               poll_seconds=0.02, lease_seconds=60)
        assert processed == 2
        reducer = ShardReducer(base, plan)
        for unit in units:
            payload = load_unit_result(unit.result_path)
            assert payload is not None and "error" not in payload
            reducer.add(payload)
        merged = reducer.merged()
        undisturbed = merge_result_documents(
            reference, unit_id=base.unit_id,
            spec=dict(base.spec), tags=dict(base.tags))
        assert merged == undisturbed
