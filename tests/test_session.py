"""The session facade: Simulation, specs, registries, observers.

The central contract: every path through :class:`repro.session.Simulation`
— fluent, declarative, or file-backed — produces *bit-identical*
statistics to the hand-wired ``generate_workload_trace`` +
``ReSimEngine(...).run()`` pipeline it replaced.
"""

import json

import pytest

from repro.bpred.unit import PREDICTORS, PredictorConfig
from repro.cache.replacement import REPLACEMENT_POLICIES, LruPolicy
from repro.core.config import PAPER_4WIDE_PERFECT, ProcessorConfig
from repro.core.engine import EngineObserver, ReSimEngine
from repro.fpga.device import DEVICES, VIRTEX4_LX40
from repro.serialize import config_from_dict, config_to_dict, stats_to_dict
from repro.session import (
    CONFIGS,
    SessionError,
    Simulation,
    WORKLOADS,
)
from repro.sweep import SweepRunner, SweepSpec
from repro.utils.registry import Registry, RegistryError
from repro.workloads.tracegen import generate_workload_trace

BUDGET = 2_000


def hand_wired(workload="gzip", config=PAPER_4WIDE_PERFECT,
               budget=BUDGET, seed=7):
    generation, start_pc = generate_workload_trace(
        workload, config, budget=budget, seed=seed)
    return ReSimEngine(config, generation.records, start_pc=start_pc).run()


class TestFacadeEquivalence:
    def test_workload_run_bit_identical_to_hand_wiring(self):
        direct = hand_wired()
        session = Simulation.for_workload("gzip", budget=BUDGET).run()
        assert stats_to_dict(session.stats) == stats_to_dict(direct.stats)

    def test_kernel_run_bit_identical(self):
        direct = hand_wired("vecsum")
        session = Simulation.for_workload("vecsum", budget=BUDGET).run()
        assert stats_to_dict(session.stats) == stats_to_dict(direct.stats)

    def test_trace_file_round_trip_bit_identical(self, tmp_path):
        path = tmp_path / "t.rtrc"
        sim = Simulation.for_workload("vecsum", budget=BUDGET)
        records, written = sim.save_trace(path)
        assert records > 0 and written > 0
        replayed = Simulation.for_trace_file(path).run()
        assert (stats_to_dict(replayed.stats)
                == stats_to_dict(sim.run().stats))

    def test_records_source(self):
        generation, start_pc = generate_workload_trace(
            "gzip", PAPER_4WIDE_PERFECT, budget=BUDGET, seed=7)
        session = Simulation.for_records(
            generation.records, start_pc=start_pc).run()
        assert stats_to_dict(session.stats) == stats_to_dict(
            hand_wired().stats)

    def test_device_projection_matches_throughput_model(self):
        from repro.perf.throughput import ThroughputModel
        session = (Simulation.for_workload("gzip", budget=BUDGET)
                   .with_devices("xc4vlx40").run())
        expected = ThroughputModel(VIRTEX4_LX40).report(session.result)
        assert session.mips("xc4vlx40") == expected.mips
        with pytest.raises(KeyError, match="no projection"):
            session.mips("xc5vlx50t")

    def test_fluent_builders_do_not_mutate_the_base(self):
        base = Simulation.for_workload("gzip", budget=BUDGET)
        variant = base.with_seed(11).with_budget(500)
        assert base.seed == 7 and base.budget == BUDGET
        assert variant.seed == 11 and variant.budget == 500

    def test_prepare_is_cached(self):
        sim = Simulation.for_workload("gzip", budget=BUDGET)
        assert sim.prepare() is sim.prepare()

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            Simulation.for_workload("doom", budget=100).run()


class TestSpecs:
    def test_spec_round_trip_describes_the_same_run(self):
        sim = (Simulation.for_workload("gzip", budget=BUDGET)
               .with_devices("xc4vlx40").with_warmup(100).with_roi(500))
        spec = sim.to_spec()
        # The spec is plain JSON.
        reloaded = json.loads(json.dumps(spec))
        r1 = Simulation.from_spec(reloaded).run()
        r2 = sim.run()
        assert stats_to_dict(r1.stats) == stats_to_dict(r2.stats)
        assert r1.mips("xc4vlx40") == r2.mips("xc4vlx40")

    def test_from_spec_reproduces_simulate_bit_identically(self):
        direct = hand_wired()
        session = Simulation.from_spec(
            {"workload": "gzip", "budget": BUDGET}).run()
        assert stats_to_dict(session.stats) == stats_to_dict(direct.stats)

    def test_from_spec_reproduces_sweep_point_bit_identically(
            self, tmp_path):
        spec = SweepSpec(axes={"rob_entries": (8, 16)})
        result = SweepRunner(spec, "gzip", results_dir=tmp_path / "out",
                             budget=BUDGET).run()
        trace_files = list((tmp_path / "out").glob("trace-*.rtrc"))
        assert len(trace_files) == 1
        for outcome in result:
            session = Simulation.from_spec({
                "trace_file": str(trace_files[0]),
                "config": config_to_dict(outcome.config),
            }).run()
            assert (stats_to_dict(session.stats)
                    == stats_to_dict(outcome.stats))

    def test_from_spec_named_config_and_devices(self):
        session = Simulation.from_spec({
            "workload": "vecsum",
            "config": "2wide-cache",
            "devices": ["xc4vlx40", "xc5vlx50t"],
        })
        assert session.config == CONFIGS.get("2wide-cache")
        assert [d.name for d in session.devices] == ["xc4vlx40",
                                                     "xc5vlx50t"]

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(SessionError, match="unknown spec key"):
            Simulation.from_spec({"workload": "gzip", "budge": 100})

    def test_from_spec_rejects_zero_or_two_sources(self):
        with pytest.raises(SessionError, match="exactly one source"):
            Simulation.from_spec({"budget": 100})
        with pytest.raises(SessionError, match="exactly one source"):
            Simulation.from_spec({"workload": "gzip",
                                  "trace_file": "t.rtrc"})

    def test_from_spec_rejects_wrong_schema(self):
        with pytest.raises(SessionError, match="schema"):
            Simulation.from_spec({"workload": "gzip", "schema": 99})

    def test_from_spec_rejects_bad_config_value(self):
        with pytest.raises(RegistryError, match="unknown config"):
            Simulation.from_spec({"workload": "gzip", "config": "8wide"})
        with pytest.raises(SessionError, match="config"):
            Simulation.from_spec({"workload": "gzip", "config": 17})

    def test_from_spec_rejects_incomplete_config_dict(self):
        # Regression: a partial config dict escaped as a raw KeyError.
        with pytest.raises(SessionError, match="bad config in spec"):
            Simulation.from_spec({"workload": "gzip",
                                  "config": {"width": 4}})

    def test_from_spec_coerces_and_validates_numeric_fields(self):
        # Regression: a string roi_instructions used to crash mid-run.
        session = Simulation.from_spec({
            "workload": "gzip", "budget": 500,
            "roi_instructions": "300", "max_cycles": "100000",
        })
        assert session._roi == 300
        with pytest.raises(SessionError, match="bad value in spec"):
            Simulation.from_spec({"workload": "gzip",
                                  "roi_instructions": "lots"})

    def test_to_spec_refuses_unserializable_runs(self):
        generation, _ = generate_workload_trace(
            "gzip", PAPER_4WIDE_PERFECT, budget=500, seed=7)
        with pytest.raises(SessionError, match="no serializable"):
            Simulation.for_records(generation.records).to_spec()
        with pytest.raises(SessionError, match="does not serialize"):
            (Simulation.for_workload("gzip")
             .with_stop_when(lambda e: False).to_spec())

    def test_to_spec_uses_registered_config_name(self):
        spec = Simulation.for_workload("gzip").to_spec()
        assert spec["config"] == "4wide-perfect"
        custom = Simulation.for_workload(
            "gzip", ProcessorConfig(rob_entries=32)).to_spec()
        assert isinstance(custom["config"], dict)
        assert custom["config"]["rob_entries"] == 32

    def test_session_result_to_json(self, tmp_path):
        session = (Simulation.for_workload("vecsum")
                   .with_devices("xc4vlx40").run())
        path = tmp_path / "r.json"
        session.to_json(path)
        document = json.loads(path.read_text())
        assert document["spec"]["workload"] == "vecsum"
        assert document["mips"]["xc4vlx40"] == session.mips("xc4vlx40")
        assert config_from_dict(document["config"]) == session.config


class TestRegistries:
    def test_component_registries_are_populated(self):
        assert set(CONFIGS) == {"4wide-perfect", "2wide-cache"}
        assert "xc4vlx40" in DEVICES
        assert "gzip" in WORKLOADS and "vecsum" in WORKLOADS
        assert "twolevel" in PREDICTORS
        assert "lru" in REPLACEMENT_POLICIES

    def test_aliases_resolve_but_stay_hidden(self):
        assert REPLACEMENT_POLICIES.get("l") is LruPolicy
        assert "l" not in list(REPLACEMENT_POLICIES)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(RegistryError, match="choose from"):
            DEVICES.get("xc9999")

    def test_registry_error_is_both_key_and_value_error(self):
        with pytest.raises(KeyError):
            DEVICES.get("nope")
        with pytest.raises(ValueError):
            DEVICES.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_decorator_registration(self):
        registry = Registry("builder")

        @registry.register("f")
        def build():
            return 42

        assert registry.get("f") is build

    def test_registered_config_reaches_the_cli_name_surface(self):
        name = "test-tiny"
        CONFIGS.register(name, ProcessorConfig(rob_entries=8,
                                               lsq_entries=4))
        try:
            session = Simulation.from_spec(
                {"workload": "vecsum", "config": name}).run()
            assert session.config.rob_entries == 8
        finally:
            CONFIGS._components.pop(name)

    def test_predictor_registry_builds_every_scheme(self):
        for scheme in PREDICTORS:
            built = PREDICTORS.get(scheme)(
                PredictorConfig(scheme=scheme))
            assert built is not None

    def test_dict_style_get_with_default_still_works(self):
        # Regression: DEVICES was a plain dict before the registry;
        # the two-argument dict.get form must keep working.
        sentinel = object()
        assert DEVICES.get("xc9999", sentinel) is sentinel
        assert DEVICES.get("xc9999", None) is None
        assert DEVICES.get("xc4vlx40", sentinel) is VIRTEX4_LX40

    def test_late_registered_predictor_is_a_valid_sweep_axis(self):
        # Regression: SweepSpec validated against an import-time
        # snapshot, rejecting schemes registered afterwards.
        from repro.bpred.perfect import PerfectPredictor

        PREDICTORS.register("test-oracle", lambda cfg: PerfectPredictor())
        try:
            spec = SweepSpec(axes={"predictor": ["test-oracle"]})
            points = list(spec.expand())
            assert points[0].config.predictor.scheme == "test-oracle"
        finally:
            PREDICTORS._components.pop("test-oracle")


class TestObservers:
    class Recorder(EngineObserver):
        def __init__(self):
            self.cycles = 0
            self.commits = 0
            self.recoveries = 0

        def on_cycle(self, engine):
            self.cycles += 1

        def on_commit(self, engine, op):
            self.commits += 1

        def on_recovery(self, engine, branch):
            self.recoveries += 1

    def test_observer_counts_match_statistics(self):
        recorder = self.Recorder()
        session = (Simulation.for_workload("gzip", budget=BUDGET)
                   .with_observer(recorder).run())
        assert recorder.cycles == session.major_cycles
        assert recorder.commits == int(
            session.stats.committed_instructions)
        assert recorder.recoveries == int(session.stats.mispredictions)

    def test_observers_do_not_change_timing(self):
        plain = Simulation.for_workload("gzip", budget=BUDGET).run()
        observed = (Simulation.for_workload("gzip", budget=BUDGET)
                    .with_observer(self.Recorder()).run())
        assert stats_to_dict(plain.stats) == stats_to_dict(observed.stats)

    def test_unoverridden_hooks_are_not_dispatched(self):
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, [])
        engine.add_observer(EngineObserver())  # overrides nothing
        assert engine._cycle_hooks == ()
        assert engine._commit_hooks == ()
        assert engine._recovery_hooks == ()

    def test_remove_observer(self):
        recorder = self.Recorder()
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, [])
        engine.add_observer(recorder)
        assert engine.observers == (recorder,)
        engine.remove_observer(recorder)
        assert engine.observers == ()
        assert engine._cycle_hooks == ()

    def test_commit_hook_never_sees_wrong_path_ops(self):
        seen = []

        class Check(EngineObserver):
            def on_commit(self, engine, op):
                seen.append(op)

        (Simulation.for_workload("gzip", budget=BUDGET)
         .with_observer(Check()).run())
        assert seen and not any(op.is_wrong_path for op in seen)


class TestRunWindowControls:
    def test_warmup_resets_statistics_but_keeps_state_warm(self):
        full = Simulation.for_workload("gzip", budget=BUDGET).run()
        warmed = (Simulation.for_workload("gzip", budget=BUDGET)
                  .with_warmup(500).run())
        committed = int(warmed.stats.committed_instructions)
        assert committed < int(full.stats.committed_instructions)
        assert warmed.major_cycles < full.major_cycles

    def test_roi_stops_after_n_committed_instructions(self):
        session = (Simulation.for_workload("gzip", budget=BUDGET)
                   .with_roi(300).run())
        committed = int(session.stats.committed_instructions)
        # The commit stage retires up to `width` per cycle, so the
        # stop lands within one commit group of the target.
        assert 300 <= committed < 300 + PAPER_4WIDE_PERFECT.width

    def test_stop_when_predicate(self):
        session = (Simulation.for_workload("gzip", budget=BUDGET)
                   .with_stop_when(lambda e: e.cycle >= 50).run())
        assert session.major_cycles == 50

    def test_window_controls_reject_bad_values(self):
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, [])
        with pytest.raises(ValueError):
            engine.run(warmup_instructions=-1)
        with pytest.raises(ValueError):
            engine.run(roi_instructions=0)


class TestConfigValidation:
    """Regression: zero/negative FU counts and latencies were accepted."""

    @pytest.mark.parametrize("field", [
        "mul_count", "div_count", "alu_latency", "mul_latency",
        "div_latency", "memory_latency",
    ])
    def test_zero_and_negative_rejected(self, field):
        for bad in (0, -1):
            with pytest.raises(ValueError, match=field):
                ProcessorConfig(**{field: bad})

    def test_positive_values_still_accepted(self):
        config = ProcessorConfig(mul_count=2, div_count=2,
                                 alu_latency=2, mul_latency=5,
                                 div_latency=20, memory_latency=30)
        assert config.mul_count == 2


class TestSharedSerialization:
    """sweep/serialize is now a shim over repro.serialize."""

    def test_shim_exports_the_same_objects(self):
        import repro.serialize as shared
        import repro.sweep.serialize as shim
        for name in ("config_to_dict", "config_from_dict",
                     "stats_to_dict", "stats_from_dict",
                     "canonical_digest", "config_key"):
            assert getattr(shim, name) is getattr(shared, name)

    def test_config_round_trip(self):
        config = ProcessorConfig(rob_entries=32, mul_latency=5)
        assert config_from_dict(config_to_dict(config)) == config


class TestSegmentRanges:
    """Segment-range trace-file runs: the worker-side half of sharded
    distributed work units."""

    @pytest.fixture(scope="class")
    def segmented_trace(self, tmp_path_factory):
        from repro.workloads.tracegen import write_workload_trace
        path = tmp_path_factory.mktemp("seg") / "gzip.rtrc"
        written = write_workload_trace(
            "gzip", PAPER_4WIDE_PERFECT, path, budget=4_000, seed=7,
            segment_records=256)
        assert written.record_count > 512  # several segments
        return path

    def test_segment_range_restricts_the_stream(self, segmented_trace):
        full = Simulation.for_trace_file(segmented_trace)
        shard = Simulation.for_trace_file(segmented_trace,
                                          segments=(0, 2))
        assert shard.prepare().record_count == 512
        assert full.prepare().record_count > 512

    def test_full_range_matches_unsharded_run(self, segmented_trace):
        from repro.trace.fileio import read_segment_table
        count = len(read_segment_table(segmented_trace))
        full = Simulation.for_trace_file(segmented_trace).run()
        ranged = Simulation.for_trace_file(
            segmented_trace, segments=(0, count)).run()
        assert stats_to_dict(ranged.stats) == stats_to_dict(full.stats)

    def test_segments_spec_round_trip(self, segmented_trace):
        sim = Simulation.for_trace_file(segmented_trace,
                                        segments=(1, 3))
        spec = sim.to_spec()
        assert spec["segments"] == [1, 3]
        rebuilt = Simulation.from_spec(spec)
        assert rebuilt.prepare().record_count == \
            sim.prepare().record_count == 512

    def test_segments_require_streaming(self, segmented_trace):
        with pytest.raises(SessionError, match="streaming"):
            Simulation.for_trace_file(segmented_trace,
                                      streaming=False, segments=(0, 1))
        with pytest.raises(SessionError, match="streaming"):
            Simulation.from_spec({"trace_file": str(segmented_trace),
                                  "streaming": False,
                                  "segments": [0, 1]})

    def test_segments_rejected_for_workload_specs(self):
        with pytest.raises(SessionError, match="'segments'"):
            Simulation.from_spec({"workload": "gzip",
                                  "segments": [0, 1]})

    def test_malformed_ranges_rejected(self, segmented_trace):
        for bad in ((1,), (1, 2, 3), ("a", "b"), (-1, 2), (3, 1)):
            with pytest.raises(SessionError):
                Simulation.for_trace_file(segmented_trace,
                                          segments=bad)

    def test_empty_ranges_rejected(self, segmented_trace):
        # Regression: lo == hi used to slip through range coercion and
        # produce a silent zero-record run — a cacheable "result" of
        # nothing.  Empty is malformed on every entry path.
        for lo in (0, 1, 3):
            with pytest.raises(SessionError, match="lo < hi"):
                Simulation.for_trace_file(segmented_trace,
                                          segments=(lo, lo))
            with pytest.raises(SessionError, match="lo < hi"):
                Simulation.from_spec({
                    "trace_file": str(segmented_trace),
                    "segments": [lo, lo]})

    def test_empty_range_rejected_in_work_units(self, segmented_trace,
                                                tmp_path):
        from repro.exec import WorkUnit, execute_unit
        unit = WorkUnit.for_trace(
            "empty", segmented_trace, "4wide-perfect",
            tmp_path / "empty.json", segments=(2, 2))
        with pytest.raises(SessionError, match="lo < hi"):
            execute_unit(unit)
        assert not (tmp_path / "empty.json").exists()

    def test_describe_mentions_the_range(self, segmented_trace):
        sim = Simulation.for_trace_file(segmented_trace,
                                        segments=(0, 2))
        assert "segments 0..2" in sim.describe()
