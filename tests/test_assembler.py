"""Tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblyError, Opcode, assemble
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasics:
    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0
        assert program.entry == TEXT_BASE

    def test_comments_and_blank_lines(self):
        program = assemble("""
        # a comment
        .text
        nop   # trailing comment
        """)
        assert len(program) == 1

    def test_entry_is_main(self):
        program = assemble("""
        .text
        helper: nop
        main:   nop
        """)
        assert program.entry == TEXT_BASE + INSTRUCTION_BYTES

    def test_r_format(self):
        program = assemble("add $t0, $t1, $t2")
        instr = program.instructions[0]
        assert instr.op is Opcode.ADD
        assert (instr.rd, instr.rs, instr.rt) == (8, 9, 10)

    def test_i_format(self):
        instr = assemble("addi $t0, $t1, -5").instructions[0]
        assert instr.op is Opcode.ADDI
        assert instr.imm == -5

    def test_memory_operand(self):
        instr = assemble("lw $t0, 12($sp)").instructions[0]
        assert (instr.rt, instr.rs, instr.imm) == (8, 29, 12)

    def test_memory_operand_negative_offset(self):
        instr = assemble("sw $t0, -4($fp)").instructions[0]
        assert instr.imm == -4

    def test_memory_label_operand(self):
        program = assemble("""
        .data
        var: .word 7
        .text
        main: lw $t0, var
        """)
        # Expands to lui $at, hi(var); lw $t0, lo(var)($at).
        assert [i.op for i in program.instructions] == \
            [Opcode.LUI, Opcode.LW]
        assert program.instructions[0].imm == DATA_BASE >> 16
        assert program.instructions[1].rs == 1

    def test_shift_with_amount(self):
        instr = assemble("sll $t0, $t1, 3").instructions[0]
        assert (instr.rd, instr.rt, instr.imm) == (8, 9, 3)

    def test_hex_and_char_immediates(self):
        program = assemble("""
        addi $t0, $zero, 0x1F
        addi $t1, $zero, 'A'
        """)
        assert program.instructions[0].imm == 31
        assert program.instructions[1].imm == 65


class TestBranchesAndJumps:
    def test_backward_branch_offset(self):
        program = assemble("""
        loop: nop
              bne $t0, $zero, loop
        """)
        branch = program.instructions[1]
        # Offset relative to the instruction after the branch.
        assert branch.imm == -(2 * INSTRUCTION_BYTES)

    def test_forward_branch_offset(self):
        program = assemble("""
        beq $t0, $zero, done
        nop
        done: nop
        """)
        assert program.instructions[0].imm == INSTRUCTION_BYTES

    def test_jump_target_scaled(self):
        program = assemble("""
        main: j main
        """)
        assert program.instructions[0].imm == TEXT_BASE >> 3

    def test_jal_and_jr(self):
        program = assemble("""
        main: jal func
              jr $ra
        func: jr $ra
        """)
        assert program.instructions[0].op is Opcode.JAL
        assert program.instructions[1].op is Opcode.JR


class TestPseudoInstructions:
    def test_li_small(self):
        program = assemble("li $t0, 100")
        assert len(program) == 1
        assert program.instructions[0].op is Opcode.ADDIU

    def test_li_negative(self):
        program = assemble("li $t0, -3")
        assert len(program) == 1
        assert program.instructions[0].imm == -3

    def test_li_large_expands(self):
        program = assemble("li $t0, 0x12345678")
        assert [i.op for i in program.instructions] == \
            [Opcode.LUI, Opcode.ORI]
        assert program.instructions[0].imm == 0x1234
        assert program.instructions[1].imm == 0x5678

    def test_la_expands_to_lui_ori(self):
        program = assemble("""
        .data
        buffer: .space 4
        .text
        main: la $t0, buffer
        """)
        assert [i.op for i in program.instructions] == \
            [Opcode.LUI, Opcode.ORI]

    def test_move(self):
        instr = assemble("move $t0, $t1").instructions[0]
        assert instr.op is Opcode.ADDU
        assert instr.rt == 0

    def test_blt_uses_at(self):
        program = assemble("""
        main: blt $t0, $t1, main
        """)
        assert [i.op for i in program.instructions] == \
            [Opcode.SLT, Opcode.BNE]
        assert program.instructions[0].rd == 1  # $at scratch

    def test_bge_branches_on_clear(self):
        program = assemble("""
        main: bge $t0, $t1, main
        """)
        assert program.instructions[1].op is Opcode.BEQ

    def test_label_math_spans_pseudo_expansion(self):
        """Branch offsets must account for multi-instruction pseudos."""
        program = assemble("""
        main: li $t0, 0x12345678
        next: beq $zero, $zero, next
        """)
        branch = program.instructions[2]
        assert branch.imm == -INSTRUCTION_BYTES

    def test_mul_pseudo(self):
        program = assemble("mul $t0, $t1, $t2")
        assert [i.op for i in program.instructions] == \
            [Opcode.MULT, Opcode.MFLO]


class TestDataDirectives:
    def test_word_little_endian(self):
        program = assemble("""
        .data
        value: .word 0x11223344
        """)
        assert bytes(program.data[:4]) == bytes([0x44, 0x33, 0x22, 0x11])

    def test_word_list(self):
        program = assemble("""
        .data
        table: .word 1, 2, 3
        """)
        assert len(program.data) == 12

    def test_space_and_align(self):
        program = assemble("""
        .data
        pad: .byte 1
        .align 2
        word: .word 5
        """)
        assert program.symbols["word"] == DATA_BASE + 4

    def test_asciiz(self):
        program = assemble("""
        .data
        msg: .asciiz "hi"
        """)
        assert bytes(program.data) == b"hi\x00"

    def test_asciiz_escapes(self):
        program = assemble(r"""
        .data
        msg: .asciiz "a\n"
        """)
        assert bytes(program.data) == b"a\n\x00"

    def test_word_of_label(self):
        program = assemble("""
        .data
        a: .word 1
        b: .word a
        """)
        assert int.from_bytes(program.data[4:8], "little") == DATA_BASE


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate $t0")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x: nop\nx: nop")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expected 3"):
            assemble("add $t0, $t1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add $t0, $bogus, $t1")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblyError, match="outside .text"):
            assemble(".data\nadd $t0, $t1, $t2")

    def test_error_reports_line_number(self):
        try:
            assemble("nop\nnop\nbad $t0")
        except AssemblyError as error:
            assert error.line_number == 3
        else:
            raise AssertionError("expected AssemblyError")


class TestProgramContainer:
    def test_instruction_lookup(self):
        program = assemble("nop\nnop")
        assert program.has_instruction(TEXT_BASE)
        assert program.has_instruction(TEXT_BASE + 8)
        assert not program.has_instruction(TEXT_BASE + 16)
        assert not program.has_instruction(TEXT_BASE + 4)  # misaligned

    def test_instruction_at_raises_outside(self):
        program = assemble("nop")
        with pytest.raises(IndexError):
            program.instruction_at(TEXT_BASE - 8)

    def test_disassemble_roundtrip_labels(self):
        program = assemble("""
        main: addi $t0, $zero, 1
        loop: addi $t0, $t0, -1
              bnez $t0, loop
        """)
        text = program.disassemble()
        assert "main:" in text
        assert "loop:" in text
