"""Tests for the functional simulator (executor, sim-fast, sim-bpred)."""

import pytest

from repro.functional import ExecutionError, Executor, MachineState, SimBpred, SimFast
from repro.isa import assemble
from repro.workloads import KERNELS, kernel_program


def run_and_output(source: str, inputs=None) -> str:
    program = assemble(source)
    state = MachineState(program)
    executor = Executor(inputs=inputs)
    for _ in executor.run(state, max_instructions=1_000_000):
        pass
    return "".join(state.output)


class TestArithmetic:
    def test_add_and_overflow_wraps(self):
        output = run_and_output("""
        main:
            li  $t0, 0x7FFFFFFF
            addi $t0, $t0, 1
            srl $a0, $t0, 24
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "128"  # 0x80000000 >> 24

    def test_signed_comparison(self):
        output = run_and_output("""
        main:
            li  $t0, -1
            slti $a0, $t0, 0
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "1"

    def test_unsigned_comparison(self):
        output = run_and_output("""
        main:
            li  $t0, -1          # 0xFFFFFFFF unsigned
            sltiu $a0, $t0, 1
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "0"

    def test_mult_hi_lo(self):
        output = run_and_output("""
        main:
            li  $t0, 0x10000
            li  $t1, 0x10000
            mult $t0, $t1
            mfhi $a0            # product = 2^32 -> hi = 1
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "1"

    def test_division_and_remainder(self):
        output = run_and_output("""
        main:
            li  $t0, 17
            li  $t1, 5
            div $t0, $t1
            mflo $a0
            li  $v0, 1
            syscall
            mfhi $a0
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "32"  # quotient 3, remainder 2

    def test_division_by_zero_defined(self):
        output = run_and_output("""
        main:
            li  $t0, 5
            div $t0, $zero
            mflo $a0
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "0"

    def test_shifts(self):
        output = run_and_output("""
        main:
            li  $t0, -8
            sra $a0, $t0, 2
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "-2"


class TestMemory:
    def test_store_load_roundtrip(self):
        output = run_and_output("""
        .data
        slot: .space 4
        .text
        main:
            la  $t0, slot
            li  $t1, 1234
            sw  $t1, 0($t0)
            lw  $a0, 0($t0)
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "1234"

    def test_byte_sign_extension(self):
        output = run_and_output("""
        .data
        b: .byte 0xFF
        .text
        main:
            la  $t0, b
            lb  $a0, 0($t0)
            li  $v0, 1
            syscall
            lbu $a0, 0($t0)
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """)
        assert output == "-1255"

    def test_untouched_memory_reads_zero(self):
        state = MachineState(assemble("nop"))
        assert state.load(0x2000_0000, 4) == 0

    def test_zero_register_immutable(self):
        state = MachineState(assemble("nop"))
        state.write_reg(0, 42)
        assert state.read_reg(0) == 0


class TestControlFlow:
    def test_loop_and_call(self):
        output = run_and_output("""
        main:
            li  $a0, 5
            jal square
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        square:
            mult $a0, $a0
            mflo $a0
            jr  $ra
        """)
        assert output == "25"

    def test_read_int_inputs(self):
        output = run_and_output("""
        main:
            li  $v0, 5
            syscall
            move $a0, $v0
            li  $v0, 1
            syscall
            li  $v0, 10
            syscall
        """, inputs=[77])
        assert output == "77"

    def test_pc_escape_raises(self):
        program = assemble("nop")  # falls off the end, no exit syscall
        state = MachineState(program)
        executor = Executor()
        with pytest.raises(ExecutionError):
            for _ in executor.run(state):
                pass

    def test_instruction_budget(self):
        program = assemble("main: j main")
        state = MachineState(program)
        executor = Executor()
        with pytest.raises(ExecutionError, match="budget"):
            for _ in executor.run(state, max_instructions=100):
                pass


class TestKernels:
    """Golden outputs for every bundled kernel."""

    EXPECTED = {
        "vecsum": "2016",        # sum 0..63
        "fibonacci": "144",      # fib(12)
        "strsearch": "4",        # 'the' x4
        "listwalk": "6240",      # 8 * sum 0..39
        "matmul": "1132",        # C[0][0]
    }

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_runs_to_completion(self, name):
        result = SimFast().run(kernel_program(name))
        assert result.instructions > 100
        assert result.output  # every kernel prints something

    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
    def test_kernel_golden_output(self, name, expected):
        assert SimFast().run(kernel_program(name)).output == expected

    def test_bubble_sort_is_sorted(self):
        """The printed value is the array minimum after sorting."""
        result = SimFast().run(kernel_program("bubble_sort"))
        assert int(result.output) >= 0


class TestSimBpred:
    def test_trace_length_matches_execution(self):
        program = kernel_program("vecsum")
        functional = SimFast().run(program)
        generation = SimBpred().generate(program)
        assert generation.committed_instructions == functional.instructions
        assert generation.total_records == (
            generation.committed_instructions
            + generation.wrong_path_instructions
        )

    def test_wrong_path_blocks_follow_mispredictions(self):
        generation = SimBpred().generate(kernel_program("bubble_sort"))
        assert generation.mispredictions > 0
        from repro.trace.wrongpath import count_blocks
        assert count_blocks(generation.records) == generation.mispredictions

    def test_wrong_path_blocks_respect_bound(self):
        tracer = SimBpred(rob_entries=16, ifq_entries=4)
        generation = tracer.generate(kernel_program("bubble_sort"))
        limit = tracer.wrong_path_block_limit
        assert limit == 20
        run = 0
        for record in generation.records:
            run = run + 1 if record.tag else 0
            assert run <= limit

    def test_perfect_predictor_no_wrong_path(self):
        from repro.bpred.unit import PERFECT_PREDICTOR
        tracer = SimBpred(predictor_config=PERFECT_PREDICTOR)
        generation = tracer.generate(kernel_program("bubble_sort"))
        assert generation.mispredictions == 0
        assert generation.wrong_path_instructions == 0

    def test_deterministic(self):
        a = SimBpred().generate(kernel_program("strsearch"))
        b = SimBpred().generate(kernel_program("strsearch"))
        assert a.records == b.records
