"""Tests for the synthetic SPECINT workloads and bundled kernels."""

import pytest

from repro.bpred.unit import PERFECT_PREDICTOR
from repro.trace.record import RecordKind
from repro.trace.wrongpath import count_blocks, validate_block
from repro.workloads import (
    KERNELS,
    SPECINT_PROFILES,
    SyntheticWorkload,
    get_profile,
    kernel_program,
    kernel_source,
)
from repro.workloads.profiles import BenchmarkProfile


class TestProfiles:
    def test_all_five_benchmarks_present(self):
        assert set(SPECINT_PROFILES) == {"gzip", "bzip2", "parser",
                                         "vortex", "vpr"}

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="known:"):
            get_profile("mcf")

    def test_mix_fractions_valid(self):
        for profile in SPECINT_PROFILES.values():
            assert 0.0 < profile.alu_fraction < 1.0
            assert profile.mean_block_length >= 1.0

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            BenchmarkProfile(name="bad", description="",
                             branch_fraction=0.6, load_fraction=0.5)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            BenchmarkProfile(name="bad", description="",
                             loop_weight=0, cond_weight=0,
                             call_weight=0, jump_weight=0)

    def test_characterization_relationships(self):
        """The per-benchmark structure encodes the paper's narrative."""
        profiles = SPECINT_PROFILES
        # bzip2: biggest data working set (most cache-sensitive).
        assert profiles["bzip2"].working_set_bytes == max(
            p.working_set_bytes for p in profiles.values()
        )
        # parser: branchiest.
        assert profiles["parser"].branch_fraction == max(
            p.branch_fraction for p in profiles.values()
        )
        # vortex: most functions (largest code footprint, call-heavy).
        assert profiles["vortex"].function_count == max(
            p.function_count for p in profiles.values()
        )
        assert profiles["vortex"].call_weight == max(
            p.call_weight for p in profiles.values()
        )


class TestSyntheticGenerator:
    def test_determinism(self):
        a = SyntheticWorkload(get_profile("gzip"), seed=42).generate(5000)
        b = SyntheticWorkload(get_profile("gzip"), seed=42).generate(5000)
        assert a.records == b.records

    def test_seed_changes_trace(self):
        a = SyntheticWorkload(get_profile("gzip"), seed=1).generate(5000)
        b = SyntheticWorkload(get_profile("gzip"), seed=2).generate(5000)
        assert a.records != b.records

    def test_budget_respected(self):
        generation = SyntheticWorkload(get_profile("vpr"),
                                       seed=3).generate(4000)
        assert generation.committed_instructions >= 4000
        # Overshoot bounded by one basic block + terminator.
        assert generation.committed_instructions < 4200

    def test_record_accounting(self):
        generation = SyntheticWorkload(get_profile("parser"),
                                       seed=3).generate(5000)
        assert generation.total_records == (
            generation.committed_instructions
            + generation.wrong_path_instructions
        )
        assert count_blocks(generation.records) == generation.mispredictions

    def test_mix_tracks_profile(self):
        profile = get_profile("gzip")
        generation = SyntheticWorkload(profile, seed=5).generate(30_000)
        stats = generation.statistics()
        branch_frac = stats.kind_fraction(RecordKind.BRANCH)
        mem_frac = stats.kind_fraction(RecordKind.MEMORY)
        assert abs(branch_frac - profile.branch_fraction) < 0.05
        expected_mem = profile.load_fraction + profile.store_fraction
        assert abs(mem_frac - expected_mem) < 0.06

    def test_wrong_path_blocks_valid(self):
        workload = SyntheticWorkload(get_profile("parser"), seed=5,
                                     rob_entries=16, ifq_entries=4)
        generation = workload.generate(10_000)
        block: list = []
        for record in generation.records:
            if record.tag:
                block.append(record)
            elif block:
                validate_block(block, max_size=20)
                block = []

    def test_perfect_predictor_no_wrong_path(self):
        workload = SyntheticWorkload(get_profile("parser"), seed=5,
                                     predictor_config=PERFECT_PREDICTOR)
        generation = workload.generate(10_000)
        assert generation.mispredictions == 0
        assert generation.wrong_path_instructions == 0

    def test_addresses_inside_working_set(self):
        profile = get_profile("gzip")
        generation = SyntheticWorkload(profile, seed=6).generate(10_000)
        from repro.isa.program import DATA_BASE
        for record in generation.records:
            if record.kind is RecordKind.MEMORY:
                offset = record.address - DATA_BASE
                assert 0 <= offset < profile.working_set_bytes

    def test_code_footprint_scales_with_functions(self):
        small = SyntheticWorkload(get_profile("gzip"), seed=7)
        large = SyntheticWorkload(get_profile("vortex"), seed=7)
        assert large.code_footprint_bytes > small.code_footprint_bytes
        assert large.static_branch_sites > small.static_branch_sites

    def test_describe(self):
        workload = SyntheticWorkload(get_profile("bzip2"), seed=7)
        assert "bzip2" in workload.describe()

    def test_invalid_budget(self):
        workload = SyntheticWorkload(get_profile("gzip"), seed=7)
        with pytest.raises(ValueError):
            workload.generate(0)

    def test_branch_target_is_reachable_block(self):
        """Every taken target of an untagged branch maps to a known
        block start (the engine reconstructs PCs from these)."""
        workload = SyntheticWorkload(get_profile("vpr"), seed=8)
        generation = workload.generate(5000)
        starts = set(workload._block_by_pc)
        from repro.trace.record import BranchRecord
        for record in generation.records:
            if isinstance(record, BranchRecord) and not record.tag \
                    and record.taken:
                assert record.target in starts


class TestKernels:
    def test_kernel_inventory(self):
        assert len(KERNELS) == 7

    def test_kernel_source_lookup(self):
        assert "main:" in kernel_source("vecsum")
        with pytest.raises(KeyError):
            kernel_source("doom")

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_assemble(self, name):
        program = kernel_program(name)
        assert len(program) > 5
        assert program.entry == program.symbols["main"]
