"""Tests for the minor-cycle pipeline organizations (Figures 2-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.minorpipe import (
    ImprovedPipeline,
    OptimizedPipeline,
    SimplePipeline,
    select_pipeline,
)


class TestLatencyFormulas:
    """The paper's headline formulas: 2N+3, N+4, N+3."""

    @pytest.mark.parametrize("width,expected", [(1, 5), (2, 7), (4, 11),
                                                (8, 19)])
    def test_simple(self, width, expected):
        assert SimplePipeline(width).minor_cycles_per_major == expected

    @pytest.mark.parametrize("width,expected", [(1, 5), (2, 6), (4, 8),
                                                (8, 12)])
    def test_improved(self, width, expected):
        assert ImprovedPipeline(width).minor_cycles_per_major == expected

    @pytest.mark.parametrize("width,expected", [(1, 4), (2, 5), (4, 7),
                                                (8, 11)])
    def test_optimized(self, width, expected):
        assert OptimizedPipeline(width).minor_cycles_per_major == expected

    def test_paper_configurations(self):
        """4-issue perfect memory: N+3 = 7; 2-issue cache config:
        N+4 = 6 — exactly the latencies in Table 1's caption."""
        assert OptimizedPipeline(4).minor_cycles_per_major == 7
        assert ImprovedPipeline(2).minor_cycles_per_major == 6

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SimplePipeline(0)


class TestSchedules:
    @pytest.mark.parametrize("cls", [SimplePipeline, ImprovedPipeline,
                                     OptimizedPipeline])
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_validate_passes(self, cls, width):
        cls(width).validate()

    def test_simple_chain_order(self):
        """Figure 2: Writeback, then Lsq_refresh, then Issue slots."""
        ops = {(op.stage, op.slot): op.minor_cycle
               for op in SimplePipeline(4).schedule()}
        assert ops[("writeback", -1)] == 0
        assert ops[("lsq_refresh", -1)] == 1
        assert ops[("issue", 0)] == 2
        assert ops[("issue", 3)] == 8

    def test_improved_issue_before_writeback(self):
        """Figure 3: Issue minor-cycles precede Writeback (pipelined
        control performs WB one cycle early)."""
        ops = {(op.stage, op.slot): op.minor_cycle
               for op in ImprovedPipeline(4).schedule()}
        assert ops[("issue", 3)] < ops[("writeback", -1)]
        assert ops[("cache", -1)] < ops[("writeback", -1)]

    def test_optimized_refresh_overlaps_first_issue(self):
        """Figure 4: Lsq_refresh and the first Issue share minor 0."""
        ops = {(op.stage, op.slot): op.minor_cycle
               for op in OptimizedPipeline(4).schedule()}
        assert ops[("lsq_refresh", -1)] == ops[("issue", 0)] == 0

    def test_optimized_forbids_load_in_slot0(self):
        assert OptimizedPipeline(4).first_load_slot() == 1
        assert ImprovedPipeline(4).first_load_slot() == 0

    def test_render_contains_figure_reference(self):
        text = OptimizedPipeline(4).render()
        assert "Figure 4" in text
        assert "major cycle = 7 minor cycles" in text


class TestTotalMinorCycles:
    def test_zero_major_cycles(self):
        assert OptimizedPipeline(4).total_minor_cycles(0) == 0

    def test_steady_state_plus_fill(self):
        pipeline = OptimizedPipeline(4)
        assert pipeline.total_minor_cycles(100) == 100 * 7 + 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OptimizedPipeline(4).total_minor_cycles(-1)


class TestSelection:
    def test_paper_selections(self):
        assert select_pipeline(4, memory_ports=3).name == "optimized"
        assert select_pipeline(2, memory_ports=2).name == "improved"

    def test_boundary(self):
        assert select_pipeline(4, memory_ports=4).name == "improved"
        assert select_pipeline(5, memory_ports=4).name == "optimized"


@given(st.integers(min_value=1, max_value=64))
def test_formula_relationships_property(width):
    """For every width: optimized < improved < simple (width > 1), and
    the formulas hold exactly."""
    simple = SimplePipeline(width)
    improved = ImprovedPipeline(width)
    optimized = OptimizedPipeline(width)
    assert simple.minor_cycles_per_major == 2 * width + 3
    assert improved.minor_cycles_per_major == width + 4
    assert optimized.minor_cycles_per_major == width + 3
    assert optimized.minor_cycles_per_major < improved.minor_cycles_per_major
    if width > 1:
        assert improved.minor_cycles_per_major < simple.minor_cycles_per_major
    for pipeline in (simple, improved, optimized):
        pipeline.validate()
