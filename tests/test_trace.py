"""Tests for trace records, the bit-packed codec, statistics, and
wrong-path helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import BranchKind, FuClass
from repro.trace import (
    BranchRecord,
    MemoryRecord,
    OtherRecord,
    RecordKind,
    TraceDecoder,
    TraceEncoder,
    conservative_block_size,
    decode_trace,
    encode_trace,
    measure_trace,
    record_bit_length,
)
from repro.trace.encode import FORMAT_BITS
from repro.trace.record import TRACE_REG_HI, TRACE_REG_LO
from repro.trace.wrongpath import count_blocks, validate_block


class TestRecordValidation:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            OtherRecord(dest=64)

    def test_memory_fu_consistency(self):
        with pytest.raises(ValueError):
            MemoryRecord(fu=FuClass.LOAD, is_store=True)
        with pytest.raises(ValueError):
            MemoryRecord(fu=FuClass.ALU)

    def test_memory_address_32bit(self):
        with pytest.raises(ValueError):
            MemoryRecord(fu=FuClass.LOAD, address=1 << 32)

    def test_branch_fu_enforced(self):
        with pytest.raises(ValueError):
            BranchRecord(fu=FuClass.ALU)

    def test_branch_kind_required(self):
        with pytest.raises(ValueError):
            BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.NONE)

    def test_muldiv_implicit_hilo_destinations(self):
        record = OtherRecord(fu=FuClass.MUL, src1=3, src2=4)
        assert set(record.dest_registers()) == {TRACE_REG_HI, TRACE_REG_LO}

    def test_src_registers_skip_none(self):
        record = OtherRecord(src1=0, src2=7)
        assert record.src_registers() == (7,)

    def test_kind_properties(self):
        assert OtherRecord().kind is RecordKind.OTHER
        assert MemoryRecord(fu=FuClass.LOAD).kind is RecordKind.MEMORY
        assert BranchRecord(fu=FuClass.BRANCH).kind is RecordKind.BRANCH

    def test_unconditional_classification(self):
        cond = BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.COND)
        ret = BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.RETURN)
        assert not cond.is_unconditional
        assert ret.is_unconditional


class TestFormatWidths:
    """The paper reports 41-47 bits/instruction; our formats must be
    stable, documented widths in that neighbourhood."""

    def test_format_bits(self):
        assert FORMAT_BITS[RecordKind.OTHER] == 24
        assert FORMAT_BITS[RecordKind.MEMORY] == 59
        assert FORMAT_BITS[RecordKind.BRANCH] == 60

    def test_record_bit_length(self):
        assert record_bit_length(OtherRecord()) == 24
        assert record_bit_length(MemoryRecord(fu=FuClass.LOAD)) == 59
        assert record_bit_length(BranchRecord(fu=FuClass.BRANCH)) == 60


def _sample_records():
    return [
        OtherRecord(dest=5, src1=3, src2=4),
        OtherRecord(fu=FuClass.MUL, src1=1, src2=2),
        MemoryRecord(fu=FuClass.LOAD, dest=8, src1=9,
                     address=0x1000_0040, size_log2=2),
        MemoryRecord(fu=FuClass.STORE, is_store=True, src1=9, src2=8,
                     address=0xFFFF_FFFC, size_log2=0, tag=True),
        BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.COND,
                     src1=8, taken=True, target=0x0040_0100),
        BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.RETURN,
                     taken=True, target=0x0040_0008, tag=True),
    ]


class TestCodec:
    def test_roundtrip(self):
        records = _sample_records()
        buffer, bits = encode_trace(records)
        assert decode_trace(buffer, bits) == records

    def test_bit_length_is_sum_of_records(self):
        records = _sample_records()
        __, bits = encode_trace(records)
        assert bits == sum(record_bit_length(r) for r in records)

    def test_decode_without_bit_length(self):
        """Byte padding of < 8 bits must not invent extra records."""
        records = _sample_records()
        buffer, __ = encode_trace(records)
        assert decode_trace(buffer) == records

    def test_incremental_encoder_matches_batch(self):
        records = _sample_records()
        encoder = TraceEncoder()
        for record in records:
            encoder.append(record)
        batch_buffer, batch_bits = encode_trace(records)
        assert encoder.getvalue() == batch_buffer
        assert encoder.bit_length == batch_bits
        assert encoder.record_count == len(records)

    def test_decoder_is_iterable(self):
        buffer, bits = encode_trace(_sample_records())
        decoder = TraceDecoder(buffer, bits)
        assert len(list(decoder)) == 6

    def test_empty_trace(self):
        buffer, bits = encode_trace([])
        assert bits == 0
        assert decode_trace(buffer, bits) == []


@st.composite
def record_strategy(draw):
    kind = draw(st.sampled_from(["other", "mem", "branch"]))
    tag = draw(st.booleans())
    regs = st.integers(min_value=0, max_value=63)
    if kind == "other":
        fu = draw(st.sampled_from([FuClass.ALU, FuClass.MUL, FuClass.DIV,
                                   FuClass.NOP]))
        return OtherRecord(tag=tag, fu=fu, dest=draw(regs),
                           src1=draw(regs), src2=draw(regs))
    if kind == "mem":
        is_store = draw(st.booleans())
        return MemoryRecord(
            tag=tag, fu=FuClass.STORE if is_store else FuClass.LOAD,
            is_store=is_store, dest=draw(regs), src1=draw(regs),
            src2=draw(regs),
            address=draw(st.integers(min_value=0, max_value=2**32 - 1)),
            size_log2=draw(st.integers(min_value=0, max_value=3)),
        )
    return BranchRecord(
        tag=tag, fu=FuClass.BRANCH,
        branch_kind=draw(st.sampled_from([
            BranchKind.COND, BranchKind.JUMP, BranchKind.CALL,
            BranchKind.RETURN, BranchKind.INDIRECT,
        ])),
        dest=draw(regs), src1=draw(regs), src2=draw(regs),
        taken=draw(st.booleans()),
        target=draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


@given(st.lists(record_strategy(), max_size=50))
def test_codec_roundtrip_property(records):
    """Every record stream survives encode→decode bit-exactly."""
    buffer, bits = encode_trace(records)
    assert decode_trace(buffer, bits) == records


class TestStatistics:
    def test_mix_and_bits(self):
        stats = measure_trace(_sample_records())
        assert stats.total_records == 6
        assert stats.kind_counts[RecordKind.MEMORY] == 2
        assert stats.kind_counts[RecordKind.BRANCH] == 2
        assert stats.store_count == 1
        assert stats.taken_branches == 2
        assert stats.wrong_path_records == 2
        expected_bits = (2 * 24 + 2 * 59 + 2 * 60) / 6
        assert stats.bits_per_instruction == pytest.approx(expected_bits)

    def test_bandwidth_identity(self):
        """MB/s = MIPS x bits / 8 — the Table 3 internal identity."""
        stats = measure_trace(_sample_records())
        mips = 25.0
        assert stats.bandwidth_mbytes_per_sec(mips) == pytest.approx(
            mips * stats.bits_per_instruction / 8.0
        )

    def test_empty_stats(self):
        stats = measure_trace([])
        assert stats.bits_per_instruction == 0.0
        assert stats.wrong_path_fraction == 0.0

    def test_summary_renders(self):
        text = measure_trace(_sample_records()).summary()
        assert "bits per instruction" in text


class TestWrongPath:
    def test_conservative_bound_formula(self):
        assert conservative_block_size(16, 4) == 20  # the paper's bound

    def test_bound_requires_positive_sizes(self):
        with pytest.raises(ValueError):
            conservative_block_size(0, 4)

    def test_validate_block_accepts_tagged(self):
        block = [OtherRecord(tag=True)] * 5
        validate_block(block, max_size=5)

    def test_validate_block_rejects_untagged(self):
        block = [OtherRecord(tag=True), OtherRecord(tag=False)]
        with pytest.raises(ValueError, match="untagged"):
            validate_block(block, max_size=10)

    def test_validate_block_rejects_oversize(self):
        block = [OtherRecord(tag=True)] * 3
        with pytest.raises(ValueError, match="exceeds"):
            validate_block(block, max_size=2)

    def test_count_blocks(self):
        records = [
            OtherRecord(), OtherRecord(tag=True), OtherRecord(tag=True),
            OtherRecord(), OtherRecord(tag=True), OtherRecord(),
        ]
        assert count_blocks(records) == 2
