"""Corruption-handling tests for the trace file format.

Every malformed input a bulk-sweep deployment will eventually meet —
truncated payloads, bad magic, oversized metadata, lying record
counts, corrupt segment indexes, flipped Tag bits — must surface as
:class:`TraceFileError` with a useful message, never as a bare
``OverflowError`` or silently wrong statistics.  Both on-disk formats
are covered: v1 (monolithic payload) files must stay readable forever,
and v2 (segmented) files add a segment index with its own consistency
checks.
"""

import json

import pytest

from repro.bpred.unit import PAPER_PREDICTOR
from repro.trace.fileio import (
    MAX_HEADER_LENGTH,
    MAGIC,
    TraceFileError,
    VERSION_V1,
    VERSION_V2,
    _SEGMENT_ENTRY_BYTES,
    _V1_PREFIX,
    _V2_PREFIX,
    iter_trace_records,
    read_segment_table,
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.workloads import SyntheticWorkload, get_profile

#: Small enough that the 2000-budget fixture spans several segments.
SEGMENT_RECORDS = 256


@pytest.fixture(scope="module")
def records():
    return SyntheticWorkload(get_profile("parser"),
                             seed=11).generate(2000).records


@pytest.fixture(params=[VERSION_V1, VERSION_V2],
                ids=["v1", "v2"])
def trace_path(request, records, tmp_path):
    path = tmp_path / "trace.rtrc"
    write_trace_file(path, records, predictor=PAPER_PREDICTOR,
                     benchmark="parser", seed=11,
                     version=request.param,
                     segment_records=SEGMENT_RECORDS)
    return path


@pytest.fixture()
def v1_path(records, tmp_path):
    path = tmp_path / "trace-v1.rtrc"
    write_trace_file(path, records, predictor=PAPER_PREDICTOR,
                     benchmark="parser", seed=11, version=VERSION_V1)
    return path


@pytest.fixture()
def v2_path(records, tmp_path):
    path = tmp_path / "trace-v2.rtrc"
    write_trace_file(path, records, predictor=PAPER_PREDICTOR,
                     benchmark="parser", seed=11,
                     segment_records=SEGMENT_RECORDS)
    return path


def _metadata_offset(data: bytes) -> int:
    version = int.from_bytes(data[8:10], "little")
    return _V1_PREFIX if version == VERSION_V1 else _V2_PREFIX


class TestOversizedHeader:
    @pytest.mark.parametrize("version", [VERSION_V1, VERSION_V2])
    def test_oversized_metadata_raises_trace_file_error(
            self, records, tmp_path, version):
        path = tmp_path / "big.rtrc"
        huge = "x" * (MAX_HEADER_LENGTH + 1)
        with pytest.raises(TraceFileError, match="header"):
            write_trace_file(path, records[:4], benchmark=huge,
                             version=version)

    @pytest.mark.parametrize("version", [VERSION_V1, VERSION_V2])
    def test_nothing_written_on_oversized_metadata(self, records,
                                                   tmp_path, version):
        path = tmp_path / "big.rtrc"
        with pytest.raises(TraceFileError):
            write_trace_file(path, records[:4],
                             benchmark="y" * (MAX_HEADER_LENGTH + 1),
                             version=version)
        assert not path.exists()

    @pytest.mark.parametrize("version,prefix", [
        (VERSION_V1, _V1_PREFIX), (VERSION_V2, _V2_PREFIX)])
    def test_largest_legal_metadata_roundtrips(self, records, tmp_path,
                                               version, prefix):
        path = tmp_path / "edge.rtrc"
        # Fill the blob to exactly the u16 limit: account for the JSON
        # scaffolding around the benchmark string.
        scaffold = len(json.dumps(
            {"predictor": None, "benchmark": "", "seed": None},
            sort_keys=True).encode())
        benchmark = "b" * (MAX_HEADER_LENGTH - prefix - scaffold)
        write_trace_file(path, records[:4], benchmark=benchmark,
                         version=version)
        header, decoded = read_trace_file(path)
        assert header.metadata["benchmark"] == benchmark
        assert decoded == records[:4]

    @pytest.mark.parametrize("version", [VERSION_V1, VERSION_V2])
    def test_one_byte_over_the_limit_rejected(self, records, tmp_path,
                                              version):
        prefix = _V1_PREFIX if version == VERSION_V1 else _V2_PREFIX
        scaffold = len(json.dumps(
            {"predictor": None, "benchmark": "", "seed": None},
            sort_keys=True).encode())
        with pytest.raises(TraceFileError, match="header"):
            write_trace_file(
                tmp_path / "over.rtrc", records[:4],
                benchmark="b" * (MAX_HEADER_LENGTH - prefix
                                 - scaffold + 1),
                version=version)


class TestCorruptHeaders:
    def test_bad_magic(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[:8] = b"NOTMAGIC"
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="magic"):
            read_trace_file(trace_path)

    def test_short_file(self, tmp_path):
        path = tmp_path / "short.rtrc"
        path.write_bytes(b"RESIMTRC\x01\x00")
        with pytest.raises(TraceFileError, match="magic"):
            read_trace_file(path)

    def test_unsupported_version(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[8:10] = (99).to_bytes(2, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="version"):
            read_trace_header(trace_path)

    def test_header_length_beyond_file(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[10:12] = (0xFFFF).to_bytes(2, "little")
        trace_path.write_bytes(bytes(data[:200]))
        with pytest.raises(TraceFileError, match="header length"):
            read_trace_header(trace_path)

    def test_header_length_below_prefix(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[10:12] = (12).to_bytes(2, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="header length"):
            read_trace_header(trace_path)

    def test_corrupt_metadata_json(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[_metadata_offset(data) + 1] = 0xFF  # stomp the JSON blob
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="metadata"):
            read_trace_header(trace_path)

    @pytest.mark.parametrize("version,prefix", [
        (VERSION_V1, _V1_PREFIX), (VERSION_V2, _V2_PREFIX)])
    def test_non_object_metadata_rejected(self, tmp_path, version,
                                          prefix):
        """Valid JSON that is not an object must not crash the
        `header.metadata.get(...)` consumers downstream."""
        blob = b"[1, 2, 3]"
        data = bytearray(prefix)
        data[:8] = MAGIC
        data[8:10] = version.to_bytes(2, "little")
        data[10:12] = (prefix + len(blob)).to_bytes(2, "little")
        if version == VERSION_V2:
            data[36:44] = (prefix + len(blob)).to_bytes(8, "little")
        path = tmp_path / "nonobject.rtrc"
        path.write_bytes(bytes(data) + blob)
        with pytest.raises(TraceFileError, match="JSON object"):
            read_trace_header(path)


class TestPayloadConsistency:
    def test_truncated_payload(self, trace_path):
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[: len(data) - len(data) // 4])
        with pytest.raises(TraceFileError,
                           match="truncated|segment index"):
            read_trace_file(trace_path)

    def test_truncated_payload_streaming(self, trace_path):
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[: len(data) - len(data) // 4])
        with pytest.raises(TraceFileError,
                           match="truncated|segment index"):
            list(iter_trace_records(trace_path))

    def test_wrong_record_count(self, v1_path):
        data = bytearray(v1_path.read_bytes())
        count = int.from_bytes(data[12:20], "little")
        data[12:20] = (count + 5).to_bytes(8, "little")
        v1_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="records"):
            read_trace_file(v1_path)

    def test_committed_count_mismatch_detected(self, trace_path):
        """The offset-28 consistency field guards the Tag bits."""
        data = bytearray(trace_path.read_bytes())
        committed = int.from_bytes(data[28:32], "little")
        data[28:32] = ((committed + 1) & 0xFFFF_FFFF).to_bytes(
            4, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="committed"):
            read_trace_file(trace_path)

    def test_committed_count_checked_at_stream_exhaustion(
            self, trace_path):
        data = bytearray(trace_path.read_bytes())
        committed = int.from_bytes(data[28:32], "little")
        data[28:32] = ((committed + 1) & 0xFFFF_FFFF).to_bytes(
            4, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="committed"):
            list(iter_trace_records(trace_path))

    def test_read_trace_header_bounded_read(self, trace_path,
                                            monkeypatch):
        """Header inspection must not load the payload: reads are
        capped at the 64 KB the u16 header-length field can address."""
        import builtins
        real_open = builtins.open
        sizes = []

        class Handle:
            def __init__(self, inner):
                self._inner = inner
            def read(self, n=-1):
                sizes.append(n)
                return self._inner.read(n)
            def __enter__(self):
                return self
            def __exit__(self, *exc):
                self._inner.close()

        def spy(path, mode="r", *a, **k):
            inner = real_open(path, mode, *a, **k)
            return Handle(inner) if "b" in mode else inner

        monkeypatch.setattr(builtins, "open", spy)
        header = read_trace_header(trace_path)
        assert header.record_count > 0
        assert sizes == [MAX_HEADER_LENGTH]

    def test_committed_count_parsed_into_header(self, trace_path,
                                                records):
        header = read_trace_header(trace_path)
        committed = sum(1 for record in records if not record.tag)
        assert header.committed_low32 == committed & 0xFFFF_FFFF

    def test_clean_roundtrip_still_passes(self, trace_path, records):
        header, decoded = read_trace_file(trace_path)
        assert decoded == records
        assert header.metadata["benchmark"] == "parser"


class TestSegmentedFormat:
    """v2-specific consistency: the segment index must agree with the
    header, the payload, and the file size."""

    def test_v1_v2_roundtrip_equivalence(self, records, v1_path,
                                         v2_path):
        """The two formats are different containers for the same
        stream: decoded records, header counts and streamed decode
        must all agree exactly."""
        h1, r1 = read_trace_file(v1_path)
        h2, r2 = read_trace_file(v2_path)
        assert r1 == r2 == records
        assert h1.record_count == h2.record_count
        assert h1.bit_length == h2.bit_length
        assert h1.committed_low32 == h2.committed_low32
        assert h1.bits_per_instruction == h2.bits_per_instruction
        assert list(iter_trace_records(v1_path)) == records
        assert list(iter_trace_records(v2_path)) == records

    def test_segment_table_shape(self, v2_path, records):
        header = read_trace_header(v2_path)
        table = read_segment_table(v2_path)
        assert header.segment_count == len(table) > 1
        assert header.segment_records == SEGMENT_RECORDS
        assert all(s.record_count == SEGMENT_RECORDS
                   for s in table[:-1])
        assert sum(s.record_count for s in table) == len(records)
        assert sum(s.bit_length for s in table) == header.bit_length

    def test_v1_pseudo_segment(self, v1_path):
        header = read_trace_header(v1_path)
        (segment,) = read_segment_table(v1_path)
        assert segment.record_count == header.record_count
        assert segment.bit_length == header.bit_length

    def test_truncated_segment(self, v2_path):
        """Cutting the file mid-payload loses the trailing segments
        and the table — a streamed read must fail loudly, not yield a
        silently shorter trace."""
        header = read_trace_header(v2_path)
        data = v2_path.read_bytes()
        # Keep the header plus roughly half the payload.
        cut = (header.segment_table_offset
               - (header.segment_table_offset - _V2_PREFIX) // 2)
        v2_path.write_bytes(data[:cut])
        with pytest.raises(TraceFileError, match="truncated"):
            list(iter_trace_records(v2_path))
        with pytest.raises(TraceFileError, match="truncated"):
            read_trace_file(v2_path)

    def test_corrupt_segment_index_record_count(self, v2_path):
        """A table entry lying about its record count must be caught
        against the header totals."""
        header = read_trace_header(v2_path)
        data = bytearray(v2_path.read_bytes())
        offset = header.segment_table_offset  # entry 0: record count
        count = int.from_bytes(data[offset:offset + 4], "little")
        data[offset:offset + 4] = (count + 3).to_bytes(4, "little")
        v2_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="segment index"):
            read_trace_file(v2_path)

    def test_corrupt_segment_index_bit_length(self, v2_path):
        header = read_trace_header(v2_path)
        data = bytearray(v2_path.read_bytes())
        offset = header.segment_table_offset + 4  # entry 0: bit length
        bits = int.from_bytes(data[offset:offset + 8], "little")
        data[offset:offset + 8] = (bits + 8).to_bytes(8, "little")
        v2_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="segment index"):
            read_segment_table(v2_path)

    def test_segment_count_record_count_mismatch(self, v2_path):
        """Consistent-looking lies (header and table patched together)
        still fail when the decoded segment disagrees."""
        header = read_trace_header(v2_path)
        data = bytearray(v2_path.read_bytes())
        data[12:20] = (header.record_count + 1).to_bytes(8, "little")
        offset = header.segment_table_offset
        count = int.from_bytes(data[offset:offset + 4], "little")
        data[offset:offset + 4] = (count + 1).to_bytes(4, "little")
        v2_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError,
                           match="segment 0 holds"):
            list(iter_trace_records(v2_path))

    def test_header_segment_count_mismatch(self, v2_path):
        """The header's segment count must match the table size."""
        data = bytearray(v2_path.read_bytes())
        count = int.from_bytes(data[32:36], "little")
        data[32:36] = (count + 1).to_bytes(4, "little")
        v2_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="segment index"):
            read_segment_table(v2_path)

    def test_trailing_junk_rejected(self, v2_path):
        v2_path.write_bytes(v2_path.read_bytes() + b"\x00junk")
        with pytest.raises(TraceFileError, match="segment index"):
            read_segment_table(v2_path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.rtrc"
        write_trace_file(path, [])
        header, decoded = read_trace_file(path)
        assert decoded == [] and header.segment_count == 0
        assert list(iter_trace_records(path)) == []
        assert read_segment_table(path) == ()


class TestExtraMetadata:
    def test_extra_keys_roundtrip(self, records, tmp_path):
        path = tmp_path / "extra.rtrc"
        write_trace_file(path, records[:16], benchmark="parser",
                         extra={"start_pc": 0x40_0000,
                                "bits_per_instruction": 42.5})
        header = read_trace_header(path)
        assert header.metadata["start_pc"] == 0x40_0000
        assert header.metadata["bits_per_instruction"] == 42.5
        assert header.metadata["benchmark"] == "parser"

    def test_reserved_keys_not_overridable(self, records, tmp_path):
        path = tmp_path / "extra.rtrc"
        write_trace_file(path, records[:16], benchmark="parser",
                         extra={"benchmark": "forged"})
        assert read_trace_header(path).metadata["benchmark"] == "parser"

    def test_kernel_entry_pc_survives_cli_roundtrip(self, tmp_path,
                                                    capsys):
        """`resim trace <kernel>` persists start_pc and
        `resim simulate --trace-file` honors it: stored-trace stats
        must equal on-the-fly stats for the same kernel."""
        from repro.cli import main
        path = tmp_path / "kernel.rtrc"
        assert main(["trace", "matmul", str(path)]) == 0
        capsys.readouterr()
        assert read_trace_header(path).metadata["start_pc"] is not None
        assert main(["simulate", "--trace-file", str(path)]) == 0
        stored = capsys.readouterr().out
        assert main(["simulate", "matmul"]) == 0
        direct = capsys.readouterr().out
        assert stored.splitlines()[:8] == direct.splitlines()[:8]
