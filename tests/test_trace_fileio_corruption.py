"""Corruption-handling tests for the trace file format.

Every malformed input a bulk-sweep deployment will eventually meet —
truncated payloads, bad magic, oversized metadata, lying record
counts, flipped Tag bits — must surface as :class:`TraceFileError`
with a useful message, never as a bare ``OverflowError`` or silently
wrong statistics.
"""

import json

import pytest

from repro.bpred.unit import PAPER_PREDICTOR
from repro.trace.fileio import (
    MAX_HEADER_LENGTH,
    TraceFileError,
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.workloads import SyntheticWorkload, get_profile


@pytest.fixture(scope="module")
def records():
    return SyntheticWorkload(get_profile("parser"),
                             seed=11).generate(2000).records


@pytest.fixture()
def trace_path(records, tmp_path):
    path = tmp_path / "trace.rtrc"
    write_trace_file(path, records, predictor=PAPER_PREDICTOR,
                     benchmark="parser", seed=11)
    return path


class TestOversizedHeader:
    def test_oversized_metadata_raises_trace_file_error(self, records,
                                                        tmp_path):
        path = tmp_path / "big.rtrc"
        huge = "x" * (MAX_HEADER_LENGTH + 1)
        with pytest.raises(TraceFileError, match="header"):
            write_trace_file(path, records[:4], benchmark=huge)

    def test_nothing_written_on_oversized_metadata(self, records,
                                                   tmp_path):
        path = tmp_path / "big.rtrc"
        with pytest.raises(TraceFileError):
            write_trace_file(path, records[:4],
                             benchmark="y" * (MAX_HEADER_LENGTH + 1))
        assert not path.exists()

    def test_largest_legal_metadata_roundtrips(self, records, tmp_path):
        path = tmp_path / "edge.rtrc"
        # Fill the blob to exactly the u16 limit: account for the JSON
        # scaffolding around the benchmark string.
        scaffold = len(json.dumps(
            {"predictor": None, "benchmark": "", "seed": None},
            sort_keys=True).encode())
        benchmark = "b" * (MAX_HEADER_LENGTH - 32 - scaffold)
        write_trace_file(path, records[:4], benchmark=benchmark)
        header, decoded = read_trace_file(path)
        assert header.metadata["benchmark"] == benchmark
        assert decoded == records[:4]


class TestCorruptHeaders:
    def test_bad_magic(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[:8] = b"NOTMAGIC"
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="magic"):
            read_trace_file(trace_path)

    def test_short_file(self, tmp_path):
        path = tmp_path / "short.rtrc"
        path.write_bytes(b"RESIMTRC\x01\x00")
        with pytest.raises(TraceFileError, match="magic"):
            read_trace_file(path)

    def test_header_length_beyond_file(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[10:12] = (0xFFFF).to_bytes(2, "little")
        trace_path.write_bytes(bytes(data[:200]))
        with pytest.raises(TraceFileError, match="header length"):
            read_trace_header(trace_path)

    def test_corrupt_metadata_json(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        data[33] = 0xFF  # stomp inside the JSON blob
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="metadata"):
            read_trace_header(trace_path)

    def test_non_object_metadata_rejected(self, trace_path):
        """Valid JSON that is not an object must not crash the
        `header.metadata.get(...)` consumers downstream."""
        data = bytearray(trace_path.read_bytes())
        old_header_length = int.from_bytes(data[10:12], "little")
        blob = b"[1, 2, 3]"
        data[10:12] = (32 + len(blob)).to_bytes(2, "little")
        rebuilt = bytes(data[:32]) + blob + bytes(data[old_header_length:])
        trace_path.write_bytes(rebuilt)
        with pytest.raises(TraceFileError, match="JSON object"):
            read_trace_header(trace_path)


class TestPayloadConsistency:
    def test_truncated_payload(self, trace_path):
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[: len(data) - len(data) // 4])
        with pytest.raises(TraceFileError, match="truncated"):
            read_trace_file(trace_path)

    def test_wrong_record_count(self, trace_path):
        data = bytearray(trace_path.read_bytes())
        count = int.from_bytes(data[12:20], "little")
        data[12:20] = (count + 5).to_bytes(8, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="records"):
            read_trace_file(trace_path)

    def test_committed_count_mismatch_detected(self, trace_path):
        """The offset-28 consistency field guards the Tag bits."""
        data = bytearray(trace_path.read_bytes())
        committed = int.from_bytes(data[28:32], "little")
        data[28:32] = ((committed + 1) & 0xFFFF_FFFF).to_bytes(
            4, "little")
        trace_path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="committed"):
            read_trace_file(trace_path)

    def test_read_trace_header_bounded_read(self, trace_path,
                                            monkeypatch):
        """Header inspection must not load the payload: reads are
        capped at the 64 KB the u16 header-length field can address."""
        import builtins
        real_open = builtins.open
        sizes = []

        class Handle:
            def __init__(self, inner):
                self._inner = inner
            def read(self, n=-1):
                sizes.append(n)
                return self._inner.read(n)
            def __enter__(self):
                return self
            def __exit__(self, *exc):
                self._inner.close()

        def spy(path, mode="r", *a, **k):
            inner = real_open(path, mode, *a, **k)
            return Handle(inner) if "b" in mode else inner

        monkeypatch.setattr(builtins, "open", spy)
        header = read_trace_header(trace_path)
        assert header.record_count > 0
        assert sizes == [MAX_HEADER_LENGTH]

    def test_committed_count_parsed_into_header(self, trace_path,
                                                records):
        header = read_trace_header(trace_path)
        committed = sum(1 for record in records if not record.tag)
        assert header.committed_low32 == committed & 0xFFFF_FFFF

    def test_clean_roundtrip_still_passes(self, trace_path, records):
        header, decoded = read_trace_file(trace_path)
        assert decoded == records
        assert header.metadata["benchmark"] == "parser"


class TestExtraMetadata:
    def test_extra_keys_roundtrip(self, records, tmp_path):
        path = tmp_path / "extra.rtrc"
        write_trace_file(path, records[:16], benchmark="parser",
                         extra={"start_pc": 0x40_0000,
                                "bits_per_instruction": 42.5})
        header = read_trace_header(path)
        assert header.metadata["start_pc"] == 0x40_0000
        assert header.metadata["bits_per_instruction"] == 42.5
        assert header.metadata["benchmark"] == "parser"

    def test_reserved_keys_not_overridable(self, records, tmp_path):
        path = tmp_path / "extra.rtrc"
        write_trace_file(path, records[:16], benchmark="parser",
                         extra={"benchmark": "forged"})
        assert read_trace_header(path).metadata["benchmark"] == "parser"

    def test_kernel_entry_pc_survives_cli_roundtrip(self, tmp_path,
                                                    capsys):
        """`resim trace <kernel>` persists start_pc and
        `resim simulate --trace-file` honors it: stored-trace stats
        must equal on-the-fly stats for the same kernel."""
        from repro.cli import main
        path = tmp_path / "kernel.rtrc"
        assert main(["trace", "matmul", str(path)]) == 0
        capsys.readouterr()
        assert read_trace_header(path).metadata["start_pc"] is not None
        assert main(["simulate", "--trace-file", str(path)]) == 0
        stored = capsys.readouterr().out
        assert main(["simulate", "matmul"]) == 0
        direct = capsys.readouterr().out
        assert stored.splitlines()[:8] == direct.splitlines()[:8]
