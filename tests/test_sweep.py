"""Tests for the design-space sweep subsystem: spec expansion,
serialization round trips, serial/parallel parity, and
checkpoint/resume durability."""

import json
from dataclasses import replace

import pytest

from repro.bpred.unit import PredictorConfig
from repro.core.config import PAPER_4WIDE_PERFECT, ProcessorConfig
from repro.core.engine import ReSimEngine
from repro.sweep import (
    SweepError,
    SweepRunner,
    SweepSpec,
    config_from_dict,
    config_key,
    config_to_dict,
    run_sweep,
    stats_from_dict,
    stats_to_dict,
)
from repro.sweep.runner import predictor_key, trace_filename
from repro.trace.fileio import read_trace_file
from repro.workloads import SyntheticWorkload, get_profile

BUDGET = 1200


class TestSweepSpec:
    def test_cross_product_expansion(self):
        spec = SweepSpec(axes={"rob_entries": (8, 16, 32),
                               "lsq_entries": (4, 8)})
        expansion = spec.expand()
        assert len(expansion) == 6
        assert spec.grid_size == 6
        assert expansion.points[0].params == (("rob_entries", 8),
                                              ("lsq_entries", 4))

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError, match="unknown sweep axis"):
            SweepSpec(axes={"rob_size": (8, 16)})

    def test_empty_axes_rejected(self):
        with pytest.raises(SweepError, match="at least one axis"):
            SweepSpec(axes={})
        with pytest.raises(SweepError, match="no values"):
            SweepSpec(axes={"rob_entries": ()})

    def test_scalar_values_rejected(self):
        with pytest.raises(SweepError, match="sequence of values"):
            SweepSpec(axes={"predictor": "twolevel"})

    def test_invalid_combinations_skipped(self):
        # rob_entries < width violates ProcessorConfig's invariant.
        spec = SweepSpec(axes={"width": (2, 8), "rob_entries": (4, 16)})
        expansion = spec.expand()
        assert expansion.skipped_invalid == 1
        assert len(expansion) == 3

    def test_all_invalid_raises(self):
        spec = SweepSpec(axes={"width": (8,), "rob_entries": (2, 4)})
        with pytest.raises(SweepError, match="no valid design points"):
            spec.expand()

    def test_mistyped_axis_value_raises_sweep_error(self):
        spec = SweepSpec(axes={"rob_entries": ("8", 16)})
        with pytest.raises(SweepError, match="bad axis value"):
            spec.expand()

    def test_one_shot_iterables_survive_validation(self):
        """Validation must not exhaust generator-valued axes."""
        spec = SweepSpec(axes={"rob_entries": iter((8, 16, 32))})
        assert spec.grid_size == 3
        assert len(spec.expand()) == 3

    def test_duplicates_collapsed(self):
        spec = SweepSpec(axes={"rob_entries": (16, 16, 32)})
        expansion = spec.expand()
        assert len(expansion) == 2
        assert expansion.skipped_duplicates == 1

    def test_predictor_axis_coercions(self):
        spec = SweepSpec(axes={"predictor": (
            "bimodal",
            {"scheme": "gshare", "l2_size": 8192},
            PredictorConfig(scheme="twolevel"),
        )})
        configs = [p.config.predictor for p in spec.expand()]
        assert [c.scheme for c in configs] == ["bimodal", "gshare",
                                               "twolevel"]
        assert configs[1].l2_size == 8192

    def test_unknown_predictor_scheme_fails_at_expansion(self):
        spec = SweepSpec(axes={"predictor": ("twolevel", "bogus")})
        with pytest.raises(SweepError, match="unknown predictor scheme"):
            spec.expand()

    def test_bad_predictor_kwargs_fail_at_expansion(self):
        spec = SweepSpec(axes={"predictor": ({"shceme": "gshare"},)})
        with pytest.raises(SweepError, match="bad predictor axis"):
            spec.expand()

    def test_bad_cache_geometry_fails_at_expansion(self):
        spec = SweepSpec(axes={"dcache": ({"size_bytes": 1000},)})
        with pytest.raises(SweepError, match="bad dcache axis"):
            spec.expand()

    def test_cache_axis_coercion(self):
        spec = SweepSpec(
            base=replace(PAPER_4WIDE_PERFECT, perfect_memory=False),
            axes={"dcache": ({"size_bytes": 16 * 1024},
                             {"size_bytes": 64 * 1024})},
        )
        sizes = [p.config.dcache.size_bytes for p in spec.expand()]
        assert sizes == [16 * 1024, 64 * 1024]

    def test_point_labels_and_keys_stable(self):
        spec = SweepSpec(axes={"rob_entries": (8,),
                               "predictor": ("bimodal",)})
        point = spec.expand().points[0]
        assert point.label == "rob_entries=8 predictor=bimodal"
        assert point.key == config_key(point.config)
        assert len(point.key) == 16


class TestSerialization:
    def test_config_roundtrip(self):
        config = ProcessorConfig(
            width=2, rob_entries=24, perfect_memory=False,
            predictor=PredictorConfig(scheme="gshare", l2_size=8192),
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_config_dict_is_json_safe(self):
        blob = json.dumps(config_to_dict(PAPER_4WIDE_PERFECT))
        assert config_from_dict(json.loads(blob)) == PAPER_4WIDE_PERFECT

    def test_config_key_stable_and_distinct(self):
        a = config_key(PAPER_4WIDE_PERFECT)
        assert a == config_key(ProcessorConfig())
        assert a != config_key(ProcessorConfig(rob_entries=32))

    def test_stats_roundtrip_preserves_everything(self):
        trace = SyntheticWorkload(get_profile("gzip"),
                                  seed=7).generate(BUDGET)
        stats = ReSimEngine(PAPER_4WIDE_PERFECT,
                            trace.records).run().stats
        restored = stats_from_dict(
            json.loads(json.dumps(stats_to_dict(stats))))
        assert stats_to_dict(restored) == stats_to_dict(stats)
        assert restored.ipc == stats.ipc
        assert restored.rob_occupancy.average == \
            stats.rob_occupancy.average


@pytest.fixture(scope="module")
def small_spec():
    return SweepSpec(axes={"rob_entries": (8, 16),
                           "lsq_entries": (4, 8)})


class TestSweepRunner:
    def test_matches_serial_engine_path(self, small_spec, tmp_path):
        """Sweep statistics are bit-identical to a direct engine run
        on the same persisted trace."""
        result = run_sweep(small_spec, "gzip",
                           results_dir=tmp_path / "sweep",
                           budget=BUDGET, workers=1)
        assert len(result) == 4
        __, records = read_trace_file(
            tmp_path / "sweep"
            / trace_filename(PAPER_4WIDE_PERFECT.predictor))
        for outcome in result:
            direct = ReSimEngine(outcome.config, records).run()
            assert stats_to_dict(direct.stats) == \
                stats_to_dict(outcome.stats)

    def test_parallel_identical_to_serial(self, small_spec, tmp_path):
        serial = run_sweep(small_spec, "gzip",
                           results_dir=tmp_path / "serial",
                           budget=BUDGET, workers=1)
        parallel = run_sweep(small_spec, "gzip",
                             results_dir=tmp_path / "parallel",
                             budget=BUDGET, workers=4)
        assert [o.key for o in serial] == [o.key for o in parallel]
        for a, b in zip(serial, parallel, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    def test_kernel_workload_carries_entry_pc(self, tmp_path):
        spec = SweepSpec(axes={"rob_entries": (8, 16)})
        result = run_sweep(spec, "vecsum",
                           results_dir=tmp_path / "kernel", workers=2)
        assert all(int(o.stats.committed_instructions) > 0
                   for o in result)
        header, __ = read_trace_file(
            tmp_path / "kernel"
            / trace_filename(PAPER_4WIDE_PERFECT.predictor))
        assert header.metadata["start_pc"] is not None

    def test_mismatched_results_dir_refused(self, small_spec,
                                            tmp_path):
        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET, workers=1)
        with pytest.raises(SweepError, match="different sweep"):
            run_sweep(small_spec, "bzip2", results_dir=directory,
                      budget=BUDGET, workers=1)

    def test_mismatched_base_config_refused(self, small_spec,
                                            tmp_path):
        """Shared traces depend on the base config's generation ROB/
        IFQ; reusing a results dir with a different base must not
        silently reuse the wrong trace.  (A different base *predictor*
        is fine — it simply selects/creates its own trace file.)"""
        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET, workers=1)
        other = SweepSpec(
            base=replace(PAPER_4WIDE_PERFECT, ifq_entries=8),
            axes=small_spec.axes,
        )
        with pytest.raises(SweepError, match="different sweep"):
            run_sweep(other, "gzip", results_dir=directory,
                      budget=BUDGET, workers=1)

    def test_predictor_axis_gets_its_own_traces(self, tmp_path):
        """Mispredictions are trace-authoritative, so a shared trace
        would score every predictor identically; the runner must
        regenerate per scheme and actually discriminate them."""
        spec = SweepSpec(axes={"predictor": ("twolevel", "nottaken")})
        directory = tmp_path / "pred"
        result = run_sweep(spec, "parser", results_dir=directory,
                           budget=4000, workers=1)
        by_scheme = {o.config.predictor.scheme: o for o in result}
        assert len(list(directory.glob("trace-*.rtrc"))) == 2
        for scheme, outcome in by_scheme.items():
            path = directory / trace_filename(outcome.config.predictor)
            header = read_trace_file(path)[0]
            assert header.predictor_config.scheme == scheme
        # 'nottaken' must be measurably worse than the paper's
        # two-level predictor on the branchy parser workload.
        assert by_scheme["nottaken"].misprediction_rate > \
            by_scheme["twolevel"].misprediction_rate
        assert by_scheme["nottaken"].ipc < by_scheme["twolevel"].ipc

    def test_kernel_sweep_resumes_across_budgets_and_seeds(
            self, tmp_path):
        """Kernels run to completion deterministically, so a
        different --budget or --seed must not refuse to resume a
        kernel sweep."""
        spec = SweepSpec(axes={"rob_entries": (8, 16)})
        directory = tmp_path / "kernel"
        run_sweep(spec, "vecsum", results_dir=directory,
                  budget=2000, seed=7, workers=1)
        resumed = run_sweep(spec, "vecsum", results_dir=directory,
                            budget=50_000, seed=9, workers=1)
        assert resumed.resumed_count == 2

    def test_deleted_manifest_cannot_revive_stale_checkpoints(
            self, small_spec, tmp_path):
        """Checkpoints embed the sweep provenance: deleting
        sweep.json and rerunning with different parameters must
        re-simulate, not revive results computed under the old ones."""
        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET, workers=1)
        (directory / "sweep.json").unlink()
        for trace in directory.glob("trace-*.rtrc"):
            trace.unlink()  # stale trace too (budget changes it)
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET * 2, workers=1)
        assert second.resumed_count == 0
        committed = [int(o.stats.committed_instructions)
                     for o in second]
        assert all(c > BUDGET for c in committed)

    def test_unknown_workload_rejected(self, small_spec, tmp_path):
        with pytest.raises(SweepError, match="unknown workload"):
            SweepRunner(small_spec, "nonesuch", results_dir=tmp_path)

    def test_bad_worker_count_rejected(self, small_spec, tmp_path):
        with pytest.raises(SweepError, match="workers"):
            SweepRunner(small_spec, "gzip", results_dir=tmp_path,
                        workers=0)


class TestCheckpointResume:
    def test_rerun_resumes_everything(self, small_spec, tmp_path):
        directory = tmp_path / "sweep"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=1)
        assert first.resumed_count == 0
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == len(second) == 4
        for a, b in zip(first, second, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    def test_partial_checkpoints_resume_partially(self, small_spec,
                                                  tmp_path):
        """A killed sweep = some checkpoints present; only the missing
        design points are re-simulated."""
        directory = tmp_path / "sweep"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=1)
        victim = first.outcomes[2]
        (directory / f"{victim.key}.json").unlink()
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == 3
        recomputed = [o for o in second if not o.from_checkpoint]
        assert [o.key for o in recomputed] == [victim.key]
        assert stats_to_dict(recomputed[0].stats) == \
            stats_to_dict(victim.stats)

    def test_corrupt_checkpoint_recomputed(self, small_spec, tmp_path):
        directory = tmp_path / "sweep"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=1)
        victim = first.outcomes[0]
        (directory / f"{victim.key}.json").write_text("{not json")
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == 3
        assert stats_to_dict(second.outcomes[0].stats) == \
            stats_to_dict(victim.stats)

    def test_corrupt_trace_payload_surfaces_as_sweep_error(
            self, small_spec, tmp_path):
        """Payload corruption found by a worker mid-resume must carry
        the delete-the-directory guidance, not a raw TraceFileError."""
        directory = tmp_path / "sweep"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=1)
        trace_path = directory / trace_filename(
            PAPER_4WIDE_PERFECT.predictor)
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[: len(data) - len(data) // 4])
        (directory / f"{first.outcomes[0].key}.json").unlink()
        for workers in (1, 2):
            with pytest.raises(SweepError, match="delete the results"):
                run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=workers)

    def test_stale_config_checkpoint_recomputed(self, small_spec,
                                                tmp_path):
        """A checkpoint whose embedded config disagrees with the
        design point (e.g. hash collision or hand-edited file) is
        discarded, not trusted."""
        directory = tmp_path / "sweep"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, workers=1)
        victim = first.outcomes[1]
        path = directory / f"{victim.key}.json"
        payload = json.loads(path.read_text())
        payload["config"]["rob_entries"] = 999
        path.write_text(json.dumps(payload))
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == 3
        assert stats_to_dict(second.outcomes[1].stats) == \
            stats_to_dict(victim.stats)


class TestSweepResult:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        spec = SweepSpec(axes={"rob_entries": (8, 16, 32),
                               "width": (2, 4)})
        return run_sweep(spec, "gzip",
                         results_dir=tmp_path_factory.mktemp("sweep"),
                         budget=BUDGET, workers=1)

    def test_sorted_by_ipc(self, result):
        ipcs = [o.ipc for o in result.sorted_by("ipc")]
        assert ipcs == sorted(ipcs, reverse=True)

    def test_lower_is_better_keys_sort_best_first(self, result):
        """'cycles' and 'mispredictions' are smaller-is-better: the
        best design point leads."""
        cycles = [o.major_cycles for o in result.sorted_by("cycles")]
        assert cycles == sorted(cycles)
        assert result.best("cycles").major_cycles == \
            min(o.major_cycles for o in result)
        assert result.top(1, "mispredictions").outcomes[0] \
            .misprediction_rate == \
            min(o.misprediction_rate for o in result)

    def test_reverse_override(self, result):
        cycles = [o.major_cycles
                  for o in result.sorted_by("cycles", reverse=True)]
        assert cycles == sorted(cycles, reverse=True)

    def test_best_and_top(self, result):
        best = result.best()
        assert best.ipc == max(o.ipc for o in result)
        assert len(result.top(3)) == 3
        assert result.top(3).outcomes[0].key == best.key

    def test_filter_by_axis_value(self, result):
        wide = result.filter(width=4)
        assert len(wide) == 3
        assert all(o.param("width") == 4 for o in wide)

    def test_filter_by_predicate(self, result):
        fast = result.filter(lambda o: o.ipc > 1.0)
        assert all(o.ipc > 1.0 for o in fast)

    def test_unknown_sort_key(self, result):
        with pytest.raises(KeyError, match="unknown sort key"):
            result.sorted_by("bogus")

    def test_table_renders_axes_and_metrics(self, result):
        from repro.fpga.device import VIRTEX4_LX40
        table = result.table(devices=(VIRTEX4_LX40,))
        assert "rob_entries" in table
        assert "xc4vlx40 MIPS" in table
        assert len(table.splitlines()) == len(result) + 2

    def test_sweep_table_hook(self, result):
        from repro.perf.tables import sweep_table
        rendered = sweep_table(result, limit=2)
        assert "gzip" in rendered
        assert "design points" in rendered
        with pytest.raises(KeyError, match="unknown device"):
            sweep_table(result, device_name="xc9nope")

    def test_comparison_entries_join_table2(self, result):
        from repro.fpga.device import VIRTEX4_LX40
        from repro.perf.comparison import comparison_table, render_table
        entries = result.top(2).comparison_entries(VIRTEX4_LX40)
        assert all(e.category == "resim" for e in entries)
        rendered = render_table(
            comparison_table({}) + entries)
        assert "ReSim [" in rendered
        assert "PTLsim" in rendered

    def test_json_export_roundtrips(self, result, tmp_path):
        path = tmp_path / "out.json"
        result.to_json(path)
        document = json.loads(path.read_text())
        assert document["workload"] == "gzip"
        assert len(document["outcomes"]) == len(result)
        first = document["outcomes"][0]
        assert config_from_dict(first["config"]) == \
            result.outcomes[0].config
        assert stats_to_dict(stats_from_dict(first["stats"])) == \
            stats_to_dict(result.outcomes[0].stats)

    def test_csv_export(self, result, tmp_path):
        import csv
        from repro.fpga.device import VIRTEX4_LX40
        path = tmp_path / "out.csv"
        result.to_csv(path, devices=(VIRTEX4_LX40,))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result)
        assert float(rows[0]["ipc"]) == pytest.approx(
            result.outcomes[0].ipc, abs=1e-5)
        assert "mips_xc4vlx40" in rows[0]


class TestExecutionBackends:
    def test_three_backends_bit_identical(self, small_spec, tmp_path):
        """Acceptance: for the same grid, serial, process-pool, and
        directory-queue (2 concurrent workers) backends produce
        bit-identical SweepResult statistics."""
        from repro.exec import (
            DirectoryQueueBackend,
            ProcessPoolBackend,
            SerialBackend,
        )
        serial = run_sweep(small_spec, "gzip",
                           results_dir=tmp_path / "serial",
                           budget=BUDGET, backend=SerialBackend())
        pool = run_sweep(small_spec, "gzip",
                         results_dir=tmp_path / "pool",
                         budget=BUDGET, backend=ProcessPoolBackend(2))
        queue = run_sweep(
            small_spec, "gzip", results_dir=tmp_path / "queued",
            budget=BUDGET,
            backend=DirectoryQueueBackend(
                tmp_path / "queued" / "queue", workers=2,
                poll_seconds=0.02, timeout=120))
        assert [o.key for o in serial] == [o.key for o in pool] \
            == [o.key for o in queue]
        for a, b, c in zip(serial, pool, queue, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats) \
                == stats_to_dict(c.stats)

    def test_backend_overrides_workers(self, small_spec, tmp_path):
        """An explicit backend wins; the workers shorthand is only
        consulted when no backend is given."""
        from repro.exec import SerialBackend
        runner = SweepRunner(small_spec, "gzip",
                             results_dir=tmp_path / "s",
                             budget=BUDGET, workers=7,
                             backend=SerialBackend())
        assert runner.backend.name == "serial"
        assert len(runner.run()) == 4

    def test_queue_checkpoints_resume_under_serial(self, small_spec,
                                                   tmp_path):
        """Checkpoints are backend-agnostic: points computed by queue
        workers resume under the serial backend and vice versa."""
        from repro.exec import DirectoryQueueBackend
        directory = tmp_path / "sweep"
        first = run_sweep(
            small_spec, "gzip", results_dir=directory, budget=BUDGET,
            backend=DirectoryQueueBackend(
                directory / "queue", workers=2, poll_seconds=0.02,
                timeout=120))
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == len(second) == 4
        for a, b in zip(first, second, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    def test_queue_does_not_revive_stale_checkpoints(self, small_spec,
                                                     tmp_path):
        """The queue-backend twin of
        test_deleted_manifest_cannot_revive_stale_checkpoints: when
        the sweep layer decides a checkpoint is stale (provenance
        mismatch), the queue must recompute it, not quietly reuse
        the result file sitting at the same path."""
        from repro.exec import DirectoryQueueBackend

        def backend(directory):
            return DirectoryQueueBackend(
                directory / "queue", workers=1, poll_seconds=0.02,
                timeout=120)

        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET, backend=backend(directory))
        (directory / "sweep.json").unlink()
        for trace in directory.glob("trace-*.rtrc"):
            trace.unlink()  # stale trace too (budget changes it)
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET * 2,
                           backend=backend(directory))
        assert second.resumed_count == 0
        assert all(int(o.stats.committed_instructions) > BUDGET
                   for o in second)

    def test_pre_backend_checkpoints_still_resume(self, small_spec,
                                                  tmp_path):
        """PR 3-era checkpoints lack the unit_id/spec keys work units
        now embed; they must still be honored on resume."""
        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET, workers=1)
        for path in directory.glob("*.json"):
            if path.name == "sweep.json":
                continue
            payload = json.loads(path.read_text())
            payload.pop("unit_id", None)
            payload.pop("spec", None)
            path.write_text(json.dumps(payload, sort_keys=True))
        second = run_sweep(small_spec, "gzip", results_dir=directory,
                           budget=BUDGET, workers=1)
        assert second.resumed_count == 4


class TestProgressReporting:
    def test_points_and_summary_lines(self, small_spec, tmp_path):
        import io
        from repro.sweep import ProgressPrinter
        stream = io.StringIO()
        run_sweep(small_spec, "gzip", results_dir=tmp_path / "sweep",
                  budget=BUDGET,
                  progress=ProgressPrinter(stream=stream))
        text = stream.getvalue()
        assert "[sweep] 4 design point(s) to evaluate" in text
        assert "[sweep] 4/4 points done, 0 failed, 0 remaining" in text
        assert "complete: 4 point(s) — 4 simulated, " \
               "0 from checkpoints, 0 failed" in text

    def test_resumed_points_are_distinguished(self, small_spec,
                                              tmp_path):
        import io
        from repro.sweep import ProgressPrinter
        directory = tmp_path / "sweep"
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET)
        stream = io.StringIO()
        run_sweep(small_spec, "gzip", results_dir=directory,
                  budget=BUDGET,
                  progress=ProgressPrinter(stream=stream))
        text = stream.getvalue()
        assert "(4 from checkpoints)" in text
        assert "0 simulated, 4 from checkpoints" in text

    def test_printer_counts(self, small_spec, tmp_path):
        import io
        from repro.sweep import ProgressPrinter
        printer = ProgressPrinter(stream=io.StringIO())
        run_sweep(small_spec, "gzip", results_dir=tmp_path / "sweep",
                  budget=BUDGET, progress=printer)
        assert printer.done == 4
        assert printer.resumed == printer.failed == 0


class TestSweepCli:
    def test_cli_sweep_runs_and_resumes(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["sweep", "gzip", "--rob", "8,16", "--width", "2,4",
                "--budget", str(BUDGET), "--workers", "2",
                "--results-dir", str(tmp_path / "out"),
                "--csv", str(tmp_path / "out.csv")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 design points" in first
        assert "IPC" in first
        assert (tmp_path / "out.csv").exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 resumed from checkpoints" in second

    def test_cli_sweep_requires_an_axis(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="nothing to sweep"):
            main(["sweep", "gzip",
                  "--results-dir", str(tmp_path / "out")])

    def test_cli_bad_sort_and_device_fail_before_simulating(
            self, tmp_path):
        """Presentation-option typos must not cost a full sweep."""
        from repro.cli import main
        out = tmp_path / "out"
        with pytest.raises(SystemExit, match="unknown sort key"):
            main(["sweep", "gzip", "--rob", "8,16", "--sort", "ipcc",
                  "--results-dir", str(out)])
        assert not out.exists()
        with pytest.raises(SystemExit, match="unknown device"):
            main(["sweep", "gzip", "--rob", "8,16",
                  "--device", "xc9999", "--results-dir", str(out)])
        assert not out.exists()
        with pytest.raises(SystemExit, match="does not exist"):
            main(["sweep", "gzip", "--rob", "8,16",
                  "--csv", str(tmp_path / "missing" / "x.csv"),
                  "--results-dir", str(out)])
        assert not out.exists()
        with pytest.raises(SystemExit, match="unknown predictor"):
            main(["sweep", "gzip", "--predictor", "twolevel,bogus",
                  "--results-dir", str(out)])

    def test_cli_duplicate_axis_rejected(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="specified twice"):
            main(["sweep", "gzip", "--rob", "8,16",
                  "--axis", "rob_entries=64",
                  "--results-dir", str(tmp_path / "out")])
        with pytest.raises(SystemExit, match="specified twice"):
            main(["sweep", "gzip", "--axis", "mul_latency=3",
                  "--axis", "mul_latency=5",
                  "--results-dir", str(tmp_path / "out")])

    def test_cli_generic_axis_and_predictor(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["sweep", "parser", "--predictor",
                     "bimodal,twolevel", "--axis",
                     "mul_latency=3,5", "--budget", str(BUDGET),
                     "--results-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "4 design points" in out


# -- sharded design points --------------------------------------------

#: Documented bound on the monolithic-vs-sharded relative IPC delta
#: for the conformance workloads below.  Shards start cold (drained
#: pipeline, cold predictor/cache state, fetch PC realigned at the
#: first committed taken branch), so cycle-derived metrics are
#: approximate by design; at these budgets the observed deltas are a
#: few percent.  See README "Sharded design points".
SHARD_IPC_TOLERANCE = 0.08


def assert_ipc_within(monolithic, sharded,
                      tolerance=SHARD_IPC_TOLERANCE) -> None:
    """Bound the sharded-vs-monolithic IPC delta, loudly."""
    delta = abs(sharded.ipc - monolithic.ipc) / monolithic.ipc
    assert delta <= tolerance, (
        f"sharded IPC {sharded.ipc:.4f} deviates from monolithic "
        f"IPC {monolithic.ipc:.4f} by {delta:.2%} "
        f"(tolerance {tolerance:.0%})"
    )


class TestShardedSweep:
    """Differential conformance: a sharded sweep against the serial
    monolithic reference (ISSUE 5 satellite + acceptance)."""

    @pytest.fixture(scope="class")
    def reference(self, small_spec, tmp_path_factory):
        directory = tmp_path_factory.mktemp("mono")
        return run_sweep(small_spec, "gzip", results_dir=directory,
                         budget=BUDGET, segment_records=64)

    def test_exact_sum_counters_equal_monolithic(
            self, small_spec, reference, tmp_path):
        from repro.exec import EXACT_SUM_COUNTERS
        sharded = run_sweep(small_spec, "gzip",
                            results_dir=tmp_path / "sharded",
                            budget=BUDGET, segment_records=64,
                            shards=3)
        assert [o.key for o in sharded] == [o.key for o in reference]
        for mono, shard in zip(reference, sharded, strict=True):
            mono_stats = stats_to_dict(mono.stats)
            shard_stats = stats_to_dict(shard.stats)
            for counter in EXACT_SUM_COUNTERS:
                assert shard_stats[counter] == mono_stats[counter], (
                    f"{counter}: sharded {shard_stats[counter]} != "
                    f"monolithic {mono_stats[counter]} at {mono.label}"
                )
            assert shard.stats.sharded
            assert len(shard.stats.shards) == 3
            assert_ipc_within(mono, shard)

    def test_tolerance_violation_reports_observed_delta(self):
        """The bound must fail loudly, naming the delta it saw."""
        from repro.core.stats import SimulationStatistics

        def fake(cycles, instructions):
            stats = SimulationStatistics()
            stats.major_cycles.increment(cycles)
            stats.committed_instructions.increment(instructions)
            return stats

        with pytest.raises(AssertionError, match=r"deviates.*by 50"):
            assert_ipc_within(fake(100, 200), fake(100, 100))

    def test_queue_backend_four_workers_four_shards(
            self, tmp_path, reference, small_spec):
        """Acceptance: a 1-point, 4-shard sweep through the directory
        queue with 4 workers merges to the monolithic run's exact-sum
        counters, with shard provenance that round-trips."""
        from repro.exec import DirectoryQueueBackend, EXACT_SUM_COUNTERS
        spec = SweepSpec(axes={"rob_entries": (16,)})
        backend = DirectoryQueueBackend(
            tmp_path / "queue", workers=4, poll_seconds=0.02,
            timeout=180)
        sharded = run_sweep(spec, "gzip",
                            results_dir=tmp_path / "sharded",
                            budget=BUDGET, segment_records=64,
                            backend=backend, shards=4)
        assert len(sharded) == 1
        outcome = sharded.outcomes[0]
        mono = next(o for o in reference
                    if o.param("rob_entries") == 16)
        mono_stats = stats_to_dict(mono.stats)
        shard_stats = stats_to_dict(outcome.stats)
        for counter in EXACT_SUM_COUNTERS:
            assert shard_stats[counter] == mono_stats[counter], (
                f"{counter}: sharded {shard_stats[counter]} != "
                f"monolithic {mono_stats[counter]}"
            )
        # Shard provenance survives the serialize round trip.
        assert len(outcome.stats.shards) == 4
        restored = stats_from_dict(
            json.loads(json.dumps(stats_to_dict(outcome.stats))))
        assert stats_to_dict(restored) == stats_to_dict(outcome.stats)
        assert restored.sharded

    def test_sharded_checkpoints_resume(self, small_spec, tmp_path):
        directory = tmp_path / "resume"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, segment_records=64, shards=2)
        again = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, segment_records=64, shards=2)
        assert again.resumed_count == len(again)
        for a, b in zip(first, again, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    def test_partial_shard_results_resume(self, small_spec, tmp_path):
        """Per-shard result files are checkpoints too: delete the
        merged documents and the rerun re-merges without
        re-simulating a single shard."""
        from pathlib import Path
        directory = tmp_path / "partial"
        first = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, segment_records=64, shards=2)
        shard_files = sorted(directory.glob("*.s*of2.json"))
        assert len(shard_files) == 2 * len(first)
        stamps = {path: path.stat().st_mtime_ns
                  for path in shard_files}
        for outcome in first:
            Path(directory, f"{outcome.key}.json").unlink()
        again = run_sweep(small_spec, "gzip", results_dir=directory,
                          budget=BUDGET, segment_records=64, shards=2)
        assert again.resumed_count == len(again)
        for path, stamp in stamps.items():
            assert path.stat().st_mtime_ns == stamp, \
                f"shard result {path.name} was recomputed"
        for a, b in zip(first, again, strict=True):
            assert stats_to_dict(a.stats) == stats_to_dict(b.stats)

    def test_single_segment_trace_degrades_to_monolithic(
            self, tmp_path):
        """A trace shorter than one segment cannot split: the sweep
        must fall back to the bit-identical monolithic unit rather
        than fail or mislabel the result as sharded."""
        spec = SweepSpec(axes={"rob_entries": (8,)})
        mono = run_sweep(spec, "gzip", results_dir=tmp_path / "mono",
                         budget=BUDGET)
        sharded = run_sweep(spec, "gzip",
                            results_dir=tmp_path / "sharded",
                            budget=BUDGET, shards=4)  # 1 segment
        assert stats_to_dict(sharded.outcomes[0].stats) == \
            stats_to_dict(mono.outcomes[0].stats)
        assert not sharded.outcomes[0].stats.sharded

    def test_bad_shard_count_rejected(self, small_spec, tmp_path):
        with pytest.raises(SweepError, match="shards must be >= 1"):
            SweepRunner(small_spec, "gzip",
                        results_dir=tmp_path / "x", shards=0)
        with pytest.raises(SweepError,
                           match="segment_records must be >= 1"):
            SweepRunner(small_spec, "gzip",
                        results_dir=tmp_path / "x", segment_records=0)

    def test_search_accepts_shards(self, tmp_path):
        from repro.sweep import GridSearch, run_search
        spec = SweepSpec(axes={"rob_entries": (8, 16)})
        search = run_search(GridSearch(spec), "gzip",
                            results_dir=tmp_path / "search",
                            budget=BUDGET, shards=2,
                            segment_records=64)
        assert len(search) == 2
        assert all(o.stats.sharded for o in search.outcomes)
