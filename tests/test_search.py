"""Tests for the adaptive search layer (:mod:`repro.sweep.search`):
strategy proposal determinism, hill-climb movement, equivalence with
grid sweeps, checkpoint resume, and metric directions."""

import pytest

from repro.sweep import (
    GridSearch,
    HillClimb,
    ProgressPrinter,
    RandomSearch,
    SearchError,
    SearchRunner,
    SweepSpec,
    run_search,
    run_sweep,
    stats_to_dict,
)

BUDGET = 1200


@pytest.fixture(scope="module")
def rob_spec():
    return SweepSpec(axes={"rob_entries": (8, 16, 32, 64)})


@pytest.fixture(scope="module")
def grid_spec():
    return SweepSpec(axes={"rob_entries": (8, 16, 32, 64),
                           "lsq_entries": (4, 8, 16),
                           "width": (2, 4)})


class TestStrategyProtocol:
    def test_unknown_metric_rejected(self, rob_spec):
        with pytest.raises(SearchError, match="unknown search metric"):
            GridSearch(rob_spec, metric="goodness")

    def test_registry_lists_strategies(self):
        from repro.sweep import SEARCHES
        assert set(SEARCHES) >= {"grid", "random", "hillclimb"}

    def test_grid_proposes_whole_grid_once(self, grid_spec):
        strategy = GridSearch(grid_spec)
        first = strategy.propose()
        assert len(first) == len(grid_spec.expand())
        assert strategy.propose() == ()

    def test_random_needs_positive_samples(self, rob_spec):
        with pytest.raises(SearchError, match="samples"):
            RandomSearch(rob_spec, samples=0)

    def test_hillclimb_rejects_bad_start(self, rob_spec):
        with pytest.raises(SearchError, match="not among axis"):
            HillClimb(rob_spec, start={"rob_entries": 24})
        with pytest.raises(SearchError, match="unknown axes"):
            HillClimb(rob_spec, start={"rob_size": 8})

    def test_hillclimb_default_start_slides_past_invalid_corner(self):
        # rob=2 violates the base machine's width=4 invariant; the
        # default start must slide to the first valid site instead of
        # dead-ending (an explicit invalid start still raises).
        spec = SweepSpec(axes={"rob_entries": (2, 8, 16)})
        first = HillClimb(spec).propose()
        assert first[0].config.rob_entries == 8
        explicit = HillClimb(spec, start={"rob_entries": 2})
        with pytest.raises(SearchError, match="pick a valid start"):
            explicit.propose()


class TestRandomSearchSampling:
    def test_proposals_deterministic_under_seed(self, grid_spec):
        a = RandomSearch(grid_spec, samples=6, seed=11).propose()
        b = RandomSearch(grid_spec, samples=6, seed=11).propose()
        assert [p.key for p in a] == [p.key for p in b]
        assert len(a) == 6

    def test_different_seeds_differ(self, grid_spec):
        a = RandomSearch(grid_spec, samples=6, seed=11).propose()
        b = RandomSearch(grid_spec, samples=6, seed=12).propose()
        assert [p.key for p in a] != [p.key for p in b]

    def test_samples_are_distinct_and_valid(self, grid_spec):
        points = RandomSearch(grid_spec, samples=10,
                              seed=3).propose()
        keys = [p.key for p in points]
        assert len(set(keys)) == len(keys)
        for point in points:
            assert point.config.rob_entries >= point.config.width

    def test_small_grid_degrades_to_exhaustive(self, rob_spec):
        points = RandomSearch(rob_spec, samples=16, seed=1).propose()
        assert len(points) == 4  # whole grid, not 16 resamples

    def test_invalid_combinations_resampled(self):
        # width=8 forbids rob_entries=4; samples must dodge it.
        spec = SweepSpec(axes={"width": (2, 8) * 4,
                               "rob_entries": (4, 16) * 4})
        points = RandomSearch(spec, samples=3, seed=5).propose()
        assert points  # found valid ones
        for point in points:
            assert (point.config.width, point.config.rob_entries) \
                != (8, 4)


class TestMakePoint:
    def test_matches_expansion_points(self, grid_spec):
        expanded = {p.key: p for p in grid_spec.expand()}
        made = grid_spec.make_point({"rob_entries": 16,
                                     "lsq_entries": 8, "width": 4})
        assert made.key in expanded
        assert expanded[made.key].params == made.params

    def test_missing_and_extra_axes_rejected(self, grid_spec):
        with pytest.raises(Exception, match="missing"):
            grid_spec.make_point({"rob_entries": 16})
        with pytest.raises(Exception, match="not in this spec"):
            grid_spec.make_point({"rob_entries": 16, "lsq_entries": 8,
                                  "width": 4, "alu_count": 2})

    def test_constraint_violation_rejected(self, grid_spec):
        with pytest.raises(Exception, match="constraint"):
            grid_spec.make_point({"rob_entries": 4, "lsq_entries": 4,
                                  "width": 8})


class TestSearchRuns:
    def test_grid_search_equals_sweep(self, rob_spec, tmp_path):
        sweep = run_sweep(rob_spec, "gzip",
                          results_dir=tmp_path / "sweep",
                          budget=BUDGET)
        search = run_search(GridSearch(rob_spec), "gzip",
                            results_dir=tmp_path / "search",
                            budget=BUDGET)
        assert len(search) == len(sweep)
        sweep_stats = {o.key: stats_to_dict(o.stats) for o in sweep}
        for outcome in search:
            assert stats_to_dict(outcome.stats) == \
                sweep_stats[outcome.key]
        assert stats_to_dict(search.best.stats) == \
            stats_to_dict(sweep.best("ipc").stats)

    def test_hillclimb_finds_single_axis_optimum(self, rob_spec,
                                                 tmp_path):
        search = run_search(HillClimb(rob_spec), "gzip",
                            results_dir=tmp_path / "climb",
                            budget=BUDGET)
        grid = run_sweep(rob_spec, "gzip",
                         results_dir=tmp_path / "grid", budget=BUDGET)
        assert search.best.ipc == pytest.approx(
            grid.best("ipc").ipc)
        assert search.strategy == "hillclimb"
        trajectory = search.result.metadata["search"]["trajectory"]
        assert trajectory[0] == "rob_entries=8"
        assert len(trajectory) >= 2  # it actually moved uphill

    def test_hillclimb_deterministic(self, rob_spec, tmp_path):
        a = run_search(HillClimb(rob_spec), "gzip",
                       results_dir=tmp_path / "a", budget=BUDGET)
        b = run_search(HillClimb(rob_spec), "gzip",
                       results_dir=tmp_path / "b", budget=BUDGET)
        assert [o.key for o in a] == [o.key for o in b]
        assert a.best.key == b.best.key

    def test_hillclimb_max_steps_zero_scores_start_only(
            self, rob_spec, tmp_path):
        """With no moves allowed, neighbors must not be simulated —
        they could never be used."""
        search = run_search(HillClimb(rob_spec, max_steps=0), "gzip",
                            results_dir=tmp_path / "frozen",
                            budget=BUDGET)
        assert len(search) == 1
        assert search.rounds == 1
        assert search.best.param("rob_entries") == 8  # the start

    def test_random_search_deterministic_end_to_end(self, grid_spec,
                                                    tmp_path):
        a = run_search(RandomSearch(grid_spec, samples=5, seed=9),
                       "gzip", results_dir=tmp_path / "a",
                       budget=BUDGET)
        b = run_search(RandomSearch(grid_spec, samples=5, seed=9),
                       "gzip", results_dir=tmp_path / "b",
                       budget=BUDGET)
        assert [o.key for o in a] == [o.key for o in b]
        for x, y in zip(a, b, strict=True):
            assert stats_to_dict(x.stats) == stats_to_dict(y.stats)

    def test_search_resumes_from_checkpoints(self, rob_spec,
                                             tmp_path):
        directory = tmp_path / "resume"
        first = run_search(HillClimb(rob_spec), "gzip",
                           results_dir=directory, budget=BUDGET)
        assert all(not o.from_checkpoint for o in first)
        second = run_search(HillClimb(rob_spec), "gzip",
                            results_dir=directory, budget=BUDGET)
        assert all(o.from_checkpoint for o in second)
        assert [o.key for o in first] == [o.key for o in second]

    def test_search_and_sweep_share_results_dir(self, rob_spec,
                                                tmp_path):
        """Checkpoints are interchangeable: a sweep after a search
        re-simulates only the points the search never visited."""
        directory = tmp_path / "shared"
        search = run_search(HillClimb(rob_spec), "gzip",
                            results_dir=directory, budget=BUDGET)
        sweep = run_sweep(rob_spec, "gzip", results_dir=directory,
                          budget=BUDGET)
        assert sweep.resumed_count == len(search)

    def test_cycles_metric_minimizes(self, rob_spec, tmp_path):
        search = run_search(
            HillClimb(rob_spec, metric="cycles"), "gzip",
            results_dir=tmp_path / "cyc", budget=BUDGET)
        assert search.best.major_cycles == \
            min(o.major_cycles for o in search)

    def test_summary_names_strategy_and_best(self, rob_spec,
                                             tmp_path):
        search = run_search(
            RandomSearch(rob_spec, samples=2, seed=4), "gzip",
            results_dir=tmp_path / "sum", budget=BUDGET)
        summary = search.summary()
        assert "random search" in summary
        assert "best ipc=" in summary
        assert search.best.label in summary

    def test_progress_events_flow_through(self, rob_spec, tmp_path,
                                          capsys):
        import io
        stream = io.StringIO()
        run_search(HillClimb(rob_spec), "gzip",
                   results_dir=tmp_path / "prog", budget=BUDGET,
                   progress=ProgressPrinter(stream=stream))
        text = stream.getvalue()
        assert "[search] round 1:" in text
        assert "points done" in text
        assert "complete:" in text

    def test_runner_exposes_evaluator(self, rob_spec, tmp_path):
        runner = SearchRunner(HillClimb(rob_spec), "gzip",
                              results_dir=tmp_path / "r",
                              budget=BUDGET)
        assert runner.runner.workload == "gzip"
