"""Directed tests for the ReSim timing engine.

Micro-traces with hand-analyzable timing check each stage's semantics:
dependence chains, FU latencies and structural hazards, LSQ
disambiguation and forwarding, branch bubbles, misfetch penalties,
mis-speculation recovery, and structure-capacity stalls.
"""

import pytest

from repro.core import PAPER_4WIDE_PERFECT, ReSimEngine
from repro.core.config import ProcessorConfig
from repro.bpred.unit import PERFECT_PREDICTOR
from repro.isa.opcodes import BranchKind, FuClass
from repro.trace.record import BranchRecord, MemoryRecord, OtherRecord

# A perfect-predictor configuration keeps directed traces free of
# incidental misfetch penalties.
BASE = ProcessorConfig(predictor=PERFECT_PREDICTOR)


def alu(dest=0, src1=0, src2=0, tag=False):
    return OtherRecord(tag=tag, fu=FuClass.ALU, dest=dest, src1=src1,
                       src2=src2)


def mul(src1=0, src2=0):
    return OtherRecord(fu=FuClass.MUL, src1=src1, src2=src2)


def div(src1=0, src2=0):
    return OtherRecord(fu=FuClass.DIV, src1=src1, src2=src2)


def load(dest, src1=0, address=0x1000_0000):
    return MemoryRecord(fu=FuClass.LOAD, dest=dest, src1=src1,
                        address=address)


def store(src1=0, src2=0, address=0x1000_0000, tag=False):
    return MemoryRecord(tag=tag, fu=FuClass.STORE, is_store=True,
                        src1=src1, src2=src2, address=address)


def branch(taken, target=0x0040_0100, kind=BranchKind.COND, tag=False,
           src1=0):
    return BranchRecord(tag=tag, fu=FuClass.BRANCH, src1=src1,
                        branch_kind=kind, taken=taken, target=target)


def run(trace, config=BASE):
    engine = ReSimEngine(config, trace)
    return engine.run()


def cycles(trace, config=BASE):
    return run(trace, config).major_cycles


class TestBasicTiming:
    def test_single_instruction_latency(self):
        """One ALU op: fetch, IFQ→decouple, dispatch, issue, complete,
        commit — six major cycles through the modelled front end."""
        assert cycles([alu(dest=1)]) == 6

    def test_independent_ops_fully_overlap(self):
        """Four independent ops fill one fetch group: same total."""
        trace = [alu(dest=r) for r in range(1, 5)]
        assert cycles(trace) == 6

    def test_dependence_chain_serializes(self):
        """Each dependent ALU op adds exactly one cycle."""
        base = cycles([alu(dest=1)])
        chain = [alu(dest=1)]
        for reg in range(2, 6):
            chain.append(alu(dest=reg, src1=reg - 1))
        assert cycles(chain) == base + 4

    def test_commit_width_limits_drain(self):
        """More independent ops than one commit group: +1 cycle per
        extra group."""
        trace = [alu(dest=(i % 30) + 1) for i in range(8)]
        assert cycles(trace) == cycles(trace[:4]) + 1

    def test_ipc_bounded_by_width(self):
        trace = [alu(dest=(i % 30) + 1) for i in range(400)]
        for width in (1, 2, 4):
            result = run(trace, BASE.with_width(width))
            assert result.ipc <= width + 1e-9

    def test_committed_equals_correct_path(self):
        trace = [alu(dest=1), alu(dest=2), alu(dest=3)]
        result = run(trace)
        assert int(result.stats.committed_instructions) == 3


class TestFunctionalUnits:
    def test_mul_latency(self):
        """A mul-dependent op waits latency-3 instead of latency-1."""
        chain_alu = [alu(dest=1), alu(dest=2, src1=1)]
        chain_mul = [mul(), alu(dest=2, src1=32)]  # HI = reg 32
        assert cycles(chain_mul) == cycles(chain_alu) + 2

    def test_div_latency(self):
        chain_alu = [alu(dest=1), alu(dest=2, src1=1)]
        chain_div = [div(), alu(dest=2, src1=32)]
        assert cycles(chain_div) == cycles(chain_alu) + 9

    def test_divider_structural_hazard(self):
        """Two independent divides serialize on the single divider."""
        one = cycles([div()])
        two = cycles([div(), div()])
        assert two == one + 10

    def test_multiplier_pipelined_no_hazard(self):
        """Two independent muls flow back to back (pipelined)."""
        one = cycles([mul()])
        two = cycles([mul(), mul()])
        assert two == one + 1  # commit-order drain only

    def test_alu_count_structural_limit(self):
        """Eight independent ALU ops on a 4-ALU machine need two issue
        groups; on an 8-ALU machine they need... still two issue slots
        by width; widen to see the ALU limit."""
        import dataclasses
        wide = dataclasses.replace(BASE, width=8, alu_count=4,
                                   ifq_entries=8, mem_read_ports=2)
        narrow_alus = [alu(dest=(i % 30) + 1) for i in range(8)]
        wide8 = dataclasses.replace(wide, alu_count=8)
        assert cycles(narrow_alus, wide) == cycles(narrow_alus, wide8) + 1


class TestMemorySystem:
    def test_load_store_forwarding(self):
        """A load reading a just-written address is satisfied in the
        LSQ (no port, no cache access)."""
        trace = [store(address=0x2000), load(dest=3, address=0x2000)]
        result = run(trace)
        assert int(result.stats.load_forwards) == 1

    def test_load_blocked_by_unresolved_store_address(self):
        """A store whose address depends on a slow producer delays a
        younger load (conservative disambiguation)."""
        fast = [div(), store(address=0x2000, src1=1),
                load(dest=3, address=0x3000)]
        slow = [div(), store(address=0x2000, src1=32),  # addr needs DIV
                load(dest=3, address=0x3000)]
        assert cycles(slow) > cycles(fast)

    def test_read_port_contention(self):
        """More parallel loads than read ports serialize."""
        import dataclasses
        one_port = dataclasses.replace(BASE, mem_read_ports=1,
                                       mem_write_ports=1)
        trace = [load(dest=r, address=0x1000 * r) for r in range(1, 5)]
        assert cycles(trace, one_port) > cycles(trace, BASE)

    def test_dcache_miss_latency(self):
        """With caches on, a cold load pays the memory latency."""
        import dataclasses
        cached = dataclasses.replace(BASE, perfect_memory=False,
                                     memory_latency=18)
        hit_trace = [load(dest=1), load(dest=2)]   # second hits
        result = run(hit_trace, cached)
        assert int(result.stats.dcache_misses) == 1
        cold = cycles([load(dest=1)], cached)
        warm_config = dataclasses.replace(BASE)
        warm = cycles([load(dest=1)], warm_config)
        assert cold >= warm + 17

    def test_store_commits_through_write_port(self):
        """Store commit consumes a write port and accesses the D-cache."""
        import dataclasses
        cached = dataclasses.replace(BASE, perfect_memory=False)
        result = run([store()], cached)
        assert int(result.stats.dcache_accesses) == 1
        assert int(result.stats.committed_stores) == 1

    def test_lsq_capacity_stalls_dispatch(self):
        import dataclasses
        tiny_lsq = dataclasses.replace(BASE, lsq_entries=2)
        trace = [load(dest=(i % 8) + 1, address=0x40 * i)
                 for i in range(16)]
        assert cycles(trace, tiny_lsq) > cycles(trace, BASE)


class TestControlFlow:
    def test_taken_branch_bubble(self):
        """A taken branch ends its fetch group: downstream ops wait."""
        straight = [alu(dest=1), alu(dest=2)]
        taken = [branch(True, kind=BranchKind.JUMP), alu(dest=2)]
        assert cycles(taken) == cycles(straight) + 1

    def test_not_taken_branch_no_bubble(self):
        straight = [alu(dest=1), alu(dest=2)]
        not_taken = [branch(False), alu(dest=2)]
        assert cycles(not_taken) == cycles(straight)

    def test_misfetch_penalty(self):
        """With a real (non-perfect) predictor, the first taken jump
        has no BTB entry: misfetch, 3-cycle penalty."""
        config = PAPER_4WIDE_PERFECT  # two-level predictor
        trace = [branch(True, kind=BranchKind.JUMP), alu(dest=2)]
        result = run(trace, config)
        assert int(result.stats.misfetches) == 1
        assert int(result.stats.misfetch_stall_cycles) == 3

    def test_misprediction_recovery(self):
        """A mispredicted branch fetches its tagged block, squashes it
        at commit, pays the penalty, then resumes."""
        config = PAPER_4WIDE_PERFECT
        wrong_path = [alu(dest=5, tag=True) for _ in range(6)]
        trace = ([branch(True)]          # cold COND: effectively NT,
                 + wrong_path            # actually taken -> mispredict
                 + [alu(dest=2), alu(dest=3, src1=2)])
        result = run(trace, config)
        stats = result.stats
        assert int(stats.mispredictions) == 1
        assert int(stats.committed_instructions) == 3
        assert int(stats.fetched_wrong_path) > 0
        assert (int(stats.fetched_wrong_path)
                + int(stats.discarded_wrong_path)) == 6
        assert int(stats.recovery_stall_cycles) == 3
        # All trace records accounted for.
        assert int(stats.trace_records_consumed) == len(trace)

    def test_wrong_path_pollutes_dcache(self):
        """Wrong-path loads access the D-cache (the paper: ReSim models
        their effects 'in instruction processing, caches, etc')."""
        import dataclasses
        config = dataclasses.replace(
            PAPER_4WIDE_PERFECT, perfect_memory=False
        )
        wrong_path = [MemoryRecord(tag=True, fu=FuClass.LOAD, dest=9,
                                   address=0x8000)] * 3
        trace = [branch(True)] + wrong_path + [alu(dest=2)] * 8
        result = run(trace, config)
        assert int(result.stats.dcache_accesses) >= 1

    def test_recovery_resumes_correct_path(self):
        config = PAPER_4WIDE_PERFECT
        trace = ([branch(True)]
                 + [alu(dest=5, tag=True)] * 4
                 + [alu(dest=r) for r in range(1, 9)])
        result = run(trace, config)
        assert int(result.stats.committed_instructions) == 9


class TestCapacityLimits:
    def test_rob_occupancy_bounded(self):
        trace = [div()] + [alu(dest=(i % 30) + 1) for i in range(64)]
        engine = ReSimEngine(BASE, trace)
        engine.run()
        assert engine.stats.rob_occupancy.peak <= BASE.rob_entries

    def test_small_rob_hurts(self):
        import dataclasses
        small = dataclasses.replace(BASE, rob_entries=4)
        trace = [mul() if i % 5 == 0 else alu(dest=(i % 30) + 1)
                 for i in range(100)]
        assert cycles(trace, small) > cycles(trace, BASE)

    def test_done_and_run_idempotence(self):
        engine = ReSimEngine(BASE, [alu(dest=1)])
        result = engine.run()
        assert engine.done
        assert result.major_cycles == engine.cycle

    def test_runaway_guard(self):
        engine = ReSimEngine(BASE, [alu(dest=1)] * 10)
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.run(max_cycles=2)

    def test_empty_trace(self):
        result = ReSimEngine(BASE, []).run()
        assert result.major_cycles == 0
        assert result.ipc == 0.0
