"""Campaign-service tests: cache keys, store, memoizing backend,
job manager, and the HTTP service end to end.

The load-bearing assertions mirror the subsystem's contract:

* **key soundness** — two spellings of the same computation produce
  one cache key (property-tested under key reordering and default
  materialization); any engine-version change produces different keys
  and purges foreign entries;
* **memoization** — a cold sweep misses every unit, an identical
  resubmission is served entirely from cache, and the cache-served
  result documents are byte-identical to the simulated ones;
* **service durability** — duplicate in-flight submissions coalesce
  to one job, journaled jobs survive a dead server and resume on the
  next start, and a SIGKILLed ``resim serve`` process recovers its
  queue on restart;
* **protocol hygiene** — malformed specs answer 4xx, unknown jobs
  404, results of unfinished jobs 409.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import SerialBackend, WorkUnit
from repro.serve import (
    BackgroundServer,
    CacheStore,
    CachingBackend,
    CampaignService,
    CanonError,
    ClientError,
    ServiceClient,
    cache_key,
    canonical_spec,
    trace_digest,
)
from repro.session import CONFIGS, Simulation

BUDGET = 1200


def workload_spec(*, budget: int = BUDGET, seed: int = 7,
                  config: str = "4wide-perfect") -> dict:
    return Simulation.for_workload(
        "gzip", CONFIGS.get(config), budget=budget, seed=seed
    ).to_spec()


def sweep_request(*, budget: int = BUDGET) -> dict:
    return {"kind": "sweep", "workload": "gzip", "budget": budget,
            "axes": {"rob_entries": [8, 16]}}


# ---------------------------------------------------------------------------
# canon: content-addressed keys


class TestCacheKey:
    def test_key_ignores_spec_key_order(self):
        spec = workload_spec()
        shuffled = dict(reversed(list(spec.items())))
        assert cache_key(spec) == cache_key(shuffled)

    def test_key_ignores_default_materialization(self):
        spec = workload_spec()
        assert cache_key(spec) == cache_key(canonical_spec(spec))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=100, max_value=5000),
           st.integers(min_value=0, max_value=99),
           st.randoms(use_true_random=False))
    def test_key_invariant_under_permutation(self, budget, seed, rng):
        spec = workload_spec(budget=budget, seed=seed)
        items = list(spec.items())
        rng.shuffle(items)
        assert cache_key(dict(items)) == cache_key(spec)

    def test_different_specs_get_different_keys(self):
        assert cache_key(workload_spec(seed=1)) \
            != cache_key(workload_spec(seed=2))

    def test_engine_version_changes_every_key(self):
        spec = workload_spec()
        assert cache_key(spec, engine_version="1.0.0") \
            != cache_key(spec, engine_version="1.0.1")

    def test_trace_file_spec_requires_digest(self, tmp_path):
        trace = tmp_path / "t.rtrc"
        Simulation.for_workload(
            "gzip", CONFIGS.get("4wide-perfect"), budget=BUDGET,
        ).save_trace(trace)
        spec = Simulation.for_trace_file(trace).to_spec()
        with pytest.raises(CanonError, match="digest"):
            cache_key(spec)
        keyed = cache_key(spec, trace_digest=trace_digest(trace))
        assert len(keyed) == 40

    def test_workload_spec_rejects_digest(self):
        with pytest.raises(CanonError, match="no trace file"):
            cache_key(workload_spec(), trace_digest="sha256:00")

    def test_relocated_identical_trace_shares_a_key(self, tmp_path):
        simulation = Simulation.for_workload(
            "gzip", CONFIGS.get("4wide-perfect"), budget=BUDGET)
        a, b = tmp_path / "a" / "t.rtrc", tmp_path / "b" / "t.rtrc"
        for path in (a, b):
            path.parent.mkdir()
            simulation.save_trace(path)
        assert trace_digest(a) == trace_digest(b)
        key_a = cache_key(Simulation.for_trace_file(a).to_spec(),
                          trace_digest=trace_digest(a))
        key_b = cache_key(Simulation.for_trace_file(b).to_spec(),
                          trace_digest=trace_digest(b))
        assert key_a == key_b

    def test_trace_digest_tracks_content(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"\x00" * 64)
        before = trace_digest(path)
        path.write_bytes(b"\x00" * 63 + b"\x01")
        assert trace_digest(path) != before


# ---------------------------------------------------------------------------
# the store


class TestCacheStore:
    KEY = "ab" * 20

    def test_round_trip_and_counters(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get(self.KEY) is None
        store.put(self.KEY, config={"width": 4}, stats={"cycles": 9})
        entry = store.get(self.KEY)
        assert entry["stats"] == {"cycles": 9}
        assert len(store) == 1
        doc = store.stats_document()
        assert (doc["hits"], doc["misses"], doc["stores"]) == (1, 1, 1)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put(self.KEY, config={}, stats={"cycles": 1})
        store._entry_path(self.KEY).write_text("{not json")
        assert store.get(self.KEY) is None

    def test_engine_version_bump_purges_store(self, tmp_path):
        CacheStore(tmp_path, engine_version="1.0.0").put(
            self.KEY, config={}, stats={"cycles": 1})
        bumped = CacheStore(tmp_path, engine_version="9.9.9")
        assert len(bumped) == 0
        assert bumped.get(self.KEY) is None
        assert bumped.stats_document()["invalidated"] == 1
        # Same version re-opens without purging.
        again = CacheStore(tmp_path, engine_version="9.9.9")
        again.put(self.KEY, config={}, stats={"cycles": 2})
        assert len(CacheStore(tmp_path, engine_version="9.9.9")) == 1


# ---------------------------------------------------------------------------
# the memoizing backend


class TestCachingBackend:
    def _units(self, tmp_path, run: str) -> list[WorkUnit]:
        outdir = tmp_path / run
        outdir.mkdir()
        return [
            WorkUnit(unit_id=f"unit-{seed}",
                     spec=workload_spec(seed=seed),
                     result_path=str(outdir / f"unit-{seed}.json"))
            for seed in (1, 2)
        ]

    def test_cold_miss_then_hit_byte_identical(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        cold = CachingBackend(store, SerialBackend())
        cold.run_units(self._units(tmp_path, "cold"))
        assert (cold.hits, cold.misses) == (0, 2)

        warm = CachingBackend(store, SerialBackend())
        warm.run_units(self._units(tmp_path, "warm"))
        assert (warm.hits, warm.misses) == (2, 0)

        for seed in (1, 2):
            cold_bytes = (tmp_path / "cold"
                          / f"unit-{seed}.json").read_bytes()
            warm_bytes = (tmp_path / "warm"
                          / f"unit-{seed}.json").read_bytes()
            assert cold_bytes == warm_bytes

    def test_engine_bump_invalidates_and_rekeys(self, tmp_path):
        old_store = CacheStore(tmp_path / "cache",
                               engine_version="1.0.0")
        old = CachingBackend(old_store, SerialBackend())
        old.run_units(self._units(tmp_path, "v1"))
        unit = self._units(tmp_path, "keys")[0]

        new_store = CacheStore(tmp_path / "cache",
                               engine_version="2.0.0")
        new = CachingBackend(new_store, SerialBackend())
        assert new.key_for(unit) != old.key_for(unit)
        new.run_units(self._units(tmp_path, "v2"))
        assert (new.hits, new.misses) == (0, 2)


# ---------------------------------------------------------------------------
# the service: validation, coalescing, durability


class TestCampaignService:
    def test_malformed_requests_rejected(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        try:
            for bad in (
                {"kind": "launch"},
                {"kind": "simulate"},
                {"kind": "simulate", "spec": {"version": 99}},
                {"kind": "sweep", "axes": {}},
                {"kind": "sweep", "axes": {"rob_entries": 8}},
                {"kind": "sweep", "axes": {"rob_entries": [8]},
                 "workload": "doom"},
                {"kind": "sweep", "axes": {"rob_entries": [8]},
                 "budget": "lots"},
                {"kind": "search", "axes": {"rob_entries": [8]},
                 "strategy": "oracle"},
            ):
                with pytest.raises(ValueError):
                    service.validate_request(bad)
        finally:
            service.close()

    def test_equivalent_spellings_coalesce(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        try:
            first, coalesced1 = service.submit(sweep_request())
            # Same computation, different spelling: keys reordered,
            # defaults (seed, config, shards) spelled out.
            spelled = {"workload": "gzip", "seed": 7,
                       "kind": "sweep", "config": "4wide-perfect",
                       "budget": BUDGET, "shards": 1,
                       "axes": {"rob_entries": (8, 16)}}
            second, coalesced2 = service.submit(spelled)
            assert not coalesced1 and coalesced2
            assert second.job_id == first.job_id
            # Different work is NOT coalesced.
            third, coalesced3 = service.submit(
                sweep_request(budget=BUDGET + 100))
            assert not coalesced3 and third.job_id != first.job_id
        finally:
            service.close()

    def test_sampling_is_part_of_the_job_identity(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        try:
            # Full replay normalizes by omission: a pre-sampling
            # submission document is unchanged, so old clients keep
            # coalescing with explicit sampling="full" ones.
            exact = service.validate_request(sweep_request())
            assert "sampling" not in exact
            assert exact == service.validate_request(
                {**sweep_request(), "sampling": "full"})
            sampled = service.validate_request(
                {**sweep_request(), "sampling": "regions",
                 "regions": 4})
            assert sampled["sampling"] == {
                "mode": "regions", "regions": 4, "seed": 0,
                "warmup_segments": 1}
            # An estimate and an exact run are different jobs.
            exact_job, _ = service.submit(sweep_request())
            sampled_job, coalesced = service.submit(
                {**sweep_request(), "sampling": "regions"})
            assert not coalesced
            assert sampled_job.job_id != exact_job.job_id
        finally:
            service.close()

    def test_sampling_request_validation(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        try:
            for bad in (
                {**sweep_request(), "sampling": "nearest"},
                {**sweep_request(), "sampling": "regions",
                 "shards": 2},
                {**sweep_request(), "sampling": "regions",
                 "regions": "many"},
            ):
                with pytest.raises(ValueError):
                    service.validate_request(bad)
        finally:
            service.close()

    def test_terminal_jobs_do_not_coalesce(self, tmp_path):
        service = CampaignService(tmp_path)
        try:
            job, _ = service.submit(sweep_request())
            service.manager.wait(job.job_id, timeout=120)
            assert job.state == "done"
            again, coalesced = service.submit(sweep_request())
            assert not coalesced and again.job_id != job.job_id
        finally:
            service.close()

    def test_journaled_jobs_resume_after_dead_server(self, tmp_path):
        # Server #1 journals a submission but dies before running it
        # (autostart=False stands in for the crash window); #2 also
        # leaves a job journaled mid-"running".
        dead = CampaignService(tmp_path, autostart=False)
        job, _ = dead.submit(sweep_request())
        journal = dead.manager._journal_path(job.job_id)
        dead.close()
        entry = json.loads(journal.read_text())
        assert entry["state"] == "queued"
        entry["state"] = "running"  # died mid-execution
        journal.write_text(json.dumps(entry, sort_keys=True))

        revived = CampaignService(tmp_path)
        try:
            recovered = revived.manager.wait(job.job_id, timeout=120)
            assert recovered.state == "done"
            document = revived.manager.result_document(job.job_id)
            assert document["kind"] == "sweep"
            assert len(document["sweep"]["outcomes"]) == 2
        finally:
            revived.close()

    def test_cancel_before_start_is_cancelled(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        try:
            job, _ = service.submit(sweep_request())
            service.manager.cancel(job.job_id)
            service.start()
            assert service.manager.wait(
                job.job_id, timeout=30).state == "cancelled"
        finally:
            service.close()


# ---------------------------------------------------------------------------
# HTTP end to end


class TestHttpService:
    def test_submit_twice_second_run_is_all_cache_hits(self, tmp_path):
        service = CampaignService(tmp_path)
        with BackgroundServer(service) as server:
            client = ServiceClient(*server.address)
            assert client.health()["ok"] is True

            first = client.submit(sweep_request())
            assert first["coalesced"] is False
            client.wait(first["job_id"])
            cold = client.result(first["job_id"])
            assert cold["cache"] == {"hits": 0, "misses": 2}

            second = client.submit(sweep_request())
            assert second["job_id"] != first["job_id"]
            client.wait(second["job_id"])
            warm = client.result(second["job_id"])
            assert warm["cache"] == {"hits": 2, "misses": 0}

            # The acceptance bar: byte-identical result documents.
            assert json.dumps(cold["result"], sort_keys=True) \
                == json.dumps(warm["result"], sort_keys=True)

            stats = client.cache_stats()
            assert stats["entries"] == 2
            assert stats["stores"] == 2

    def test_events_stream_reports_cache_verdicts(self, tmp_path):
        service = CampaignService(tmp_path)
        with BackgroundServer(service) as server:
            client = ServiceClient(*server.address)
            job_id = client.submit(sweep_request())["job_id"]
            events = []
            client.wait(job_id, on_event=events.append)
            kinds = [event.get("event") for event in events]
            assert kinds.count("cache") == 2
            assert kinds.count("point") == 2
            assert kinds[-1] == "state"
            assert events[-1]["state"] == "done"
            assert [event["seq"] for event in events] \
                == sorted(event["seq"] for event in events)

    def test_protocol_errors(self, tmp_path):
        service = CampaignService(tmp_path, autostart=False)
        with BackgroundServer(service) as server:
            client = ServiceClient(*server.address)
            with pytest.raises(ClientError) as bad_kind:
                client.submit({"kind": "launch"})
            assert bad_kind.value.status == 400
            with pytest.raises(ClientError) as bad_spec:
                client.submit({"kind": "simulate",
                               "spec": {"version": 99}})
            assert bad_spec.value.status == 400
            with pytest.raises(ClientError) as missing:
                client.status("job-999999")
            assert missing.value.status == 404
            job_id = client.submit(sweep_request())["job_id"]
            with pytest.raises(ClientError) as unfinished:
                client.result(job_id)  # queued: no result yet
            assert unfinished.value.status == 409

    def test_simulate_round_trip_matches_direct_run(self, tmp_path):
        service = CampaignService(tmp_path)
        with BackgroundServer(service) as server:
            client = ServiceClient(*server.address)
            answer = client.submit({"kind": "simulate",
                                    "spec": workload_spec()})
            client.wait(answer["job_id"])
            served = client.result(answer["job_id"])["result"]
            from repro.serialize import stats_to_dict
            direct = Simulation.for_workload(
                "gzip", CONFIGS.get("4wide-perfect"),
                budget=BUDGET, seed=7).run()
            assert served["stats"] == stats_to_dict(direct.stats)


# ---------------------------------------------------------------------------
# process-level durability: SIGKILL the server, restart, resume


class TestServerKillRestart:
    def _spawn(self, root: Path, port: int = 0) -> tuple:
        repo = Path(__file__).resolve().parents[1]
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(root),
             "--port", str(port)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=repo,
            env={**os.environ, "PYTHONPATH": str(repo / "src")})
        line = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"no listen line from resim serve: {line!r}"
        return process, int(match.group(1))

    def test_sigkilled_server_resumes_journal_on_restart(
            self, tmp_path):
        root = tmp_path / "root"
        process, port = self._spawn(root)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=30)
            job_id = client.submit(
                sweep_request(budget=6000))["job_id"]
        finally:
            process.kill()
            process.wait(timeout=30)

        process, port = self._spawn(root)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                state = client.status(job_id)["state"]
                if state in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.25)
            assert state == "done"
            result = client.result(job_id)
            assert len(result["result"]["sweep"]["outcomes"]) == 2
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
