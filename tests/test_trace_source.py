"""Tests for the streaming trace pipeline.

The contract under test: every ingestion path — in-memory list,
streamed v1 file, streamed v2 file, sharded segment ranges stitched
with :class:`ConcatSource` — delivers the identical record stream, and
the engine produces **bit-identical statistics** over all of them.
"""

import io

import pytest

from repro.core import (
    PAPER_4WIDE_PERFECT,
    ProgressObserver,
    ReSimEngine,
)
from repro.serialize import stats_to_dict
from repro.session import Simulation
from repro.trace.fileio import (
    read_segment_table,
    write_trace_file,
)
from repro.trace.record import OtherRecord
from repro.trace.source import (
    ConcatSource,
    FileSource,
    InMemorySource,
    TraceSourceError,
    as_source,
)
from repro.workloads import SyntheticWorkload, get_profile
from repro.workloads.tracegen import write_workload_trace

SEGMENT_RECORDS = 512


@pytest.fixture(scope="module")
def generation():
    return SyntheticWorkload(get_profile("gzip"),
                             seed=7).generate(6000)


@pytest.fixture(scope="module")
def records(generation):
    return generation.records


@pytest.fixture(scope="module")
def v1_path(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "v1.rtrc"
    write_trace_file(path, records, benchmark="gzip", seed=7,
                     version=1)
    return path


@pytest.fixture(scope="module")
def v2_path(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "v2.rtrc"
    write_trace_file(path, records, benchmark="gzip", seed=7,
                     segment_records=SEGMENT_RECORDS)
    return path


class TestInMemorySource:
    def test_cursor_semantics(self, records):
        source = InMemorySource(records)
        assert source.total_records == len(records)
        assert source.consumed == 0
        assert source.peek() is records[0]
        assert source.peek() is records[0]  # peek does not consume
        assert source.next() is records[0]
        assert source.consumed == 1
        assert source.peek() is records[1]

    def test_exhaustion(self):
        source = InMemorySource([OtherRecord()])
        source.next()
        assert source.exhausted and source.peek() is None
        with pytest.raises(TraceSourceError):
            source.next()

    def test_peek_is_tagged(self):
        tagged = OtherRecord(tag=True)
        source = InMemorySource([OtherRecord(), tagged])
        assert not source.peek_is_tagged()
        source.next()
        assert source.peek_is_tagged()
        source.next()
        assert not source.peek_is_tagged()  # exhausted → False

    def test_growing_list_becomes_visible(self):
        stream = []
        source = InMemorySource(stream)
        assert source.exhausted
        record = OtherRecord()
        stream.append(record)
        assert not source.exhausted
        assert source.next() is record
        assert source.total_records == 1

    def test_fresh_rewinds(self, records):
        source = InMemorySource(records)
        for _ in range(5):
            source.next()
        rewound = source.fresh()
        assert rewound.consumed == 0
        assert rewound.peek() is records[0]
        assert source.consumed == 5  # original untouched

    def test_as_source_passthrough(self, records):
        source = InMemorySource(records)
        assert as_source(source) is source
        wrapped = as_source(records)
        assert isinstance(wrapped, InMemorySource)


class TestFileSource:
    @pytest.mark.parametrize("which", ["v1", "v2"])
    def test_streams_identical_records(self, which, records, v1_path,
                                       v2_path, request):
        path = v1_path if which == "v1" else v2_path
        source = FileSource(path)
        assert source.total_records == len(records)
        streamed = list(source)
        assert streamed == records
        assert source.consumed == len(records)
        assert source.exhausted

    def test_header_exposed(self, v2_path):
        source = FileSource(v2_path)
        assert source.header.metadata["benchmark"] == "gzip"
        assert source.header.segment_count > 1

    def test_fresh_gives_independent_cursor(self, v2_path, records):
        source = FileSource(v2_path)
        for _ in range(10):
            source.next()
        other = source.fresh()
        assert other.consumed == 0
        assert other.next() == records[0]
        assert source.consumed == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            FileSource(tmp_path / "nope.rtrc")

    def test_segment_range(self, v2_path, records):
        table = read_segment_table(v2_path)
        mid = len(table) // 2
        first = FileSource(v2_path, segments=(0, mid))
        rest = FileSource(v2_path, segments=(mid, len(table)))
        split = sum(s.record_count for s in table[:mid])
        assert first.total_records == split
        assert list(first) == records[:split]
        assert list(rest) == records[split:]

    def test_segment_range_bounds_checked(self, v2_path):
        table = read_segment_table(v2_path)
        with pytest.raises(TraceSourceError, match="segment range"):
            FileSource(v2_path, segments=(0, len(table) + 1))

    def test_v1_whole_file_pseudo_segment(self, v1_path, records):
        """A v1 payload is one pseudo-segment: the full range streams
        the whole file, any other range is refused (empty ones as
        empty, like every v2 range)."""
        assert list(FileSource(v1_path, segments=(0, 1))) == records
        with pytest.raises(TraceSourceError, match="empty"):
            FileSource(v1_path, segments=(0, 0))

    def test_empty_ranges_rejected(self, v2_path):
        # Regression: lo == hi used to stream zero records while
        # looking like a successful run to every consumer downstream.
        table = read_segment_table(v2_path)
        for lo in (0, 1, len(table) - 1):
            with pytest.raises(TraceSourceError, match="empty"):
                FileSource(v2_path, segments=(lo, lo))


class TestConcatSource:
    def test_spans_shards(self, v2_path, records):
        table = read_segment_table(v2_path)
        thirds = [len(table) // 3, 2 * len(table) // 3, len(table)]
        shards, lo = [], 0
        for hi in thirds:
            shards.append(FileSource(v2_path, segments=(lo, hi)))
            lo = hi
        combined = ConcatSource(shards)
        assert combined.total_records == len(records)
        assert list(combined) == records
        assert combined.consumed == len(records)

    def test_mixed_kinds(self, records, v2_path):
        combined = ConcatSource([
            InMemorySource(records[:100]), FileSource(v2_path)])
        assert combined.total_records == 100 + len(records)
        streamed = list(combined)
        assert streamed == records[:100] + records

    def test_fresh(self, records):
        combined = ConcatSource([InMemorySource(records[:3]),
                                 InMemorySource(records[3:6])])
        list(combined)
        assert list(combined.fresh()) == records[:6]

    def test_empty_rejected(self):
        with pytest.raises(TraceSourceError):
            ConcatSource([])

    def test_growing_child_fails_loudly(self, records):
        """A child that produces records after being passed over must
        raise by end-of-stream, not silently drop its late records."""
        growing = []
        combined = ConcatSource([InMemorySource(growing),
                                 InMemorySource(records[:4])])
        assert combined.next() == records[0]  # child 0 skipped, empty
        growing.append(OtherRecord())
        for _ in range(3):
            combined.next()  # later records still stream normally...
        with pytest.raises(TraceSourceError, match="finite"):
            combined.peek()  # ...but end-of-stream detects the growth


class TestEngineEquivalence:
    """The acceptance criterion: streamed ingestion is bit-identical
    to the in-memory path."""

    @pytest.fixture(scope="class")
    def reference(self, records):
        result = ReSimEngine(PAPER_4WIDE_PERFECT, records).run()
        return stats_to_dict(result.stats)

    def test_v1_file_source(self, v1_path, reference):
        result = ReSimEngine(PAPER_4WIDE_PERFECT,
                             FileSource(v1_path)).run()
        assert stats_to_dict(result.stats) == reference

    def test_v2_file_source(self, v2_path, reference):
        result = ReSimEngine(PAPER_4WIDE_PERFECT,
                             FileSource(v2_path)).run()
        assert stats_to_dict(result.stats) == reference

    def test_sharded_concat(self, v2_path, reference):
        table = read_segment_table(v2_path)
        mid = len(table) // 2
        source = ConcatSource([
            FileSource(v2_path, segments=(0, mid)),
            FileSource(v2_path, segments=(mid, len(table)))])
        result = ReSimEngine(PAPER_4WIDE_PERFECT, source).run()
        assert stats_to_dict(result.stats) == reference

    def test_session_streaming_vs_in_memory(self, v2_path, reference):
        streamed = Simulation.for_trace_file(
            v2_path, PAPER_4WIDE_PERFECT).run()
        materialized = Simulation.for_trace_file(
            v2_path, PAPER_4WIDE_PERFECT, streaming=False).run()
        assert stats_to_dict(streamed.stats) == reference
        assert stats_to_dict(materialized.stats) == reference

    def test_streaming_session_rerun_is_stable(self, v2_path,
                                               reference):
        """run() twice on one facade: the second run must rewind the
        file source, not find it exhausted."""
        simulation = Simulation.for_trace_file(v2_path,
                                               PAPER_4WIDE_PERFECT)
        first = simulation.run()
        second = simulation.run()
        assert stats_to_dict(first.stats) == reference
        assert stats_to_dict(second.stats) == reference

    def test_trace_statistics_without_materializing(self, v2_path,
                                                    generation):
        simulation = Simulation.for_trace_file(v2_path,
                                               PAPER_4WIDE_PERFECT)
        stats = simulation.trace_statistics()
        expected = generation.statistics()
        assert stats.total_records == expected.total_records
        assert stats.bits_per_instruction == \
            expected.bits_per_instruction

    def test_spec_roundtrip_with_streaming(self, v2_path):
        spec = Simulation.for_trace_file(
            v2_path, streaming=False).to_spec()
        assert spec["streaming"] is False
        again = Simulation.from_spec(spec)
        assert again.to_spec() == spec
        default = Simulation.for_trace_file(v2_path).to_spec()
        assert "streaming" not in default


class TestStreamedGeneration:
    def test_write_workload_trace_matches_save_trace(self, tmp_path):
        """Generator → SegmentedTraceWriter must produce the same file
        a materialize-then-write flow produces."""
        streamed = tmp_path / "streamed.rtrc"
        buffered = tmp_path / "buffered.rtrc"
        write_workload_trace("parser", PAPER_4WIDE_PERFECT, streamed,
                             budget=2000, seed=3)
        Simulation.for_workload(
            "parser", PAPER_4WIDE_PERFECT, budget=2000, seed=3,
        ).save_trace(buffered, benchmark="parser")
        assert streamed.read_bytes() == buffered.read_bytes()

    def test_written_trace_metadata(self, tmp_path):
        written = write_workload_trace(
            "matmul", PAPER_4WIDE_PERFECT, tmp_path / "k.rtrc")
        assert written.start_pc is not None
        source = FileSource(written.path)
        assert source.header.metadata["start_pc"] == written.start_pc
        assert source.total_records == written.record_count
        assert written.trace_stats.total_records == \
            written.record_count

    def test_failed_generation_preserves_existing_file(self, tmp_path):
        """The write is atomic: a mid-generation failure must neither
        destroy a previously valid trace at the target path nor leave
        a partial file behind."""
        path = tmp_path / "t.rtrc"
        write_workload_trace("parser", PAPER_4WIDE_PERFECT, path,
                             budget=500)
        good = path.read_bytes()
        with pytest.raises(ValueError):
            write_workload_trace("parser", PAPER_4WIDE_PERFECT, path,
                                 budget=0)  # generator rejects this
        assert path.read_bytes() == good
        assert list(tmp_path.iterdir()) == [path]  # no .part litter


class TestMultiCoreStreaming:
    def test_cores_accept_trace_file_paths(self, v2_path, records,
                                           generation):
        """A stored trace per core, streamed: same throughput inputs
        as the equivalent in-memory workload run."""
        from repro.fpga.device import VIRTEX4_LX100
        from repro.multicore.simulator import MultiCoreSimulator
        simulator = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                       VIRTEX4_LX100)
        result = simulator.run([str(v2_path)])
        (core,) = result.cores
        assert core.benchmark == "v2"  # file stem labels the core
        expected = generation.statistics()
        assert core.trace_stats.total_records == len(records)
        assert core.trace_stats.bits_per_instruction == \
            expected.bits_per_instruction
        assert core.demand_gbps > 0


class TestProgressObserver:
    def test_emits_periodic_lines(self, records):
        buffer = io.StringIO()
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, records)
        observer = ProgressObserver(1000, stream=buffer)
        engine.add_observer(observer)
        engine.run()
        lines = buffer.getvalue().splitlines()
        assert observer.lines_emitted == len(lines)
        assert len(lines) == len(records) // 1000
        assert all(line.startswith("[progress]") for line in lines)
        assert f"{len(records):,}" in lines[0]  # total is reported

    def test_does_not_change_stats(self, records):
        plain = ReSimEngine(PAPER_4WIDE_PERFECT, records).run()
        observed_engine = ReSimEngine(PAPER_4WIDE_PERFECT, records)
        observed_engine.add_observer(
            ProgressObserver(500, stream=io.StringIO()))
        observed = observed_engine.run()
        assert stats_to_dict(observed.stats) == \
            stats_to_dict(plain.stats)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressObserver(0)
        with pytest.raises(ValueError):
            ProgressObserver(10, min_seconds=-1.0)

    def test_cli_progress_flag(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["simulate", "gzip", "--budget", "3000",
                     "--progress", "--progress-records", "500"]) == 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        assert "IPC" in captured.err


class TestTraceInfoCli:
    @pytest.mark.parametrize("version", [1, 2])
    def test_reports_header_and_segments(self, tmp_path, capsys,
                                         records, version):
        from repro.cli import main
        path = tmp_path / "t.rtrc"
        write_trace_file(path, records, benchmark="gzip", seed=7,
                         version=version,
                         segment_records=SEGMENT_RECORDS)
        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"format version       : {version}" in out
        assert f"records              : {len(records)}" in out
        assert "bits per instruction" in out
        assert "benchmark" in out
        if version == 2:
            assert f"(nominal {SEGMENT_RECORDS} records each)" in out
            assert "[   0]" in out

    def test_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "junk.rtrc"
        path.write_bytes(b"this is not a trace")
        with pytest.raises(SystemExit, match="magic"):
            main(["trace", "info", str(path)])

    def test_missing_file(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["trace", "info", str(tmp_path / "absent.rtrc")])
