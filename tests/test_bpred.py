"""Tests for direction predictors, BTB, RAS, and the composite unit."""

import pytest
from hypothesis import given, strategies as st

from repro.bpred import (
    AlwaysNotTaken,
    AlwaysTaken,
    BimodalPredictor,
    BranchPredictorUnit,
    BranchTargetBuffer,
    CombiningPredictor,
    PerfectPredictor,
    PredictorConfig,
    ReturnAddressStack,
    TwoLevelPredictor,
    build_direction_predictor,
)
from repro.isa.opcodes import BranchKind


class TestBimodal:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=100)

    def test_initial_weakly_taken(self):
        predictor = BimodalPredictor(table_size=16)
        assert predictor.predict(0x400000)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(table_size=16)
        for _ in range(3):
            predictor.update(0x400000, taken=False)
        assert not predictor.predict(0x400000)

    def test_hysteresis(self):
        """One contrary outcome must not flip a saturated counter."""
        predictor = BimodalPredictor(table_size=16)
        for _ in range(4):
            predictor.update(0x400000, taken=True)
        predictor.update(0x400000, taken=False)
        assert predictor.predict(0x400000)

    def test_aliasing_by_table_size(self):
        predictor = BimodalPredictor(table_size=4)
        for _ in range(4):
            predictor.update(0x400000, taken=False)
        # 4 entries x 8-byte instructions: +32 bytes aliases to the
        # same counter.
        assert not predictor.predict(0x400000 + 32)

    def test_reset(self):
        predictor = BimodalPredictor(table_size=16)
        for _ in range(4):
            predictor.update(0x400000, taken=False)
        predictor.reset()
        assert predictor.predict(0x400000)


class TestTwoLevel:
    def test_paper_configuration_name(self):
        predictor = TwoLevelPredictor()  # BHT 4, history 8, PHT 4096
        assert predictor.name == "2lev:4:8:4096"

    def test_learns_alternating_pattern(self):
        """An alternating branch defeats bimodal but not two-level."""
        two_level = TwoLevelPredictor(l1_size=1, history_length=4,
                                      l2_size=64)
        pc = 0x400100
        outcome = True
        for _ in range(64):  # warm up
            two_level.update(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(32):
            if two_level.predict(pc) == outcome:
                correct += 1
            two_level.update(pc, outcome)
            outcome = not outcome
        assert correct == 32

    def test_learns_short_periodic_pattern(self):
        pattern = [True, True, False]
        two_level = TwoLevelPredictor(l1_size=1, history_length=6,
                                      l2_size=256)
        pc = 0x400200
        for step in range(300):
            outcome = pattern[step % 3]
            two_level.update(pc, outcome)
        correct = 0
        for step in range(30):
            outcome = pattern[(300 + step) % 3]
            if two_level.predict(pc) == outcome:
                correct += 1
            two_level.update(pc, outcome)
        assert correct >= 28

    def test_gshare_xor_indexing_differs(self):
        plain = TwoLevelPredictor(l1_size=1, history_length=8,
                                  l2_size=256, xor=False)
        gshare = TwoLevelPredictor(l1_size=1, history_length=8,
                                   l2_size=256, xor=True)
        assert gshare.uses_xor and not plain.uses_xor
        assert gshare.name.startswith("gshare")

    def test_history_register_sharing(self):
        """With BHT=1, two branches share one history register."""
        predictor = TwoLevelPredictor(l1_size=1, history_length=4,
                                      l2_size=16)
        predictor.update(0x400000, True)
        predictor.update(0x400008, False)
        # No assertion on prediction values — just that state evolves
        # without error and reset clears it.
        predictor.reset()
        assert predictor.predict(0x400000)  # back to weakly taken


class TestCombining:
    def test_chooser_tracks_better_component(self):
        taken = AlwaysTaken()
        not_taken = AlwaysNotTaken()
        combo = CombiningPredictor(taken, not_taken, meta_size=16)
        pc = 0x400300
        for _ in range(8):
            combo.update(pc, taken=False)  # second component is right
        assert not combo.predict(pc)

    def test_name_mentions_components(self):
        combo = CombiningPredictor(AlwaysTaken(), AlwaysNotTaken(),
                                   meta_size=16)
        assert "taken" in combo.name


class TestStatic:
    def test_always_taken(self):
        assert AlwaysTaken().predict(0) is True

    def test_always_not_taken(self):
        assert AlwaysNotTaken().predict(0) is False


class TestPerfect:
    def test_requires_oracle(self):
        predictor = PerfectPredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(0)

    def test_echoes_oracle(self):
        predictor = PerfectPredictor()
        predictor.set_oracle(True)
        assert predictor.predict(0)
        predictor.set_oracle(False)
        assert not predictor.predict(0)


class TestBTB:
    def test_direct_mapped_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16, assoc=1)
        assert btb.lookup(0x400000) is None
        btb.update(0x400000, 0x400100)
        assert btb.lookup(0x400000) == 0x400100

    def test_aliasing_eviction(self):
        btb = BranchTargetBuffer(entries=4, assoc=1)
        btb.update(0x400000, 0x1)
        btb.update(0x400000 + 4 * 8, 0x2)  # same set, different tag
        assert btb.lookup(0x400000) is None

    def test_associativity_avoids_aliasing(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        btb.update(0x400000, 0x1)
        btb.update(0x400000 + 4 * 8, 0x2)
        assert btb.lookup(0x400000) == 0x1
        assert btb.lookup(0x400000 + 4 * 8) == 0x2

    def test_lru_replacement(self):
        btb = BranchTargetBuffer(entries=2, assoc=2)  # one set
        btb.update(0x400000, 0x1)
        btb.update(0x400008, 0x2)
        btb.lookup(0x400000)          # refresh first entry
        btb.update(0x400010, 0x3)     # evicts LRU = second entry
        assert btb.lookup(0x400000) == 0x1
        assert btb.lookup(0x400008) is None

    def test_update_refreshes_target(self):
        btb = BranchTargetBuffer(entries=4, assoc=1)
        btb.update(0x400000, 0x1)
        btb.update(0x400000, 0x2)
        assert btb.lookup(0x400000) == 0x2

    def test_hit_rate_statistics(self):
        btb = BranchTargetBuffer(entries=4, assoc=1)
        btb.lookup(0x400000)
        btb.update(0x400000, 0x1)
        btb.lookup(0x400000)
        assert btb.hits == 1
        assert btb.misses == 1
        assert btb.hit_rate == pytest.approx(0.5)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        assert ras.peek() == 0x100
        assert len(ras) == 1

    def test_empty_pop_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_wraps(self):
        """Deep call chains overwrite the oldest entries (16-entry RAS
        with deeper recursion loses outer frames — the paper's size)."""
        ras = ReturnAddressStack(depth=2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)   # overwrites the oldest entry (0x1)
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None  # the outer frame was lost

    def test_reset(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x1)
        ras.reset()
        assert ras.peek() is None


class TestFactory:
    @pytest.mark.parametrize("scheme", ["twolevel", "gshare", "bimodal",
                                        "comb", "taken", "nottaken",
                                        "perfect"])
    def test_all_schemes_buildable(self, scheme):
        predictor = build_direction_predictor(PredictorConfig(scheme=scheme))
        assert predictor is not None

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build_direction_predictor(PredictorConfig(scheme="oracle9000"))


class TestUnitClassification:
    """The misprediction/misfetch taxonomy of the fetch stage."""

    def _unit(self) -> BranchPredictorUnit:
        return BranchPredictorUnit(PredictorConfig())

    def test_correct_not_taken(self):
        unit = self._unit()
        # Train not-taken so the direction predictor says not-taken.
        for _ in range(4):
            resolution = unit.resolve(0x400000, BranchKind.COND, False, 0x400100)
            unit.update(0x400000, BranchKind.COND, False, 0x400100, resolution)
        resolution = unit.resolve(0x400000, BranchKind.COND, False, 0x400100)
        assert not resolution.mispredicted
        assert not resolution.misfetch

    def test_direction_mispredict_taken(self):
        """Predicted taken (warm counter + BTB hit), actually not taken."""
        unit = self._unit()
        resolution = unit.resolve(0x400000, BranchKind.COND, True, 0x400100)
        unit.update(0x400000, BranchKind.COND, True, 0x400100, resolution)
        resolution = unit.resolve(0x400000, BranchKind.COND, False, 0x400100)
        assert resolution.mispredicted
        assert resolution.wrong_path_start == 0x400100  # predicted target

    def test_btb_miss_effective_not_taken(self):
        """Predicted taken but no BTB target: behaves as not-taken —
        mispredict only if the branch was actually taken."""
        unit = self._unit()
        resolution = unit.resolve(0x400000, BranchKind.COND, True, 0x400100)
        assert resolution.predicted_taken  # weakly-taken initial counters
        assert resolution.predicted_target is None
        assert resolution.mispredicted
        assert resolution.wrong_path_start == 0x400008  # fall-through

    def test_misfetch_wrong_target(self):
        """Right direction, wrong BTB target (aliasing) = misfetch."""
        unit = BranchPredictorUnit(PredictorConfig(btb_entries=4))
        alias = 0x400000 + 4 * 8
        first = unit.resolve(0x400000, BranchKind.JUMP, True, 0xAAA0)
        unit.update(0x400000, BranchKind.JUMP, True, 0xAAA0, first)
        resolution = unit.resolve(alias, BranchKind.JUMP, True, 0xBBB0)
        unit.update(alias, BranchKind.JUMP, True, 0xBBB0, resolution)
        # The alias overwrote the entry: the original now misfetches.
        resolution = unit.resolve(0x400000, BranchKind.JUMP, True, 0xAAA0)
        assert resolution.misfetch
        assert not resolution.mispredicted

    def test_return_uses_ras(self):
        unit = self._unit()
        call = unit.resolve(0x400000, BranchKind.CALL, True, 0x500000)
        unit.update(0x400000, BranchKind.CALL, True, 0x500000, call)
        ret = unit.resolve(0x500010, BranchKind.RETURN, True, 0x400008)
        assert ret.predicted_target == 0x400008  # pc + 8 pushed by call
        assert not ret.misfetch

    def test_return_empty_ras_misfetches(self):
        unit = self._unit()
        ret = unit.resolve(0x500010, BranchKind.RETURN, True, 0x400008)
        assert ret.misfetch

    def test_perfect_never_wrong(self):
        unit = BranchPredictorUnit(PredictorConfig(scheme="perfect"))
        resolution = unit.resolve(0x400000, BranchKind.COND, True, 0x1234)
        assert not resolution.mispredicted
        assert not resolution.misfetch
        assert resolution.predicted_target == 0x1234

    def test_statistics_track_outcomes(self):
        unit = self._unit()
        resolution = unit.resolve(0x400000, BranchKind.COND, True, 0x400100)
        unit.update(0x400000, BranchKind.COND, True, 0x400100, resolution)
        assert unit.stats.lookups == 1
        assert unit.stats.conditional == 1


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=63),  # branch site index
    st.booleans(),                           # outcome
), max_size=300))
def test_unit_deterministic_state_machine(events):
    """Two identically-driven units agree on every prediction — the
    invariant trace generation and the engine rely on."""
    unit_a = BranchPredictorUnit(PredictorConfig())
    unit_b = BranchPredictorUnit(PredictorConfig())
    for site, taken in events:
        pc = 0x400000 + site * 8
        target = 0x400800 + site * 16
        res_a = unit_a.resolve(pc, BranchKind.COND, taken, target)
        res_b = unit_b.resolve(pc, BranchKind.COND, taken, target)
        assert res_a == res_b
        unit_a.update(pc, BranchKind.COND, taken, target, res_a)
        unit_b.update(pc, BranchKind.COND, taken, target, res_b)
