"""Config-specialized engine generation: the differential contract.

The specialized tier is only allowed to exist because it is
**bit-identical** to the reference interpreter — same
``SimulationStatistics`` document, byte for byte, on every config,
workload, trace source, and training mode.  These tests enforce that
contract with the reference engine as oracle, then cover the
machinery around it: the codegen cache, tier selection and fallback,
spec round-trips, work-unit / sweep / CLI / service wiring.
"""

import dataclasses
import json
import threading
from functools import lru_cache

import pytest

from repro.core import (
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
    ReSimEngine,
    SpecializationError,
    SpecializedEngine,
)
from repro.core.observers import ProgressObserver
from repro.core.specialize import (
    ENGINES,
    EngineRequest,
    clear_codegen_cache,
    codegen_cache_info,
    compile_engine,
    create_engine,
    engine_cache_key,
    selected_tier,
)
from repro.exec import (
    ProcessPoolBackend,
    SerialBackend,
    WorkUnit,
    execute_unit,
)
from repro.serialize import stats_to_dict
from repro.session import CONFIGS, SessionError, Simulation
from repro.trace.fileio import write_trace_file
from repro.trace.source import FileSource
from repro.workloads import SyntheticWorkload, get_profile

WORKLOADS = ("bzip2", "gzip", "parser", "vortex", "vpr")
BUDGET = 1200


@lru_cache(maxsize=None)
def _records(workload: str, budget: int = BUDGET) -> tuple:
    generation = SyntheticWorkload(get_profile(workload),
                                   seed=7).generate(budget)
    return tuple(generation.records)


def _doc(stats) -> str:
    """The canonical byte form both tiers must agree on."""
    return json.dumps(stats_to_dict(stats), sort_keys=True)


# ---------------------------------------------------------------------------
# the differential suite: reference engine as oracle


class TestBitIdentity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_every_config_and_workload(self, config_name, workload):
        config = CONFIGS.get(config_name)
        records = _records(workload)
        reference = ReSimEngine(config, list(records)).run()
        specialized = SpecializedEngine(config, list(records)).run()
        assert _doc(specialized.stats) == _doc(reference.stats)

    @pytest.mark.parametrize("config", (PAPER_4WIDE_PERFECT,
                                        PAPER_2WIDE_CACHE),
                             ids=("perfect", "cache"))
    def test_fetch_time_predictor_training(self, config):
        records = _records("gzip")
        reference = ReSimEngine(
            config, list(records),
            update_predictor_at_commit=False).run()
        specialized = SpecializedEngine(
            config, list(records),
            update_predictor_at_commit=False).run()
        assert _doc(specialized.stats) == _doc(reference.stats)

    def test_streaming_and_sharded_file_sources(self, tmp_path):
        records = list(_records("gzip"))
        v1 = tmp_path / "trace.v1"
        v2 = tmp_path / "trace.v2"
        write_trace_file(v1, records, version=1)
        write_trace_file(v2, records, segment_records=256)
        sources = [
            lambda: FileSource(v1),
            lambda: FileSource(v2),
            lambda: FileSource(v2, segments=(1, 3)),
        ]
        for config in (PAPER_4WIDE_PERFECT, PAPER_2WIDE_CACHE):
            for make in sources:
                reference = ReSimEngine(config, make()).run()
                specialized = SpecializedEngine(config, make()).run()
                assert _doc(specialized.stats) == _doc(reference.stats)

    def test_session_runs_identical_across_tiers(self):
        base = Simulation.for_workload("gzip", PAPER_4WIDE_PERFECT,
                                       budget=BUDGET)
        reference = base.run()
        specialized = base.with_engine("specialized").run()
        assert reference.engine_tier == "reference"
        assert specialized.engine_tier == "specialized"
        assert _doc(specialized.stats) == _doc(reference.stats)
        # The result documents agree everywhere except the spec's
        # provenance record of which tier ran it.
        ref_doc, spec_doc = reference.to_dict(), specialized.to_dict()
        assert spec_doc.pop("spec")["engine"] == "specialized"
        assert "engine" not in ref_doc.pop("spec")
        assert spec_doc == ref_doc

    def test_sharded_sweep_merges_identically(self, tmp_path):
        from repro.sweep import SweepRunner, SweepSpec

        spec = SweepSpec(axes={"rob_entries": (8, 16)})
        outcomes = {}
        for engine in ("reference", "specialized"):
            runner = SweepRunner(
                spec, "gzip", results_dir=tmp_path / engine,
                budget=BUDGET, shards=2, engine=engine)
            outcomes[engine] = json.loads(runner.run().to_json())
        assert outcomes["specialized"] == outcomes["reference"]


# ---------------------------------------------------------------------------
# the specialized engine's own guard rails


class TestSpecializedEngineGuards:
    def test_single_run(self):
        engine = SpecializedEngine(PAPER_4WIDE_PERFECT,
                                   list(_records("gzip")))
        engine.run()
        with pytest.raises(SpecializationError):
            engine.run()

    def test_instrumentation_windows_rejected(self):
        engine = SpecializedEngine(PAPER_4WIDE_PERFECT,
                                   list(_records("gzip")))
        with pytest.raises(SpecializationError):
            engine.run(warmup_instructions=10)

    def test_wrong_path_free_guard_trips_on_tagged_records(self):
        records = list(_records("gzip"))
        assert any(r.tag for r in records), "gzip trace must speculate"
        engine = SpecializedEngine(PAPER_4WIDE_PERFECT, records,
                                   wrong_path_free=True)
        with pytest.raises(SpecializationError):
            engine.run()

    def test_generated_source_is_inspectable(self):
        engine = SpecializedEngine(PAPER_4WIDE_PERFECT,
                                   list(_records("gzip", 64)))
        source = engine.generated_source
        assert "def run_trace(" in source
        # Config constants are baked in as literals.
        assert str(PAPER_4WIDE_PERFECT.rob_entries) in source


# ---------------------------------------------------------------------------
# codegen cache


class TestCodegenCache:
    def setup_method(self):
        clear_codegen_cache()

    def teardown_method(self):
        clear_codegen_cache()

    def test_hit_on_same_config(self):
        first = compile_engine(PAPER_4WIDE_PERFECT)
        second = compile_engine(PAPER_4WIDE_PERFECT)
        assert first is second
        info = codegen_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["entries"] == 1

    def test_rekeyed_on_config_change(self):
        base = compile_engine(PAPER_4WIDE_PERFECT)
        grown = dataclasses.replace(PAPER_4WIDE_PERFECT,
                                    rob_entries=64)
        assert compile_engine(grown) is not base
        assert codegen_cache_info()["entries"] == 2

    def test_key_covers_every_variant_axis(self):
        keys = {
            engine_cache_key(PAPER_4WIDE_PERFECT,
                             update_at_commit=at_commit,
                             wrong_path=wrong_path,
                             inline_source=inline)
            for at_commit in (True, False)
            for wrong_path in (True, False)
            for inline in (True, False)
        }
        assert len(keys) == 8

    def test_thread_safe_compilation(self):
        results = []

        def compile_one():
            results.append(compile_engine(PAPER_2WIDE_CACHE))

        threads = [threading.Thread(target=compile_one)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, results))) == 1
        assert codegen_cache_info()["entries"] == 1

    def test_process_pool_execution(self, tmp_path):
        """Units carrying the specialized tier pickle cleanly and
        compile independently in each pool worker."""
        trace = tmp_path / "gzip.trace"
        write_trace_file(trace, list(_records("gzip")))
        units = {}
        for engine in ("reference", "specialized"):
            units[engine] = [
                WorkUnit.for_trace(
                    f"{engine}-{index}", trace, name,
                    tmp_path / f"{engine}-{index}.json", engine=engine)
                for index, name in enumerate(sorted(CONFIGS))
            ]
        serial = SerialBackend().run_units(units["reference"])
        pooled = ProcessPoolBackend(2).run_units(units["specialized"])
        for index in range(len(CONFIGS)):
            assert pooled[f"specialized-{index}"]["stats"] == \
                serial[f"reference-{index}"]["stats"]


# ---------------------------------------------------------------------------
# tier selection and fallback


def _request(**overrides) -> EngineRequest:
    defaults = dict(config=PAPER_4WIDE_PERFECT,
                    trace=list(_records("gzip", 64)))
    defaults.update(overrides)
    return EngineRequest(**defaults)


class TestTierSelection:
    def test_registry_names(self):
        assert sorted(ENGINES) == ["reference", "specialized"]

    def test_plain_request_specializes(self):
        assert selected_tier("specialized", _request()) == "specialized"
        engine = create_engine("specialized", _request())
        assert isinstance(engine, SpecializedEngine)

    def test_observers_force_reference(self):
        request = _request(observers=(ProgressObserver(100),))
        assert selected_tier("specialized", request) == "reference"
        assert isinstance(create_engine("specialized", request),
                          ReSimEngine)

    @pytest.mark.parametrize("overrides", (
        {"warmup_instructions": 50},
        {"roi_instructions": 100},
        {"stop_when": lambda engine: False},
    ), ids=("warmup", "roi", "stop_when"))
    def test_instrumentation_windows_force_reference(self, overrides):
        assert selected_tier("specialized",
                             _request(**overrides)) == "reference"

    def test_subclassed_config_forces_reference(self):
        class TweakedConfig(ProcessorConfig):
            pass

        fields = {f.name: getattr(PAPER_4WIDE_PERFECT, f.name)
                  for f in dataclasses.fields(ProcessorConfig)}
        request = _request(config=TweakedConfig(**fields))
        assert selected_tier("specialized", request) == "reference"

    def test_session_fallback_is_observable(self):
        base = Simulation.for_workload("gzip", PAPER_4WIDE_PERFECT,
                                       budget=200)
        specialized = base.with_engine("specialized")
        assert specialized.run().engine_tier == "specialized"
        observed = specialized.with_observer(ProgressObserver(10_000))
        assert observed.run().engine_tier == "reference"
        windowed = specialized.with_warmup(50)
        assert windowed.run().engine_tier == "reference"


# ---------------------------------------------------------------------------
# spec round-trips and cache-key stability


class TestSpecWiring:
    def test_engine_round_trips_through_spec(self):
        simulation = Simulation.for_workload(
            "gzip", PAPER_4WIDE_PERFECT,
            budget=200).with_engine("specialized")
        spec = simulation.to_spec()
        assert spec["engine"] == "specialized"
        assert Simulation.from_spec(spec).engine == "specialized"

    def test_reference_tier_omitted_from_spec(self):
        simulation = Simulation.for_workload("gzip",
                                             PAPER_4WIDE_PERFECT,
                                             budget=200)
        assert "engine" not in simulation.to_spec()

    def test_unknown_engine_rejected(self):
        simulation = Simulation.for_workload("gzip",
                                             PAPER_4WIDE_PERFECT,
                                             budget=200)
        with pytest.raises(SessionError):
            simulation.with_engine("turbo")
        spec = simulation.to_spec()
        spec["engine"] = "turbo"
        with pytest.raises(SessionError):
            Simulation.from_spec(spec)

    def test_spec_key_shared_across_tiers(self):
        """Tiers are bit-identical, so the campaign cache must hand a
        specialized submission the result a reference run produced."""
        base = Simulation.for_workload("gzip", PAPER_4WIDE_PERFECT,
                                       budget=200)
        specialized = base.with_engine("specialized")
        assert specialized.spec_key() == base.spec_key()
        assert "engine" not in specialized.canonical_spec()

    def test_work_unit_carries_engine(self, tmp_path):
        unit = WorkUnit.for_trace("u1", tmp_path / "t.trace",
                                  "4wide-perfect",
                                  tmp_path / "u1.json",
                                  engine="specialized")
        assert unit.spec["engine"] == "specialized"
        default = WorkUnit.for_trace("u2", tmp_path / "t.trace",
                                     "4wide-perfect",
                                     tmp_path / "u2.json",
                                     engine="reference")
        assert "engine" not in default.spec

    def test_execute_unit_honors_engine(self, tmp_path):
        trace = tmp_path / "gzip.trace"
        write_trace_file(trace, list(_records("gzip")))
        reference = execute_unit(WorkUnit.for_trace(
            "ref", trace, "4wide-perfect", tmp_path / "ref.json"))
        specialized = execute_unit(WorkUnit.for_trace(
            "spec", trace, "4wide-perfect", tmp_path / "spec.json",
            engine="specialized"))
        assert specialized["stats"] == reference["stats"]

    def test_sweep_runner_rejects_unknown_engine(self, tmp_path):
        from repro.sweep import SweepError, SweepRunner, SweepSpec

        with pytest.raises(SweepError):
            SweepRunner(SweepSpec(axes={"rob_entries": (8,)}), "gzip",
                        results_dir=tmp_path, engine="turbo")


# ---------------------------------------------------------------------------
# CLI and service wiring


class TestEndToEnd:
    def test_cli_simulate_engine_flag(self, capsys):
        from repro.cli import main

        argv = ["simulate", "gzip", "--budget", "400"]
        assert main(argv) == 0
        reference = capsys.readouterr().out
        assert main(argv + ["--engine", "specialized"]) == 0
        assert capsys.readouterr().out == reference

    def test_cli_rejects_unknown_engine(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--budget", "400",
                  "--engine", "turbo"])

    def test_service_validates_and_carries_engine(self, tmp_path):
        from repro.serve.app import CampaignService

        service = CampaignService(tmp_path, autostart=False)
        try:
            bulk = {"kind": "sweep",
                    "axes": {"rob_entries": [8]},
                    "budget": 200, "engine": "specialized"}
            normalized = service.validate_request(bulk)
            assert normalized["engine"] == "specialized"
            assert "engine" not in service.validate_request(
                {**bulk, "engine": "reference"})
            with pytest.raises(ValueError):
                service.validate_request({**bulk, "engine": "turbo"})

            spec = Simulation.for_workload(
                "gzip", PAPER_4WIDE_PERFECT,
                budget=200).with_engine("specialized").to_spec()
            simulate = service.validate_request(
                {"kind": "simulate", "spec": spec})
            assert simulate["engine"] == "specialized"
            # The canonical spec (the cache identity) drops the tier.
            assert "engine" not in simulate["spec"]
        finally:
            service.close()
