"""Tests for the throughput mathematics and the Table 2 comparison."""

import pytest

from repro.core import PAPER_4WIDE_PERFECT, ReSimEngine
from repro.core.minorpipe import OptimizedPipeline, SimplePipeline
from repro.fpga.device import VIRTEX4_LX40, VIRTEX5_LX50T
from repro.perf.comparison import (
    PUBLISHED_SIMULATORS,
    best_hardware_competitor,
    comparison_table,
    render_table,
    speedup_over,
)
from repro.perf.harness import evaluate_benchmark
from repro.perf.throughput import ThroughputModel, ThroughputReport
from repro.trace.record import OtherRecord


def _result(records=200):
    trace = [OtherRecord(dest=(i % 30) + 1) for i in range(records)]
    return ReSimEngine(PAPER_4WIDE_PERFECT, trace).run()


class TestThroughputMath:
    def test_mips_formula(self):
        """MIPS = f / L x IPC, exactly."""
        result = _result()
        report = ThroughputModel(VIRTEX5_LX50T).report(result)
        assert report.minor_cycles_per_major == 7  # optimized N+3
        expected = 105.0 / 7 * result.ipc
        assert report.mips == pytest.approx(expected)

    def test_v4_v5_ratio_is_frequency_ratio(self):
        """The Table 1 property: V5/V4 = 105/84 for any benchmark."""
        result = _result()
        v4 = ThroughputModel(VIRTEX4_LX40).report(result)
        v5 = ThroughputModel(VIRTEX5_LX50T).report(result)
        assert v5.mips / v4.mips == pytest.approx(105.0 / 84.0)

    def test_pipeline_choice_scales_mips(self):
        result = _result()
        simple = ThroughputModel(VIRTEX4_LX40,
                                 SimplePipeline(4)).report(result)
        optimized = ThroughputModel(VIRTEX4_LX40,
                                    OptimizedPipeline(4)).report(result)
        assert optimized.mips / simple.mips == pytest.approx(11 / 7)

    def test_wrong_path_mips_at_least_committed(self):
        result = _result()
        report = ThroughputModel(VIRTEX4_LX40).report(result)
        assert report.mips_with_wrong_path >= report.mips

    def test_bandwidth_identity(self):
        report = ThroughputReport(
            device_name="x", minor_cycle_mhz=84.0,
            minor_cycles_per_major=7, ipc=2.0,
            fetch_throughput=2.2, trace_throughput=2.3,
        )
        bits = 43.44
        assert report.bandwidth_mbytes_per_sec(bits) == pytest.approx(
            report.mips_with_wrong_path * bits / 8.0
        )
        assert report.bandwidth_gbits_per_sec(bits) == pytest.approx(
            report.bandwidth_mbytes_per_sec(bits) * 8.0 / 1000.0
        )

    def test_wall_clock(self):
        result = _result()
        seconds = ThroughputModel(VIRTEX4_LX40).wall_clock_seconds(result)
        minors = OptimizedPipeline(4).total_minor_cycles(
            result.major_cycles
        )
        assert seconds == pytest.approx(minors / 84e6)


class TestHarness:
    def test_row_internal_consistency(self):
        row = evaluate_benchmark("gzip", PAPER_4WIDE_PERFECT, budget=3000)
        assert row.benchmark == "gzip"
        assert row.mips("xc5vlx50t") / row.mips("xc4vlx40") == \
            pytest.approx(105.0 / 84.0)
        assert row.bandwidth_mbytes("xc4vlx40") == pytest.approx(
            row.mips_with_wrong_path("xc4vlx40")
            * row.bits_per_instruction / 8.0
        )

    def test_seed_stability(self):
        a = evaluate_benchmark("vpr", PAPER_4WIDE_PERFECT, budget=2000,
                               seed=11)
        b = evaluate_benchmark("vpr", PAPER_4WIDE_PERFECT, budget=2000,
                               seed=11)
        assert a.mips("xc4vlx40") == b.mips("xc4vlx40")


class TestComparison:
    def test_published_rows_present(self):
        names = {entry.name for entry in PUBLISHED_SIMULATORS}
        assert {"PTLsim", "sim-outorder", "GEMS", "A-Ports"} <= names

    def test_published_values_from_paper(self):
        values = {entry.name: entry.mips for entry in PUBLISHED_SIMULATORS}
        assert values["PTLsim"] == 0.27
        assert values["sim-outorder"] == 0.30
        assert values["GEMS"] == 0.07
        assert values["FAST (perfect BP)"] == 2.79
        assert values["A-Ports"] == 4.70

    def test_comparison_table_appends_resim(self):
        rows = comparison_table({"ReSim (test)": 25.0})
        assert rows[-1].name == "ReSim (test)"
        assert rows[-1].category == "resim"

    def test_speedup(self):
        assert speedup_over(18.33, "FAST (perfect BP)") == \
            pytest.approx(6.57, abs=0.01)

    def test_unknown_competitor(self):
        with pytest.raises(KeyError):
            speedup_over(1.0, "SPIM")

    def test_best_hardware_competitor(self):
        assert best_hardware_competitor().name == "A-Ports"

    def test_render(self):
        text = render_table(comparison_table({"ReSim": 28.67}))
        assert "PTLsim" in text and "ReSim" in text
