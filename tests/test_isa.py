"""Tests for registers, opcode metadata, and the instruction codec."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    HI,
    Instruction,
    LO,
    OPCODE_INFO,
    Opcode,
    REG_COUNT,
    register_index,
    register_name,
)
from repro.isa.instruction import INSTRUCTION_BYTES, NOP
from repro.isa.opcodes import BranchKind, Format, FuClass


class TestRegisters:
    def test_register_count(self):
        assert REG_COUNT == 34  # 32 GPRs + HI + LO

    def test_symbolic_names(self):
        assert register_index("$zero") == 0
        assert register_index("$sp") == 29
        assert register_index("$ra") == 31
        assert register_index("$hi") == HI
        assert register_index("$lo") == LO

    def test_numeric_names(self):
        assert register_index("$0") == 0
        assert register_index("$31") == 31

    def test_alternate_fp_name(self):
        assert register_index("$s8") == register_index("$fp") == 30

    def test_case_insensitive(self):
        assert register_index("$T0") == register_index("$t0")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            register_index("$bogus")

    def test_roundtrip(self):
        for index in range(REG_COUNT):
            assert register_index(register_name(index)) == index

    def test_name_out_of_range(self):
        with pytest.raises(IndexError):
            register_name(REG_COUNT)


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO

    def test_memory_ops_classified(self):
        loads = {op for op, info in OPCODE_INFO.items() if info.is_load}
        stores = {op for op, info in OPCODE_INFO.items() if info.is_store}
        assert loads == {Opcode.LB, Opcode.LBU, Opcode.LH, Opcode.LHU,
                         Opcode.LW}
        assert stores == {Opcode.SB, Opcode.SH, Opcode.SW}

    def test_branch_ops_classified(self):
        branches = {op for op, info in OPCODE_INFO.items()
                    if info.is_branch}
        assert branches == {Opcode.BEQ, Opcode.BNE, Opcode.BLEZ,
                            Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ,
                            Opcode.J, Opcode.JAL, Opcode.JR, Opcode.JALR}

    def test_muldiv_write_hilo(self):
        for opcode in (Opcode.MULT, Opcode.MULTU, Opcode.DIV, Opcode.DIVU):
            assert set(OPCODE_INFO[opcode].writes) == {"hi", "lo"}

    def test_store_reads_base_and_data(self):
        assert set(OPCODE_INFO[Opcode.SW].reads) == {"rs", "rt"}

    def test_fu_classes(self):
        assert OPCODE_INFO[Opcode.ADD].fu is FuClass.ALU
        assert OPCODE_INFO[Opcode.MULT].fu is FuClass.MUL
        assert OPCODE_INFO[Opcode.DIV].fu is FuClass.DIV
        assert OPCODE_INFO[Opcode.LW].fu is FuClass.LOAD
        assert OPCODE_INFO[Opcode.SW].fu is FuClass.STORE
        assert OPCODE_INFO[Opcode.BEQ].fu is FuClass.BRANCH


class TestInstruction:
    def test_instruction_size(self):
        assert INSTRUCTION_BYTES == 8  # PISA's 64-bit encoding

    def test_src_registers_exclude_zero(self):
        instr = Instruction(op=Opcode.ADD, rd=3, rs=0, rt=5)
        assert instr.src_registers() == (5,)

    def test_dest_registers_exclude_zero(self):
        instr = Instruction(op=Opcode.ADD, rd=0, rs=1, rt=2)
        assert instr.dest_registers() == ()

    def test_mult_dest_is_hilo(self):
        instr = Instruction(op=Opcode.MULT, rs=1, rt=2)
        assert set(instr.dest_registers()) == {HI, LO}

    def test_mfhi_reads_hi(self):
        instr = Instruction(op=Opcode.MFHI, rd=4)
        assert instr.src_registers() == (HI,)

    def test_jal_writes_ra(self):
        instr = Instruction(op=Opcode.JAL, imm=0x80000)
        assert instr.dest_registers() == (31,)

    def test_jr_ra_is_return(self):
        assert Instruction(op=Opcode.JR, rs=31).branch_kind \
            is BranchKind.RETURN

    def test_jr_other_is_indirect(self):
        assert Instruction(op=Opcode.JR, rs=8).branch_kind \
            is BranchKind.INDIRECT

    def test_jalr_is_call(self):
        assert Instruction(op=Opcode.JALR, rd=31, rs=8).branch_kind \
            is BranchKind.CALL

    def test_nop_constant(self):
        assert NOP.op is Opcode.NOP
        assert not NOP.is_branch
        assert not NOP.is_mem

    def test_str_forms(self):
        assert str(Instruction(op=Opcode.ADD, rd=8, rs=9, rt=10)) == \
            "add $t0, $t1, $t2"
        assert str(Instruction(op=Opcode.LW, rt=8, rs=29, imm=4)) == \
            "lw $t0, 4($sp)"
        assert str(NOP) == "nop"


class TestBinaryCodec:
    def test_roundtrip_simple(self):
        instr = Instruction(op=Opcode.ADDI, rt=8, rs=9, imm=-42)
        assert Instruction.decode(instr.encode()) == instr

    def test_invalid_opcode_number(self):
        with pytest.raises(ValueError):
            Instruction.decode(0xFFFF)

    def test_negative_immediate_sign_extension(self):
        instr = Instruction(op=Opcode.BEQ, rs=1, rt=2, imm=-8)
        decoded = Instruction.decode(instr.encode())
        assert decoded.imm == -8

    @given(st.sampled_from(list(Opcode)),
           st.integers(min_value=0, max_value=33),
           st.integers(min_value=0, max_value=33),
           st.integers(min_value=0, max_value=33),
           st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1))
    def test_roundtrip_property(self, op, rd, rs, rt, imm):
        instr = Instruction(op=op, rd=rd, rs=rs, rt=rt, imm=imm)
        word = instr.encode()
        assert 0 <= word < (1 << 64)
        assert Instruction.decode(word) == instr
