"""Cross-validation: engine vs. independent baseline vs. generator.

Three families of evidence that the timing core is not grossly wrong:

1. the dataflow-scheduling baseline (:mod:`repro.baseline`) agrees with
   the engine's cycle counts within a documented tolerance on both
   memory configurations;
2. with fetch-time predictor training, the engine re-derives *exactly*
   the predictions the trace generator made (zero divergence), which
   validates the whole tagged-trace contract;
3. kernel traces from the real functional simulator behave sanely end
   to end.
"""

import pytest

from repro.baseline import OutOrderBaseline
from repro.bpred.unit import PERFECT_PREDICTOR
from repro.core import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT, ReSimEngine
from repro.functional import SimBpred
from repro.workloads import SyntheticWorkload, get_profile, kernel_program

BENCHMARKS = ("gzip", "bzip2", "parser", "vortex", "vpr")

#: Documented agreement tolerance between the two independent models.
TOLERANCE = 0.15

#: Cache-configuration tolerance is wider: the baseline does not model
#: misfetch penalties (no BTB/RAS state), which matters most for the
#: call-heavy, I-cache-pressured vortex profile.
CACHE_TOLERANCE = 0.20


def _synthetic(name, config, budget=8000, seed=7):
    workload = SyntheticWorkload(
        get_profile(name), seed=seed,
        predictor_config=config.predictor,
        rob_entries=config.rob_entries,
        ifq_entries=config.ifq_entries,
    )
    return workload.generate(budget)


class TestBaselineAgreement:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_perfect_memory_cycle_agreement(self, name):
        generation = _synthetic(name, PAPER_4WIDE_PERFECT)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records).run()
        baseline = OutOrderBaseline(PAPER_4WIDE_PERFECT).run(
            generation.records
        )
        ratio = baseline.cycles / engine.major_cycles
        assert 1 - TOLERANCE < ratio < 1 + TOLERANCE, (
            f"{name}: baseline {baseline.cycles} vs engine "
            f"{engine.major_cycles}"
        )

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_cache_config_cycle_agreement(self, name):
        generation = _synthetic(name, PAPER_2WIDE_CACHE)
        engine = ReSimEngine(PAPER_2WIDE_CACHE, generation.records).run()
        baseline = OutOrderBaseline(PAPER_2WIDE_CACHE).run(
            generation.records
        )
        ratio = baseline.cycles / engine.major_cycles
        assert 1 - CACHE_TOLERANCE < ratio < 1 + CACHE_TOLERANCE, name

    def test_ipc_ordering_preserved(self):
        """Both models must rank the benchmarks the same way (perfect
        memory, where agreement is tightest)."""
        engine_ipc = {}
        baseline_ipc = {}
        for name in BENCHMARKS:
            generation = _synthetic(name, PAPER_4WIDE_PERFECT,
                                    budget=12_000)
            engine_ipc[name] = ReSimEngine(
                PAPER_4WIDE_PERFECT, generation.records
            ).run().ipc
            baseline_ipc[name] = OutOrderBaseline(
                PAPER_4WIDE_PERFECT
            ).run(generation.records).ipc
        engine_order = sorted(BENCHMARKS, key=engine_ipc.__getitem__)
        baseline_order = sorted(BENCHMARKS, key=baseline_ipc.__getitem__)
        # Allow one adjacent swap (parser/vpr are within noise of each
        # other in both models).
        disagreements = sum(a != b for a, b in
                            zip(engine_order, baseline_order, strict=True))
        assert disagreements <= 2, (engine_order, baseline_order)

    def test_instruction_counts_agree_exactly(self):
        generation = _synthetic("gzip", PAPER_4WIDE_PERFECT)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records).run()
        baseline = OutOrderBaseline(PAPER_4WIDE_PERFECT).run(
            generation.records
        )
        assert baseline.instructions == \
            int(engine.stats.committed_instructions)
        assert baseline.mispredictions == \
            int(engine.stats.mispredictions)


class TestGeneratorEngineContract:
    """The tagged-trace contract between generator and engine."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_zero_divergence_with_fetch_time_training(self, name):
        """Training the engine's predictor at fetch reproduces the
        generator's predictions bit for bit: every tagged block in the
        trace is anticipated by the engine's own resolution."""
        generation = _synthetic(name, PAPER_4WIDE_PERFECT, budget=6000)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records,
                             update_predictor_at_commit=False)
        result = engine.run()
        assert int(result.stats.prediction_divergence) == 0

    def test_commit_time_training_diverges_rarely(self):
        """With the paper's commit-time training the engine may
        disagree with the generator on in-flight branches — but only
        rarely (< 3% of branches on these workloads)."""
        generation = _synthetic("parser", PAPER_4WIDE_PERFECT,
                                budget=10_000)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
        result = engine.run()
        branches = int(result.stats.committed_branches)
        divergence = int(result.stats.prediction_divergence)
        assert divergence / branches < 0.03

    def test_all_records_consumed(self):
        for name in BENCHMARKS:
            generation = _synthetic(name, PAPER_4WIDE_PERFECT, budget=4000)
            engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
            result = engine.run()
            assert int(result.stats.trace_records_consumed) == \
                len(generation.records), name

    def test_committed_equals_generated_correct_path(self):
        generation = _synthetic("vortex", PAPER_4WIDE_PERFECT, budget=5000)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
        result = engine.run()
        assert int(result.stats.committed_instructions) == \
            generation.committed_instructions

    def test_engine_mispredictions_match_generator(self):
        generation = _synthetic("gzip", PAPER_4WIDE_PERFECT, budget=5000)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records)
        result = engine.run()
        assert int(result.stats.mispredictions) == generation.mispredictions


class TestKernelTraces:
    """Real functional traces through both timing models."""

    @pytest.mark.parametrize("kernel", ["vecsum", "bubble_sort",
                                        "strsearch", "matmul"])
    def test_engine_and_baseline_agree_on_kernels(self, kernel):
        program = kernel_program(kernel)
        generation = SimBpred().generate(program)
        engine = ReSimEngine(PAPER_4WIDE_PERFECT, generation.records,
                             start_pc=program.entry).run()
        baseline = OutOrderBaseline(PAPER_4WIDE_PERFECT).run(
            generation.records
        )
        ratio = baseline.cycles / engine.major_cycles
        assert 0.75 < ratio < 1.25, kernel

    def test_perfect_bp_kernel_runs_clean(self):
        program = kernel_program("listwalk")
        generation = SimBpred(
            predictor_config=PERFECT_PREDICTOR
        ).generate(program)
        from dataclasses import replace
        config = replace(PAPER_4WIDE_PERFECT, predictor=PERFECT_PREDICTOR)
        result = ReSimEngine(config, generation.records,
                             start_pc=program.entry).run()
        assert int(result.stats.mispredictions) == 0
        assert int(result.stats.misfetches) == 0
