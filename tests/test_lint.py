"""resim-lint: fixture tests per rule, suppression mechanics, and the
repo-wide zero-findings self-run that CI gates on.

Every rule gets at least one minimal *bad* snippet it must fire on
and the corresponding *good* idiom it must stay silent on — the rule
set is only trustworthy if both directions are pinned.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # tools/ is repo tooling, not a
    sys.path.insert(0, str(REPO_ROOT))  # package under src/

from tools.lint import all_rules, lint_paths, lint_source  # noqa: E402
from tools.lint.framework import (  # noqa: E402
    FileContext,
    lint_contexts,
    module_name_for,
)

SRC = REPO_ROOT / "src"


def rules_of(findings) -> list[str]:
    return sorted({finding.rule for finding in findings})


def fires(source: str, rule: str, *, module: str = "repro.fixture"
          ) -> bool:
    return rule in rules_of(lint_source(source, module=module))


# ---------------------------------------------------------------------
# D101 — stdlib random
# ---------------------------------------------------------------------


class TestUnseededRandom:
    def test_module_level_random_fires(self):
        assert fires("import random\nx = random.random()\n", "D101")

    def test_unseeded_random_instance_fires(self):
        assert fires("import random\nr = random.Random()\n", "D101")

    def test_system_random_fires(self):
        assert fires("import random\nr = random.SystemRandom()\n",
                     "D101")

    def test_from_import_fires(self):
        assert fires("from random import choice\n", "D101")

    def test_aliased_import_fires(self):
        assert fires("import random as rnd\nx = rnd.shuffle(items)\n",
                     "D101")

    def test_seeded_random_instance_is_silent(self):
        assert not fires("import random\nr = random.Random(42)\n",
                         "D101")

    def test_repo_rng_is_silent(self):
        good = ("from repro.utils.rng import XorShiftRNG\n"
                "rng = XorShiftRNG(7)\nx = rng.random()\n")
        assert rules_of(lint_source(good)) == []

    def test_unrelated_name_random_is_silent(self):
        # A local object that happens to be called "random" is not
        # the stdlib module.
        assert not fires("random = make_sampler()\n"
                         "x = random.next_u64()\n", "D101")


# ---------------------------------------------------------------------
# D102 — wall clock into results
# ---------------------------------------------------------------------


class TestWallClockInResults:
    def test_dict_literal_fires(self):
        assert fires("import time\n"
                     "payload = {'finished_at': time.time()}\n",
                     "D102")

    def test_result_assignment_fires(self):
        assert fires("import time\nresult_stamp = time.time()\n",
                     "D102")

    def test_json_dumps_argument_fires(self):
        assert fires(
            "import json, time\n"
            "s = json.dumps([time.time()], sort_keys=True)\n",
            "D102")

    def test_datetime_now_in_document_fires(self):
        assert fires("from datetime import datetime\n"
                     "doc = {'at': datetime.now().isoformat()}\n",
                     "D102")

    def test_from_import_time_fires(self):
        assert fires("from time import time\n"
                     "checkpoint_age = time()\n", "D102")

    def test_lease_aging_is_silent(self):
        good = ("import time\n"
                "def stale(path, horizon):\n"
                "    now = time.time()\n"
                "    return now - path.stat().st_mtime > horizon\n")
        assert not fires(good, "D102")

    def test_monotonic_timeout_is_silent(self):
        assert not fires("import time\ndeadline = time.time() + 5\n",
                         "D102")


# ---------------------------------------------------------------------
# D103 — bare set iteration
# ---------------------------------------------------------------------


class TestBareSetIteration:
    def test_for_loop_fires(self):
        assert fires("for x in {1, 2, 3}:\n    emit(x)\n", "D103")

    def test_list_call_fires(self):
        assert fires("order = list({'a', 'b'})\n", "D103")

    def test_join_fires(self):
        assert fires("s = ','.join(set(names))\n", "D103")

    def test_list_comprehension_fires(self):
        assert fires("out = [x for x in set(xs)]\n", "D103")

    def test_sorted_is_silent(self):
        assert not fires("for x in sorted({3, 1, 2}):\n    emit(x)\n",
                         "D103")

    def test_order_free_consumers_are_silent(self):
        good = ("n = len({1, 2})\n"
                "ok = any(x > 1 for x in {1, 2})\n"
                "everything = all(x for x in set(xs))\n"
                "m = max({4, 5})\n")
        assert not fires(good, "D103")

    def test_set_comprehension_is_silent(self):
        assert not fires("keys = {k for k in set(xs)}\n", "D103")

    def test_membership_is_silent(self):
        assert not fires("ok = x in {1, 2, 3}\n", "D103")


# ---------------------------------------------------------------------
# D104 — unsorted directory listings
# ---------------------------------------------------------------------


class TestUnsortedListing:
    def test_listdir_for_loop_fires(self):
        assert fires("import os\nfor f in os.listdir(d):\n    run(f)\n",
                     "D104")

    def test_glob_comprehension_fires(self):
        assert fires(
            "from pathlib import Path\n"
            "units = [p for p in Path(d).glob('*.json')]\n", "D104")

    def test_iterdir_fires(self):
        assert fires("for entry in root.iterdir():\n    queue(entry)\n",
                     "D104")

    def test_glob_module_fires(self):
        assert fires("import glob\n"
                     "for name in glob.glob('*.rtrc'):\n    load(name)\n",
                     "D104")

    def test_list_materialization_fires(self):
        assert fires("pending = list(root.glob('*.json'))\n", "D104")

    def test_sorted_is_silent(self):
        assert not fires(
            "for f in sorted(root.glob('*.json')):\n    run(f)\n",
            "D104")

    def test_existence_checks_are_silent(self):
        good = ("drained = not any(root.glob('*.json'))\n"
                "count = len(set(root.glob('*.json')))\n"
                "names = {p.name for p in root.glob('*.json')}\n")
        assert not fires(good, "D104")


# ---------------------------------------------------------------------
# D105 — canonical JSON
# ---------------------------------------------------------------------


class TestUnsortedJson:
    def test_dumps_without_sort_keys_fires(self):
        assert fires("import json\ns = json.dumps(doc)\n", "D105")

    def test_dump_without_sort_keys_fires(self):
        assert fires("import json\njson.dump(doc, handle)\n", "D105")

    def test_sort_keys_false_fires(self):
        assert fires("import json\n"
                     "s = json.dumps(doc, sort_keys=False)\n", "D105")

    def test_from_import_fires(self):
        assert fires("from json import dumps\ns = dumps(doc)\n",
                     "D105")

    def test_sort_keys_true_is_silent(self):
        assert not fires(
            "import json\ns = json.dumps(doc, sort_keys=True)\n",
            "D105")

    def test_loads_is_silent(self):
        assert not fires("import json\nd = json.loads(text)\n",
                         "D105")


# ---------------------------------------------------------------------
# S201 — atomic writes in the protocol layer
# ---------------------------------------------------------------------


class TestNonAtomicWrite:
    MODULE = "repro.exec.fixture"

    def test_bare_open_write_fires(self):
        assert fires("def save(path, text):\n"
                     "    with open(path, 'w') as h:\n"
                     "        h.write(text)\n",
                     "S201", module=self.MODULE)

    def test_write_text_fires(self):
        assert fires("def save(result_path, text):\n"
                     "    result_path.write_text(text)\n",
                     "S201", module=self.MODULE)

    def test_append_mode_fires(self):
        assert fires("h = open(log_path, 'a')\n", "S201",
                     module=self.MODULE)

    def test_tmp_then_replace_is_silent(self):
        good = ("import os\n"
                "def save(path, text, tmp):\n"
                "    tmp.write_text(text)\n"
                "    os.replace(tmp, path)\n")
        assert not fires(good, "S201", module=self.MODULE)

    def test_read_mode_is_silent(self):
        assert not fires("text = open(path).read()\n"
                         "rb = open(path, 'rb').read()\n",
                         "S201", module=self.MODULE)

    def test_outside_protocol_layer_is_silent(self):
        # User-facing exports (CSV/JSON tables) may write directly.
        assert not fires("def export(path, text):\n"
                         "    path.write_text(text)\n",
                         "S201", module="repro.sweep.result")


# ---------------------------------------------------------------------
# S202 — paired codecs
# ---------------------------------------------------------------------


class TestOneWayCodec:
    def test_to_dict_without_from_dict_fires(self):
        assert fires("class C:\n"
                     "    def to_dict(self):\n"
                     "        return {}\n", "S202")

    def test_from_spec_without_to_spec_fires(self):
        assert fires("class C:\n"
                     "    @classmethod\n"
                     "    def from_spec(cls, spec):\n"
                     "        return cls()\n", "S202")

    def test_paired_codec_is_silent(self):
        good = ("class C:\n"
                "    def to_dict(self):\n"
                "        return {}\n"
                "    @classmethod\n"
                "    def from_dict(cls, data):\n"
                "        return cls()\n")
        assert not fires(good, "S202")

    def test_plain_class_is_silent(self):
        assert not fires("class C:\n"
                         "    def describe(self):\n"
                         "        return 'C'\n", "S202")


# ---------------------------------------------------------------------
# S203 — registered classes carry their name
# ---------------------------------------------------------------------

_REGISTRY_PREAMBLE = (
    "class _R:\n"
    "    def register(self, key, **kw):\n"
    "        def deco(cls):\n"
    "            return cls\n"
    "        return deco\n"
    "BACKENDS = _R()\n"
)


class TestRegisteredClassName:
    def test_missing_name_fires(self):
        assert fires(_REGISTRY_PREAMBLE +
                     "@BACKENDS.register('fast')\n"
                     "class FastBackend:\n"
                     "    pass\n", "S203")

    def test_mismatched_name_fires(self):
        assert fires(_REGISTRY_PREAMBLE +
                     "@BACKENDS.register('fast')\n"
                     "class FastBackend:\n"
                     "    name = 'slow'\n", "S203")

    def test_matching_name_is_silent(self):
        assert not fires(_REGISTRY_PREAMBLE +
                         "@BACKENDS.register('fast')\n"
                         "class FastBackend:\n"
                         "    name = 'fast'\n", "S203")

    def test_lowercase_registry_is_ignored(self):
        # Only ALL_CAPS module-level registries mark component
        # families; arbitrary .register() decorators don't.
        assert not fires("@app.register('route')\n"
                         "class Handler:\n"
                         "    pass\n", "S203")


# ---------------------------------------------------------------------
# X301 — float into Counter64
# ---------------------------------------------------------------------


class TestFloatIntoCounter:
    def test_division_into_increment_fires(self):
        assert fires("stats.major_cycles.increment(cycles / 2)\n",
                     "X301")

    def test_float_literal_constructor_fires(self):
        assert fires("c = Counter64(1.5)\n", "X301")

    def test_float_call_fires(self):
        assert fires("c.increment(float(raw))\n", "X301")

    def test_integer_arithmetic_is_silent(self):
        good = ("c.increment(cycles // 2)\n"
                "c.increment(int(raw))\n"
                "k = Counter64(total % (1 << 64))\n")
        assert not fires(good, "X301")


# ---------------------------------------------------------------------
# X304 — float weights into a weighted merge
# ---------------------------------------------------------------------


class TestFloatWeightsIntoMerge:
    def test_float_literal_weight_fires(self):
        assert fires("stats.merge(parts, weights=[0.5, 0.5])\n",
                     "X304")

    def test_division_weight_fires(self):
        assert fires(
            "m = base.merge(rest, weights=[w / total for w in ws])\n",
            "X304")

    def test_float_conversion_fires(self):
        assert fires(
            "base.merge(rest, weights=[float(w) for w in ws])\n",
            "X304")

    def test_integer_weights_are_silent(self):
        good = ("stats.merge(parts, weights=[1, 2, 3])\n"
                "base.merge(rest, weights=[int(w) for w in ws])\n"
                "base.merge(rest, weights=sizes)\n")
        assert not fires(good, "X304")

    def test_unweighted_merge_is_silent(self):
        assert not fires("stats.merge(parts, shards=prov)\n", "X304")

    def test_float_elsewhere_in_call_is_silent(self):
        # Only the weights keyword is counter-scaling; other float
        # arguments to some unrelated .merge() are not X304's business.
        assert not fires("frames.merge(other, alpha=0.5)\n", "X304")


# ---------------------------------------------------------------------
# X302 — merge completeness (project rule over the real sources)
# ---------------------------------------------------------------------


def _contexts(stats_source: str, shard_source: str):
    return [
        FileContext("stats.py", "repro.core.stats", stats_source),
        FileContext("shard.py", "repro.exec.shard", shard_source),
    ]


class TestMergeCompleteness:
    STATS = (SRC / "repro/core/stats.py").read_text()
    SHARD = (SRC / "repro/exec/shard.py").read_text()

    def test_real_sources_are_complete(self):
        findings = lint_contexts(
            _contexts(self.STATS, self.SHARD)).findings
        assert [f for f in findings if f.rule == "X302"] == []

    def test_unmergeable_new_field_fires(self):
        mutated = self.STATS.replace(
            "    shards: list | None = None",
            "    shards: list | None = None\n"
            "    run_label: str = \"\"")
        assert mutated != self.STATS, "anchor drifted"
        findings = [f for f in lint_contexts(
            _contexts(mutated, self.SHARD)).findings
            if f.rule == "X302"]
        assert len(findings) == 1
        assert "run_label" in findings[0].message

    def test_special_cased_field_is_covered(self):
        # "shards" is not a counter, but merge() names it -> silent.
        findings = [f for f in lint_contexts(
            _contexts(self.STATS, self.SHARD)).findings
            if f.rule == "X302" and "shards" in f.message]
        assert findings == []

    def test_exact_sum_entry_must_be_counter(self):
        mutated = self.SHARD.replace('"taken_branches",',
                                     '"ifq_occupancy",')
        assert mutated != self.SHARD, "anchor drifted"
        findings = [f for f in lint_contexts(
            _contexts(self.STATS, mutated)).findings
            if f.rule == "X302"]
        assert len(findings) == 1
        assert "ifq_occupancy" in findings[0].message

    def test_unknown_exact_sum_entry_fires(self):
        mutated = self.SHARD.replace('"taken_branches",',
                                     '"no_such_counter",')
        findings = [f for f in lint_contexts(
            _contexts(self.STATS, mutated)).findings
            if f.rule == "X302"]
        assert len(findings) == 1


# ---------------------------------------------------------------------
# X303 — specialized-engine counter coverage (project rule)
# ---------------------------------------------------------------------


def _specialize_contexts(stats_source: str, specialize_source: str):
    return [
        FileContext("stats.py", "repro.core.stats", stats_source),
        FileContext("specialize.py", "repro.core.specialize",
                    specialize_source),
    ]


class TestSpecializedCounterCoverage:
    STATS = (SRC / "repro/core/stats.py").read_text()
    SPECIALIZE = (SRC / "repro/core/specialize.py").read_text()

    def test_real_sources_are_complete(self):
        findings = lint_contexts(
            _specialize_contexts(self.STATS, self.SPECIALIZE)).findings
        assert [f for f in findings if f.rule == "X303"] == []

    def test_missing_raw_counter_fires(self):
        mutated = self.SPECIALIZE.replace('"taken_branches",', '')
        assert mutated != self.SPECIALIZE, "anchor drifted"
        findings = [f for f in lint_contexts(
            _specialize_contexts(self.STATS, mutated)).findings
            if f.rule == "X303"]
        assert len(findings) == 1
        assert "taken_branches" in findings[0].message

    def test_non_counter_raw_entry_fires(self):
        mutated = self.SPECIALIZE.replace('"taken_branches",',
                                          '"ifq_occupancy",')
        findings = [f for f in lint_contexts(
            _specialize_contexts(self.STATS, mutated)).findings
            if f.rule == "X303"]
        # ifq_occupancy is a sampler, and taken_branches went missing.
        assert len(findings) == 2

    def test_subset_without_specialize_is_silent(self):
        findings = lint_contexts([
            FileContext("stats.py", "repro.core.stats", self.STATS),
        ]).findings
        assert [f for f in findings if f.rule == "X303"] == []


# ---------------------------------------------------------------------
# Suppression mechanics
# ---------------------------------------------------------------------


class TestSuppressions:
    BAD = "import json\ns = json.dumps(doc)"

    def test_justified_trailing_suppression_silences(self):
        source = (self.BAD +
                  "  # resim-lint: disable=D105 -- fixture exception\n")
        assert rules_of(lint_source(source)) == []

    def test_justified_preceding_line_suppression_silences(self):
        source = ("import json\n"
                  "# resim-lint: disable=D105 -- fixture exception\n"
                  "s = json.dumps(doc)\n")
        assert rules_of(lint_source(source)) == []

    def test_multiline_justification_silences(self):
        source = ("import json\n"
                  "# resim-lint: disable=D105 -- a justification\n"
                  "# that wraps over two comment lines\n"
                  "s = json.dumps(doc)\n")
        assert rules_of(lint_source(source)) == []

    def test_unjustified_suppression_is_its_own_finding(self):
        source = self.BAD + "  # resim-lint: disable=D105\n"
        got = rules_of(lint_source(source))
        assert "L001" in got      # the naked disable comment
        assert "D105" in got      # and it silences nothing

    def test_unused_suppression_is_flagged(self):
        source = ("x = 1  # resim-lint: disable=D105 -- "
                  "stale suppression kept by accident\n")
        assert rules_of(lint_source(source)) == ["L002"]

    def test_wrong_rule_id_does_not_silence(self):
        source = (self.BAD +
                  "  # resim-lint: disable=D101 -- wrong rule\n")
        got = rules_of(lint_source(source))
        assert "D105" in got and "L002" in got

    def test_multiple_rules_in_one_comment(self):
        source = ("import json, time\n"
                  "# resim-lint: disable=D105,D102 -- fixture checks "
                  "both families on one line\n"
                  "payload = {'at': json.dumps({'t': time.time()})}\n")
        assert rules_of(lint_source(source)) == []

    def test_select_disables_unused_reporting(self):
        source = (self.BAD +
                  "  # resim-lint: disable=D105 -- justified\n")
        findings = lint_source(source, select={"D101"})
        assert rules_of(findings) == []


# ---------------------------------------------------------------------
# Framework plumbing
# ---------------------------------------------------------------------


class TestFramework:
    def test_module_name_for_repo_layout(self):
        assert module_name_for(
            Path("src/repro/exec/queue.py")) == "repro.exec.queue"
        assert module_name_for(
            Path("/abs/src/repro/core/stats.py")) == "repro.core.stats"
        assert module_name_for(
            Path("src/repro/exec/__init__.py")) == "repro.exec"
        assert module_name_for(Path("scratch.py")) == "scratch"

    def test_rule_registry_is_populated_and_documented(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        for family in ("D101", "D102", "D103", "D104", "D105",
                       "S201", "S202", "S203", "X301", "X302",
                       "X303", "X304"):
            assert family in ids
        for rule in rules:
            assert rule.title, rule.id
            assert rule.rationale, rule.id

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([bad])
        assert rules_of(report.findings) == ["E999"]

    def test_report_json_shape(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text("import json\ns = json.dumps(d)\n")
        report = lint_paths([tmp_path])
        payload = report.to_dict()
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"D105": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "D105"
        assert finding["line"] == 2

    def test_findings_sorted_by_location(self, tmp_path):
        target = tmp_path / "two.py"
        target.write_text("import json\n"
                          "a = json.dumps(d)\n"
                          "b = json.dumps(d)\n")
        report = lint_paths([target])
        assert [f.line for f in report.findings] == [2, 3]


# ---------------------------------------------------------------------
# The gate: the repository lints clean
# ---------------------------------------------------------------------


class TestSelfRun:
    def test_src_has_zero_unsuppressed_findings(self):
        report = lint_paths([SRC])
        assert report.clean, "\n".join(
            finding.render() for finding in report.findings)
        assert report.files_checked > 50

    def test_every_suppression_in_src_is_justified_and_used(self):
        # lint_paths already turns unjustified (L001) or unused
        # (L002) suppressions into findings; count the honored ones
        # so a suppression sneaking in shows up in review.
        report = lint_paths([SRC])
        assert report.suppressions_honored == 2

    def test_linter_package_lints_itself(self):
        report = lint_paths([REPO_ROOT / "tools" / "lint"])
        assert report.clean, "\n".join(
            finding.render() for finding in report.findings)


# ---------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "bad.py").write_text("import json\n"
                                     "s = json.dumps(doc)\n")
    return tmp_path


class TestEntryPoints:
    def _run_module(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "tools.lint", *argv],
            capture_output=True, text=True, cwd=REPO_ROOT)

    def test_python_dash_m_clean_exit_zero(self):
        proc = self._run_module(str(SRC))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_python_dash_m_findings_exit_one(self, dirty_tree):
        proc = self._run_module(str(dirty_tree))
        assert proc.returncode == 1
        assert "D105" in proc.stdout

    def test_json_format(self, dirty_tree):
        proc = self._run_module(str(dirty_tree), "--format", "json")
        payload = json.loads(proc.stdout)
        assert payload["counts"] == {"D105": 1}

    def test_unknown_rule_select_exits_two(self):
        proc = self._run_module("--select", "Z999")
        assert proc.returncode == 2

    def test_missing_path_exits_two(self):
        proc = self._run_module("definitely/not/here")
        assert proc.returncode == 2

    def test_resim_lint_subcommand(self, dirty_tree):
        from repro.cli import main
        assert main(["lint", str(SRC)]) == 0
        assert main(["lint", str(dirty_tree)]) == 1

    def test_resim_lint_list_rules(self, capsys):
        from repro.cli import main
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "D101" in out and "X302" in out
