"""Tests for the extension packages: trace files, streaming
co-simulation, multi-core, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.bpred.unit import PAPER_PREDICTOR, PredictorConfig
from repro.cli import main as cli_main
from repro.core import PAPER_4WIDE_PERFECT
from repro.cosim import OnTheFlyCosimulation
from repro.fpga.device import VIRTEX4_LX40, VIRTEX4_LX100, VIRTEX5_LX50T
from repro.multicore import MultiCoreSimulator, TraceChannel
from repro.trace.fileio import (
    TraceFileError,
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.workloads import SyntheticWorkload, get_profile, kernel_program


@pytest.fixture(scope="module")
def gzip_trace():
    workload = SyntheticWorkload(get_profile("gzip"), seed=7)
    return workload.generate(3000)


class TestTraceFile:
    def test_roundtrip(self, gzip_trace, tmp_path):
        path = tmp_path / "gzip.rst"
        write_trace_file(path, gzip_trace.records,
                         predictor=PAPER_PREDICTOR,
                         benchmark="gzip", seed=7)
        header, records = read_trace_file(path)
        assert records == gzip_trace.records
        assert header.record_count == len(gzip_trace.records)
        assert header.metadata["benchmark"] == "gzip"
        assert header.metadata["seed"] == 7

    def test_predictor_config_survives(self, gzip_trace, tmp_path):
        path = tmp_path / "t.rst"
        custom = PredictorConfig(scheme="gshare", l2_size=8192,
                                 ras_depth=32)
        write_trace_file(path, gzip_trace.records, predictor=custom)
        assert read_trace_header(path).predictor_config == custom

    def test_no_predictor_metadata(self, gzip_trace, tmp_path):
        path = tmp_path / "t.rst"
        write_trace_file(path, gzip_trace.records)
        assert read_trace_header(path).predictor_config is None

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rst"
        write_trace_file(path, [])
        header, records = read_trace_file(path)
        assert records == []
        assert header.record_count == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rst"
        path.write_bytes(b"NOTATRACE" + bytes(64))
        with pytest.raises(TraceFileError, match="magic"):
            read_trace_file(path)

    def test_truncated_payload_rejected(self, gzip_trace, tmp_path):
        path = tmp_path / "trunc.rst"
        write_trace_file(path, gzip_trace.records)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFileError):
            read_trace_file(path)

    def test_unsupported_version_rejected(self, gzip_trace, tmp_path):
        path = tmp_path / "v99.rst"
        write_trace_file(path, gzip_trace.records[:10])
        data = bytearray(path.read_bytes())
        data[8:10] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFileError, match="version"):
            read_trace_file(path)


class TestStreamingCosim:
    def test_timing_transparency(self):
        """Chunked delivery must be cycle-identical to offline runs."""
        cosim = OnTheFlyCosimulation(PAPER_4WIDE_PERFECT, VIRTEX5_LX50T,
                                     chunk_records=64)
        result = cosim.run(kernel_program("bubble_sort"))
        assert result.timing_transparent
        assert result.chunks > 10

    @pytest.mark.parametrize("chunk", [16, 128, 4096])
    def test_chunk_size_does_not_change_timing(self, chunk):
        cosim = OnTheFlyCosimulation(PAPER_4WIDE_PERFECT, VIRTEX5_LX50T,
                                     chunk_records=chunk)
        result = cosim.run(kernel_program("strsearch"))
        assert result.timing_transparent

    def test_bottleneck_identification(self):
        slow_link = OnTheFlyCosimulation(
            PAPER_4WIDE_PERFECT, VIRTEX5_LX50T,
            link_gbps=0.0001, chunk_records=64,
        )
        result = slow_link.run(kernel_program("vecsum"))
        assert result.rates.bottleneck == "transfer"
        assert result.rates.pipeline_rate == result.rates.transfer

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnTheFlyCosimulation(PAPER_4WIDE_PERFECT, VIRTEX5_LX50T,
                                 link_gbps=0)
        with pytest.raises(ValueError):
            OnTheFlyCosimulation(PAPER_4WIDE_PERFECT, VIRTEX5_LX50T,
                                 chunk_records=0)

    def test_summary_renders(self):
        cosim = OnTheFlyCosimulation(PAPER_4WIDE_PERFECT, VIRTEX5_LX50T)
        result = cosim.run(kernel_program("checksum"))
        assert "bottleneck" in result.summary()


class TestMultiCore:
    def test_placement_limits(self):
        small = MultiCoreSimulator(PAPER_4WIDE_PERFECT, VIRTEX4_LX40)
        large = MultiCoreSimulator(PAPER_4WIDE_PERFECT, VIRTEX4_LX100)
        assert small.max_instances == 1
        assert large.max_instances == 4

    def test_too_many_cores_rejected(self):
        simulator = MultiCoreSimulator(PAPER_4WIDE_PERFECT, VIRTEX4_LX40)
        with pytest.raises(ValueError, match="fit"):
            simulator.run(["gzip", "bzip2"], budget=1000)

    def test_aggregate_throughput(self):
        simulator = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                       VIRTEX4_LX100,
                                       TraceChannel(100.0))
        result = simulator.run(["gzip", "vpr"], budget=3000)
        assert result.instances == 2
        assert not result.bandwidth_limited
        assert result.aggregate_mips == pytest.approx(
            sum(core.report.mips for core in result.cores)
        )

    def test_channel_saturation_throttles(self):
        wide_open = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                       VIRTEX4_LX100,
                                       TraceChannel(100.0))
        starved = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                     VIRTEX4_LX100,
                                     TraceChannel(0.5))
        free = wide_open.run(["gzip", "bzip2"], budget=3000)
        capped = starved.run(["gzip", "bzip2"], budget=3000)
        assert capped.bandwidth_limited
        assert capped.aggregate_mips < free.aggregate_mips
        assert capped.service_fraction == pytest.approx(
            0.5 / capped.aggregate_demand_gbps
        )

    def test_scaling_study_monotone_until_saturation(self):
        simulator = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                       VIRTEX4_LX100,
                                       TraceChannel(6.4))
        results = simulator.scaling_study(["gzip", "vpr"], budget=2500)
        assert len(results) == 4
        unconstrained = [r.aggregate_mips_unconstrained for r in results]
        assert unconstrained == sorted(unconstrained)

    def test_channel_validation(self):
        with pytest.raises(ValueError):
            TraceChannel(0)

    def test_summary_renders(self):
        simulator = MultiCoreSimulator(PAPER_4WIDE_PERFECT,
                                       VIRTEX4_LX100)
        result = simulator.run(["gzip"], budget=2000)
        assert "instance" in result.summary()


class TestCli:
    def test_trace_and_simulate_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "k.rst"
        assert cli_main(["trace", "vecsum", str(trace_path),
                         "--budget", "2000"]) == 0
        assert trace_path.exists()
        assert cli_main(["simulate", "--trace-file",
                         str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "MIPS" in output
        assert "major cycles" in output

    def test_simulate_synthetic(self, capsys):
        assert cli_main(["simulate", "gzip", "--budget", "2000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["simulate", "doom", "--budget", "100"])

    def test_area_command(self, capsys):
        assert cli_main(["area", "--with-caches"]) == 0
        output = capsys.readouterr().out
        assert "BRAMs" in output

    def test_vhdl_command(self, tmp_path, capsys):
        assert cli_main(["vhdl", str(tmp_path / "rtl")]) == 0
        files = list((tmp_path / "rtl").glob("*.vhd"))
        assert len(files) == 4

    def test_multicore_command(self, capsys):
        assert cli_main(["multicore", "gzip", "--budget", "1500",
                         "--device", "xc4vlx100"]) == 0
        assert "instance" in capsys.readouterr().out

    def test_unknown_config(self):
        with pytest.raises(SystemExit):
            cli_main(["simulate", "gzip", "--config", "zen5"])
