"""Tests for the FPGA substrate: devices, area model, timing, VHDL."""

from dataclasses import replace

import pytest

from repro.bpred.unit import PAPER_PREDICTOR, PredictorConfig
from repro.core.config import PAPER_4WIDE_PERFECT
from repro.fpga import (
    AreaEstimator,
    DEVICES,
    FrequencyModel,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
    generate_branch_predictor_vhdl,
    parallel_fetch_ablation,
)
from repro.fpga.vhdlgen import (
    generate_btb_vhdl,
    generate_direction_vhdl,
    generate_ras_vhdl,
)

#: 4-wide configuration with caches present — the Table 4 design.
TABLE4_CONFIG = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)

#: Paper Table 4 percentages (slices / LUTs) per component.
PAPER_SLICE_PCT = {"fetch": 25, "dispatch": 9, "issue": 5, "lsq": 14,
                   "writeback": 3, "commit": 2, "rename": 3, "rob": 13,
                   "lsq_store": 6, "bpred": 2, "dcache": 17, "icache": 1}
PAPER_LUT_PCT = {"fetch": 23, "dispatch": 5, "issue": 7, "lsq": 19,
                 "writeback": 4, "commit": 2, "rename": 4, "rob": 14,
                 "lsq_store": 4, "bpred": 2, "dcache": 15, "icache": 1}


class TestDevices:
    def test_paper_frequencies(self):
        assert VIRTEX4_LX40.minor_cycle_mhz == 84.0
        assert VIRTEX5_LX50T.minor_cycle_mhz == 105.0
        assert VIRTEX4_LX40.measured and VIRTEX5_LX50T.measured

    def test_registry(self):
        assert DEVICES["xc4vlx40"] is VIRTEX4_LX40
        assert len(DEVICES) >= 4

    def test_utilization(self):
        assert VIRTEX4_LX40.utilization(VIRTEX4_LX40.slices) == 1.0

    def test_instances_fit(self):
        assert VIRTEX4_LX40.instances_fit(12_273, 7) == 1
        assert DEVICES["xc4vlx100"].instances_fit(12_273, 7) == 4

    def test_instances_fit_invalid(self):
        with pytest.raises(ValueError):
            VIRTEX4_LX40.instances_fit(0, 1)


class TestAreaModel:
    def test_totals_match_table4(self):
        """Calibration anchor: the 4-wide design reproduces the paper's
        reported totals within 2 %."""
        report = AreaEstimator(TABLE4_CONFIG).estimate()
        assert report.total_slices == pytest.approx(12_273, rel=0.02)
        assert report.total_luts == pytest.approx(17_175, rel=0.02)
        assert report.total_brams == 7

    def test_percentages_match_table4(self):
        report = AreaEstimator(TABLE4_CONFIG).estimate()
        for component, expected in PAPER_SLICE_PCT.items():
            measured = report.percentage(component, "slices")
            assert measured == pytest.approx(expected, abs=1.5), component
        for component, expected in PAPER_LUT_PCT.items():
            measured = report.percentage(component, "luts")
            assert measured == pytest.approx(expected, abs=1.5), component

    def test_bram_split(self):
        """BP holds ~71% of BRAMs, the I-cache tags the rest."""
        report = AreaEstimator(TABLE4_CONFIG).estimate()
        assert report.stage("bpred").brams == 5
        assert report.stage("icache").brams == 2
        assert report.stage("dcache").brams == 0  # distributed RAM tags

    def test_fetch_is_largest_stage(self):
        report = AreaEstimator(TABLE4_CONFIG).estimate()
        fetch = report.stage("fetch").slices
        for stage in report.stages:
            if stage.component != "fetch":
                assert stage.slices <= fetch

    def test_rob_scaling(self):
        small = AreaEstimator(replace(TABLE4_CONFIG, rob_entries=16))
        large = AreaEstimator(replace(TABLE4_CONFIG, rob_entries=32))
        ratio = (large.estimate().stage("rob").luts
                 / small.estimate().stage("rob").luts)
        assert 1.7 < ratio < 2.1  # dominated by the per-entry term

    def test_pht_growth_crosses_bram_boundary(self):
        base = PredictorConfig()
        bigger = PredictorConfig(l2_size=65_536)
        small = AreaEstimator(replace(TABLE4_CONFIG, predictor=base))
        large = AreaEstimator(replace(TABLE4_CONFIG, predictor=bigger))
        assert (large.estimate().stage("bpred").brams
                > small.estimate().stage("bpred").brams)

    def test_perfect_memory_drops_cache_area(self):
        report = AreaEstimator(PAPER_4WIDE_PERFECT).estimate()
        assert report.stage("dcache").luts == 0
        assert report.stage("icache").brams == 0

    def test_render_matches_table_format(self):
        text = AreaEstimator(TABLE4_CONFIG).estimate().render()
        assert "BRAMs" in text and "xc4vlx40" in text

    def test_unknown_component_raises(self):
        report = AreaEstimator(TABLE4_CONFIG).estimate()
        with pytest.raises(KeyError):
            report.stage("alu0")


class TestTiming:
    def test_major_cycle_rate(self):
        model = FrequencyModel(VIRTEX5_LX50T)
        assert model.major_cycle_mhz(7) == pytest.approx(15.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            FrequencyModel(VIRTEX4_LX40).major_cycle_mhz(0)

    def test_simulated_seconds(self):
        model = FrequencyModel(VIRTEX4_LX40)
        # 84e6 minor cycles at 84 MHz = 1 second.
        assert model.simulated_seconds(12_000_000, 7) == pytest.approx(1.0)

    def test_parallel_fetch_ablation_matches_paper(self):
        """Section IV: 4-wide parallel fetch is 4x the cost and 22%
        slower than serial."""
        ablation = parallel_fetch_ablation(4, 4700, VIRTEX4_LX40)
        assert ablation.area_ratio == pytest.approx(4.0)
        assert ablation.slowdown == pytest.approx(0.22, abs=0.001)

    def test_ablation_scales_with_width(self):
        two = parallel_fetch_ablation(2, 4700, VIRTEX4_LX40)
        eight = parallel_fetch_ablation(8, 4700, VIRTEX4_LX40)
        assert two.slowdown < eight.slowdown
        assert eight.area_ratio == pytest.approx(8.0)

    def test_serial_width_one_no_penalty(self):
        ablation = parallel_fetch_ablation(1, 4700, VIRTEX4_LX40)
        assert ablation.slowdown == 0.0


class TestVhdlGeneration:
    def test_full_unit_entities(self):
        sources = generate_branch_predictor_vhdl(PAPER_PREDICTOR)
        assert set(sources) == {"direction_predictor",
                                "branch_target_buffer",
                                "return_address_stack",
                                "branch_predictor_unit"}

    def test_parameters_baked_into_generics(self):
        sources = generate_branch_predictor_vhdl(PAPER_PREDICTOR)
        direction = sources["direction_predictor"]
        assert "L1_SIZE        : natural := 4" in direction
        assert "HISTORY_LENGTH : natural := 8" in direction
        assert "L2_SIZE        : natural := 4096" in direction
        btb = sources["branch_target_buffer"]
        assert "ENTRIES : natural := 512" in btb
        ras = sources["return_address_stack"]
        assert "DEPTH : natural := 16" in ras

    def test_custom_parameters_propagate(self):
        config = PredictorConfig(l2_size=8192, ras_depth=32,
                                 btb_entries=1024)
        sources = generate_branch_predictor_vhdl(config)
        assert "L2_SIZE        : natural := 8192" in \
            sources["direction_predictor"]
        assert "ENTRIES : natural := 1024" in \
            sources["branch_target_buffer"]
        assert "DEPTH : natural := 32" in \
            sources["return_address_stack"]

    def test_every_entity_is_structurally_complete(self):
        sources = generate_branch_predictor_vhdl(PAPER_PREDICTOR)
        for name, source in sources.items():
            assert f"entity {name} is" in source, name
            assert f"end entity {name};" in source, name
            assert "architecture" in source, name
            assert source.count("library ieee;") == 1, name

    def test_wrapper_instantiates_components(self):
        wrapper = generate_branch_predictor_vhdl(
            PAPER_PREDICTOR)["branch_predictor_unit"]
        assert "entity work.direction_predictor" in wrapper
        assert "entity work.branch_target_buffer" in wrapper
        assert "entity work.return_address_stack" in wrapper

    def test_perfect_predictor_rejected(self):
        with pytest.raises(ValueError):
            generate_branch_predictor_vhdl(PredictorConfig(scheme="perfect"))

    @pytest.mark.parametrize("generator", [generate_direction_vhdl,
                                           generate_btb_vhdl,
                                           generate_ras_vhdl])
    def test_individual_generators(self, generator):
        source = generator(PAPER_PREDICTOR)
        assert "rising_edge(clk)" in source
