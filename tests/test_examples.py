"""Smoke tests: every bundled example must run end to end.

Examples are the public face of the library; these tests run each one
as a subprocess (tiny budgets) and check for the landmarks a user
should see.  Failures here usually mean an API drift that unit tests
missed.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "=== functional run ===" in output
    assert "2870" in output          # sum of squares 1..20
    assert "MIPS simulation throughput" in output


def test_pipeline_diagrams():
    output = run_example("pipeline_diagrams.py")
    assert "Figure 2" in output
    assert "Figure 4" in output
    assert "optimized vs simple speedup" in output
    assert "1.57" in output          # (2N+3)/(N+3) at N=4


def test_reproduce_tables_small_budget():
    output = run_example("reproduce_tables.py", "table4",
                         "--budget", "1000")
    assert "Area breakdown" in output
    assert "paper totals" in output


def test_reproduce_tables_selects_subset():
    output = run_example("reproduce_tables.py", "table2",
                         "--budget", "2000")
    assert "PTLsim" in output
    assert "ReSim" in output


def test_design_space():
    output = run_example("design_space.py", "--budget", "1500")
    assert "predictor sweep" in output
    assert "reorder-buffer sweep" in output
    assert "width sweep" in output


def test_design_space_writes_vhdl(tmp_path):
    run_example("design_space.py", "--budget", "1000",
                "--vhdl-dir", str(tmp_path))
    assert (tmp_path / "branch_predictor_unit.vhd").exists()


def test_kernel_trace_study():
    output = run_example("kernel_trace_study.py")
    assert "vecsum" in output
    assert "2016" in output          # golden vecsum output
    assert "fibonacci" in output


def test_sweep_quickstart(tmp_path):
    results_dir = tmp_path / "sweep"
    output = run_example("sweep_quickstart.py", "--budget", "1500",
                         "--workers", "2",
                         "--results-dir", str(results_dir))
    assert "sweeping 16 design points" in output
    assert "vs. published simulators" in output
    assert (results_dir / "sweep.csv").exists()
    # Second run resumes entirely from checkpoints.
    output = run_example("sweep_quickstart.py", "--budget", "1500",
                         "--workers", "2",
                         "--results-dir", str(results_dir))
    assert "resumed 16/16 points" in output


def test_multicore_scaling():
    output = run_example("multicore_scaling.py", "--budget", "2000")
    assert "Gigabit Ethernet" in output
    assert "saturated" in output
    assert "HyperTransport" in output


def test_cli_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "simulate", "gzip",
         "--budget", "1500"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "MIPS" in result.stdout


def test_adaptive_search():
    output = run_example("adaptive_search.py", "--budget", "1500")
    assert "== hill-climb ==" in output
    assert "trajectory:" in output
    assert "== full grid (ground truth) ==" in output
    assert "from optimal" in output


def test_sharded_sweep():
    output = run_example("sharded_sweep.py", "--budget", "1500",
                         "--shards", "2", "--workers", "2")
    assert "== monolithic reference" in output
    assert "2 points x 2 shards" in output
    assert "exact-sum counters verified" in output
    assert "identical" in output
