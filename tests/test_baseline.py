"""Unit tests for the dataflow-scheduling baseline simulator."""

import pytest

from repro.baseline import OutOrderBaseline
from repro.bpred.unit import PERFECT_PREDICTOR
from repro.core.config import ProcessorConfig
from repro.isa.opcodes import BranchKind, FuClass
from repro.trace.record import BranchRecord, MemoryRecord, OtherRecord

CONFIG = ProcessorConfig(predictor=PERFECT_PREDICTOR)


def alu(dest=1, src1=0):
    return OtherRecord(fu=FuClass.ALU, dest=dest, src1=src1)


class TestBaselineBasics:
    def test_empty_trace(self):
        result = OutOrderBaseline(CONFIG).run([])
        assert result.cycles == 0
        assert result.ipc == 0.0

    def test_counts_instructions(self):
        result = OutOrderBaseline(CONFIG).run([alu()] * 10)
        assert result.instructions == 10

    def test_wrong_path_not_counted(self):
        trace = [alu(), OtherRecord(tag=True), alu()]
        result = OutOrderBaseline(CONFIG).run(trace)
        assert result.instructions == 2

    def test_dependence_chain_serializes(self):
        independent = [alu(dest=r) for r in range(1, 9)]
        chain = [alu(dest=1)] + [alu(dest=r, src1=r - 1)
                                 for r in range(2, 9)]
        base = OutOrderBaseline(CONFIG)
        assert base.run(chain).cycles > base.run(independent).cycles

    def test_divider_hazard(self):
        divide = OtherRecord(fu=FuClass.DIV, src1=1, src2=2)
        one = OutOrderBaseline(CONFIG).run([divide]).cycles
        two = OutOrderBaseline(CONFIG).run([divide, divide]).cycles
        assert two >= one + 9

    def test_width_scales_throughput(self):
        trace = [alu(dest=(i % 30) + 1) for i in range(200)]
        narrow = OutOrderBaseline(CONFIG.with_width(1)).run(trace)
        wide = OutOrderBaseline(CONFIG.with_width(4)).run(trace)
        assert wide.ipc > 2 * narrow.ipc
        assert narrow.ipc <= 1.0 + 1e-9

    def test_rob_window_limits_ilp(self):
        import dataclasses
        divide = OtherRecord(fu=FuClass.DIV, src1=1, src2=2)
        trace = [divide] + [alu(dest=(i % 30) + 1) for i in range(64)]
        small = dataclasses.replace(CONFIG, rob_entries=4)
        assert (OutOrderBaseline(small).run(trace).cycles
                > OutOrderBaseline(CONFIG).run(trace).cycles)

    def test_mispredict_stalls_fetch(self):
        taken = BranchRecord(fu=FuClass.BRANCH, branch_kind=BranchKind.COND,
                             taken=True, target=0x400000)
        clean = [taken] + [alu(dest=r) for r in range(1, 9)]
        dirty = ([taken] + [OtherRecord(tag=True)] * 8
                 + [alu(dest=r) for r in range(1, 9)])
        base = OutOrderBaseline(CONFIG)
        clean_result = base.run(clean)
        dirty_result = OutOrderBaseline(CONFIG).run(dirty)
        assert dirty_result.mispredictions == 1
        assert dirty_result.cycles > clean_result.cycles

    def test_dcache_misses_counted(self):
        import dataclasses
        cached = dataclasses.replace(CONFIG, perfect_memory=False)
        loads = [MemoryRecord(fu=FuClass.LOAD, dest=1, address=0x1000),
                 MemoryRecord(fu=FuClass.LOAD, dest=2, address=0x1000)]
        result = OutOrderBaseline(cached).run(loads)
        assert result.dcache_misses == 1
