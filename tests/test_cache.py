"""Tests for the tag-only cache models and the memory system façade."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import (
    Cache,
    CacheConfig,
    FifoPolicy,
    LruPolicy,
    MemorySystem,
    PerfectMemory,
    RandomPolicy,
    make_policy,
)


class TestCacheConfig:
    def test_paper_default_geometry(self):
        config = CacheConfig()
        assert config.size_bytes == 32 * 1024
        assert config.assoc == 8
        assert config.block_bytes == 64
        assert config.sets == 64

    def test_tag_bits(self):
        config = CacheConfig()
        # 32 - 6 (offset) - 6 (index) = 20 tag bits
        assert config.tag_bits == 20

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)  # not multiple of block*assoc
        with pytest.raises(ValueError):
            CacheConfig(block_bytes=48)   # not a power of two
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=0)

    def test_describe(self):
        assert "32KB" in CacheConfig().describe()


class TestCacheBehaviour:
    def _small_cache(self, assoc=2, policy="lru") -> Cache:
        return Cache(CacheConfig(name="t", size_bytes=1024, block_bytes=64,
                                 assoc=assoc, replacement=policy))

    def test_cold_miss_then_hit(self):
        cache = self._small_cache()
        hit, __ = cache.access(0x1000)
        assert not hit
        hit, __ = cache.access(0x1000)
        assert hit

    def test_same_block_hits(self):
        cache = self._small_cache()
        cache.access(0x1000)
        hit, __ = cache.access(0x103F)  # same 64-byte block
        assert hit

    def test_probe_has_no_side_effects(self):
        cache = self._small_cache()
        assert not cache.probe(0x1000)
        assert cache.stats.accesses == 0
        cache.access(0x1000)
        assert cache.probe(0x1000)

    def test_lru_eviction_order(self):
        cache = self._small_cache(assoc=2)  # 8 sets
        set_stride = 8 * 64  # same set
        cache.access(0x0000)
        cache.access(0x0000 + set_stride)
        cache.access(0x0000)  # refresh first
        cache.access(0x0000 + 2 * set_stride)  # evicts LRU (second)
        assert cache.probe(0x0000)
        assert not cache.probe(0x0000 + set_stride)

    def test_dirty_eviction_reports_writeback(self):
        cache = self._small_cache(assoc=1)  # direct mapped, 16 sets
        set_stride = 16 * 64
        cache.access(0x0000, is_write=True)
        __, writeback = cache.access(0x0000 + set_stride)
        assert writeback
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = self._small_cache(assoc=1)
        set_stride = 16 * 64
        cache.access(0x0000)
        __, writeback = cache.access(0x0000 + set_stride)
        assert not writeback

    def test_write_hit_sets_dirty(self):
        cache = self._small_cache(assoc=1)
        set_stride = 16 * 64
        cache.access(0x0000)               # clean fill
        cache.access(0x0000, is_write=True)  # dirty on hit
        __, writeback = cache.access(0x0000 + set_stride)
        assert writeback

    def test_flush_counts_dirty_lines(self):
        cache = self._small_cache()
        cache.access(0x0000, is_write=True)
        cache.access(0x1000)
        assert cache.flush() == 1
        assert not cache.probe(0x0000)

    def test_miss_rate(self):
        cache = self._small_cache()
        cache.access(0x0000)
        cache.access(0x0000)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_working_set_within_capacity_all_hits(self):
        cache = self._small_cache(assoc=2)
        blocks = [i * 64 for i in range(16)]  # exactly capacity
        for address in blocks:
            cache.access(address)
        for address in blocks:
            hit, __ = cache.access(address)
            assert hit


class TestReplacementPolicies:
    def test_factory_names(self):
        assert isinstance(make_policy("lru", 4, 2), LruPolicy)
        assert isinstance(make_policy("f", 4, 2), FifoPolicy)
        assert isinstance(make_policy("random", 4, 2), RandomPolicy)
        with pytest.raises(ValueError):
            make_policy("mru", 4, 2)

    def test_fifo_ignores_hits(self):
        cache = Cache(CacheConfig(name="t", size_bytes=128, block_bytes=64,
                                  assoc=2, replacement="fifo"))
        cache.access(0x000)
        cache.access(0x080)   # one set: both ways full
        cache.access(0x000)   # hit; FIFO order unchanged
        cache.access(0x100)   # evicts 0x000 (first in)
        assert not cache.probe(0x000)
        assert cache.probe(0x080)

    def test_random_policy_deterministic_seed(self):
        a = RandomPolicy(4, 4, seed=1)
        b = RandomPolicy(4, 4, seed=1)
        assert [a.victim(0, 4) for _ in range(16)] == \
               [b.victim(0, 4) for _ in range(16)]


class TestMemorySystem:
    def test_perfect_memory_always_hits(self):
        memory = PerfectMemory()
        assert memory.ifetch(0x1234).hit
        assert memory.dread(0x1234).latency == 1
        assert memory.dwrite(0x1234).hit
        assert memory.is_perfect

    def test_miss_latency(self):
        memory = MemorySystem(memory_latency=18)
        first = memory.dread(0x4000)
        second = memory.dread(0x4000)
        assert not first.hit and first.latency == 19
        assert second.hit and second.latency == 1

    def test_split_caches_are_independent(self):
        memory = MemorySystem()
        memory.ifetch(0x4000)
        assert not memory.dread(0x4000).hit  # D-side cold

    def test_invalid_memory_latency(self):
        with pytest.raises(ValueError):
            MemorySystem(memory_latency=0)

    def test_describe(self):
        assert "memory 18 cycles" in MemorySystem().describe()


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=2**16 - 1),
    st.booleans(),
), max_size=300))
def test_cache_invariants_property(accesses):
    """Structural invariants hold under arbitrary access streams."""
    cache = Cache(CacheConfig(name="p", size_bytes=2048, block_bytes=64,
                              assoc=4))
    for address, is_write in accesses:
        cache.access(address, is_write)
        # Immediately re-probing must hit: the block was just filled.
        assert cache.probe(address)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses
    assert stats.writebacks <= stats.evictions
    resident = sum(
        1 for ways in cache._sets for frame in ways if frame is not None
    )
    assert resident <= 2048 // 64
    assert stats.misses >= resident  # every resident line was a miss once
