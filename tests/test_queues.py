"""Unit and property tests for the hardware-FIFO circular queue."""

from collections import deque

import pytest
from hypothesis import given, strategies as st

from repro.utils.queues import CircularQueue, QueueEmptyError, QueueFullError


class TestCircularQueue:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CircularQueue(0)

    def test_push_pop_fifo_order(self):
        queue = CircularQueue(4)
        for value in (1, 2, 3):
            queue.push(value)
        assert [queue.pop() for _ in range(3)] == [1, 2, 3]

    def test_full_raises_instead_of_dropping(self):
        queue = CircularQueue(2)
        queue.push("a")
        queue.push("b")
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.push("c")
        # Original contents untouched.
        assert list(queue) == ["a", "b"]

    def test_empty_pop_raises(self):
        queue = CircularQueue(1)
        with pytest.raises(QueueEmptyError):
            queue.pop()

    def test_wraparound(self):
        queue = CircularQueue(3)
        for value in (1, 2, 3):
            queue.push(value)
        queue.pop()
        queue.push(4)
        assert list(queue) == [2, 3, 4]

    def test_peek(self):
        queue = CircularQueue(3)
        queue.push(10)
        queue.push(20)
        assert queue.peek() == 10
        assert queue.peek(1) == 20
        assert len(queue) == 2  # peeking does not consume

    def test_peek_out_of_range(self):
        queue = CircularQueue(3)
        queue.push(1)
        with pytest.raises(IndexError):
            queue.peek(1)

    def test_free_slots(self):
        queue = CircularQueue(5)
        queue.push(1)
        assert queue.free_slots == 4

    def test_clear(self):
        queue = CircularQueue(3)
        queue.push(1)
        queue.clear()
        assert queue.is_empty
        queue.push(2)
        assert queue.pop() == 2

    def test_remove_from_tail(self):
        queue = CircularQueue(5)
        for value in range(5):
            queue.push(value)
        removed = queue.remove_from_tail(2)
        assert removed == [4, 3]  # youngest first
        assert list(queue) == [0, 1, 2]

    def test_remove_from_tail_all(self):
        queue = CircularQueue(3)
        queue.push(1)
        queue.push(2)
        assert queue.remove_from_tail(2) == [2, 1]
        assert queue.is_empty

    def test_remove_from_tail_too_many(self):
        queue = CircularQueue(3)
        queue.push(1)
        with pytest.raises(ValueError):
            queue.remove_from_tail(2)


@given(st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers()),
    st.tuples(st.just("pop"), st.integers()),
    st.tuples(st.just("squash"), st.integers(min_value=0, max_value=3)),
), max_size=200))
def test_matches_deque_model(operations):
    """The circular queue behaves like a bounded deque reference model."""
    capacity = 8
    queue = CircularQueue(capacity)
    model: deque = deque()
    for op, value in operations:
        if op == "push":
            if len(model) < capacity:
                queue.push(value)
                model.append(value)
            else:
                with pytest.raises(QueueFullError):
                    queue.push(value)
        elif op == "pop":
            if model:
                assert queue.pop() == model.popleft()
            else:
                with pytest.raises(QueueEmptyError):
                    queue.pop()
        else:  # squash from tail
            count = min(value, len(model))
            removed = queue.remove_from_tail(count)
            expected = [model.pop() for _ in range(count)]
            assert removed == expected
        assert len(queue) == len(model)
        assert list(queue) == list(model)
