"""Shape criteria for the reproduced experiments (DESIGN.md §3).

These are the checks that make EXPERIMENTS.md meaningful: with our
synthetic SPEC substitution the absolute MIPS are not expected to
match the paper, but who wins, by roughly what factor, and where the
crossovers fall must.  Budgets are kept small enough for CI; the
benchmark scripts rerun the same code paths at full size.
"""

import pytest

from dataclasses import replace

from repro.core import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT
from repro.fpga.area import AreaEstimator
from repro.perf.comparison import (
    FAST_AREA_BRAMS,
    FAST_AREA_SLICES,
    PUBLISHED_SIMULATORS,
    speedup_over,
)
from repro.perf.harness import average_mips, evaluate_suite

BUDGET = 20_000


@pytest.fixture(scope="module")
def rows_4wide():
    return evaluate_suite(PAPER_4WIDE_PERFECT, budget=BUDGET)


@pytest.fixture(scope="module")
def rows_2wide():
    return evaluate_suite(PAPER_2WIDE_CACHE, budget=BUDGET)


class TestTable1Shape:
    def test_v5_v4_ratio_exact(self, rows_4wide):
        """Criterion 1: V5/V4 = 105/84 per benchmark, exactly."""
        for row in rows_4wide:
            ratio = row.mips("xc5vlx50t") / row.mips("xc4vlx40")
            assert ratio == pytest.approx(105.0 / 84.0)

    def test_4wide_mips_in_paper_range(self, rows_4wide):
        """Average V5 throughput lands in the right decade and the
        right neighbourhood (paper: 28.67 MIPS average)."""
        average = average_mips(rows_4wide, "xc5vlx50t")
        assert 20.0 < average < 40.0

    def test_4wide_ordering(self, rows_4wide):
        """Criterion 2: bzip2 fastest; parser and vpr slowest pair."""
        mips = {row.benchmark: row.mips("xc5vlx50t")
                for row in rows_4wide}
        assert mips["bzip2"] == max(mips.values())
        slowest_two = sorted(mips, key=mips.__getitem__)[:2]
        assert set(slowest_two) == {"parser", "vpr"}

    def test_caches_reduce_throughput(self, rows_4wide, rows_2wide):
        """Criterion 3: the 2-issue cache configuration is slower for
        every benchmark."""
        four = {row.benchmark: row.mips("xc5vlx50t") for row in rows_4wide}
        two = {row.benchmark: row.mips("xc5vlx50t") for row in rows_2wide}
        for name in four:
            assert two[name] < four[name], name

    def test_2wide_gzip_fastest_bzip2_loses_most(self, rows_4wide,
                                                 rows_2wide):
        two = {row.benchmark: row.mips("xc5vlx50t") for row in rows_2wide}
        four = {row.benchmark: row.mips("xc5vlx50t") for row in rows_4wide}
        assert two["gzip"] == max(two.values())
        # bzip2 (data working set far beyond 32 KB) must be among the
        # two largest losers; vortex (I-cache + call pressure) is its
        # only legitimate rival for that spot.
        drops = {name: four[name] / two[name] for name in two}
        worst_two = sorted(drops, key=drops.__getitem__, reverse=True)[:2]
        assert "bzip2" in worst_two
        assert set(worst_two) <= {"bzip2", "vortex"}


class TestTable2Shape:
    def test_resim_beats_hardware_simulators(self, rows_2wide, rows_4wide):
        """Criterion 4: >5x over FAST; ~5x over A-Ports."""
        v4_2wide = average_mips(rows_2wide, "xc4vlx40")
        assert speedup_over(v4_2wide, "FAST (perfect BP)") > 5.0
        v5_4wide = average_mips(rows_4wide, "xc5vlx50t")
        assert speedup_over(v5_4wide, "A-Ports") > 4.0

    def test_software_simulators_orders_of_magnitude_slower(self,
                                                            rows_4wide):
        fastest_software = max(
            entry.mips for entry in PUBLISHED_SIMULATORS
            if entry.category == "software"
        )
        v5 = average_mips(rows_4wide, "xc5vlx50t")
        assert v5 / fastest_software > 50.0


class TestTable3Shape:
    def test_wrong_path_overhead(self, rows_4wide):
        """Criterion 5: wrong-path-inclusive throughput exceeds
        committed throughput by roughly the paper's ~10%."""
        for row in rows_4wide:
            ratio = (row.mips_with_wrong_path("xc4vlx40")
                     / row.mips("xc4vlx40"))
            assert 1.0 < ratio < 1.35, row.benchmark

    def test_bits_per_instruction_in_range(self, rows_4wide):
        """Paper: 41-47 bits; our format sits a few bits lower (no
        per-record size class field savings differences documented in
        EXPERIMENTS.md) but must stay in the same band."""
        for row in rows_4wide:
            assert 34.0 < row.bits_per_instruction < 50.0, row.benchmark

    def test_vortex_has_highest_bits(self, rows_4wide):
        """The paper's vortex row has the highest bits/instruction
        (memory- and branch-richest mix); ours must agree."""
        bits = {row.benchmark: row.bits_per_instruction
                for row in rows_4wide}
        assert bits["vortex"] == max(bits.values())

    def test_bandwidth_identity(self, rows_4wide):
        """Criterion 6: MB/s = MIPS_wp x bits / 8 per row."""
        for row in rows_4wide:
            expected = (row.mips_with_wrong_path("xc4vlx40")
                        * row.bits_per_instruction / 8.0)
            assert row.bandwidth_mbytes("xc4vlx40") == \
                pytest.approx(expected)

    def test_aggregate_bandwidth_near_gigabit(self, rows_4wide):
        """Paper: ~1.1 Gb/s average trace demand."""
        gbps = [row.mips_with_wrong_path("xc4vlx40")
                * row.bits_per_instruction / 1000.0
                for row in rows_4wide]
        average = sum(gbps) / len(gbps)
        assert 0.7 < average < 1.5


class TestTable4Shape:
    def test_area_criteria(self):
        """Criterion 8: fetch largest; BP ~71% of BRAMs; ReSim much
        smaller than FAST (≈2.4x slices, ≈24x BRAMs)."""
        config = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)
        report = AreaEstimator(config).estimate()
        fetch = report.stage("fetch")
        assert all(stage.slices <= fetch.slices for stage in report.stages)
        bram_share = report.stage("bpred").brams / report.total_brams
        assert bram_share == pytest.approx(5 / 7, abs=0.01)
        assert FAST_AREA_SLICES / report.total_slices == \
            pytest.approx(2.4, abs=0.15)
        assert FAST_AREA_BRAMS / report.total_brams == \
            pytest.approx(24.0, abs=1.0)

    def test_cache_cost_modest(self):
        """The paper: tag-only caches cost on the order of 1000-2500
        slices, not a second copy of the design."""
        config = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)
        report = AreaEstimator(config).estimate()
        cache_slices = (report.stage("dcache").slices
                        + report.stage("icache").slices)
        assert cache_slices < 0.25 * report.total_slices
