"""Architectural register file description (PISA integer subset).

PISA follows the MIPS register convention: 32 general-purpose integer
registers plus the HI/LO pair written by multiply/divide.  SPECint
workloads need no floating point, so the FP register file is omitted
(the trace format reserves room for it — register fields are 7 bits
wide — so adding it later would not change the trace encoding).
"""

from __future__ import annotations

#: Number of architectural registers visible to the rename table:
#: $0..$31 plus HI and LO.
REG_COUNT = 34

#: Index of the hardwired zero register.
ZERO = 0

#: Indices of the multiply/divide result pair.
HI = 32
LO = 33

#: Canonical MIPS/PISA assembler names, indexed by register number.
REG_NAMES: tuple[str, ...] = (
    "$zero", "$at", "$v0", "$v1",
    "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3",
    "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3",
    "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1",
    "$gp", "$sp", "$fp", "$ra",
    "$hi", "$lo",
)

#: Accept both symbolic names and numeric "$N" forms.
_NAME_TO_INDEX: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_INDEX.update({f"${i}": i for i in range(32)})
_NAME_TO_INDEX["$s8"] = 30  # alternate name for $fp


def register_index(name: str) -> int:
    """Map an assembler register name (``$t0``, ``$5``, …) to its index.

    Raises
    ------
    KeyError
        If the name is not a recognized register.
    """
    try:
        return _NAME_TO_INDEX[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register name {name!r}") from None


def register_name(index: int) -> str:
    """Map a register index back to its canonical assembler name."""
    if not 0 <= index < REG_COUNT:
        raise IndexError(f"register index {index} out of range")
    return REG_NAMES[index]
