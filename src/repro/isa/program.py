"""Assembled program container.

A :class:`Program` is what the assembler produces and what the
functional simulator consumes: a text segment of decoded instructions,
an initialized data segment, and a symbol table.  The memory layout
follows the SimpleScalar/SPIM convention:

* text at ``0x0040_0000``,
* static data at ``0x1000_0000``,
* stack growing down from ``0x7FFF_F000``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000


@dataclass
class Program:
    """An assembled program image.

    Attributes
    ----------
    instructions:
        Text segment, in address order starting at :attr:`text_base`.
    data:
        Initial contents of the static data segment.
    symbols:
        Label name → byte address (text and data labels both).
    entry:
        Address execution starts at (label ``main`` if present,
        otherwise the first text address).
    """

    instructions: list[Instruction] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    symbols: dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE

    @property
    def text_end(self) -> int:
        """First byte address past the text segment."""
        return self.text_base + INSTRUCTION_BYTES * len(self.instructions)

    def has_instruction(self, pc: int) -> bool:
        """True if ``pc`` addresses an instruction in the text segment."""
        if pc < self.text_base or pc >= self.text_end:
            return False
        return (pc - self.text_base) % INSTRUCTION_BYTES == 0

    def instruction_at(self, pc: int) -> Instruction:
        """Fetch the instruction at byte address ``pc``.

        Raises
        ------
        IndexError
            If ``pc`` is outside the text segment or misaligned.
        """
        if not self.has_instruction(pc):
            raise IndexError(f"no instruction at {pc:#010x}")
        return self.instructions[(pc - self.text_base) // INSTRUCTION_BYTES]

    def address_of(self, label: str) -> int:
        """Resolve a label to its byte address."""
        try:
            return self.symbols[label]
        except KeyError:
            raise KeyError(f"undefined symbol {label!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Render the text segment with addresses and label annotations."""
        by_address = {addr: name for name, addr in self.symbols.items()
                      if self.has_instruction(addr)}
        lines = []
        for index, instr in enumerate(self.instructions):
            pc = self.text_base + index * INSTRUCTION_BYTES
            if pc in by_address:
                lines.append(f"{by_address[pc]}:")
            lines.append(f"  {pc:#010x}:  {instr}")
        return "\n".join(lines)
