"""Opcode table for the PISA-like integer ISA.

Each opcode carries the static metadata the rest of the system needs:

* the *instruction format* (R / I / J), which drives the assembler and
  the binary codec;
* the *functional-unit class*, which the timing model maps to issue
  resources and latencies (the paper's configuration: four 1-cycle
  ALUs, one 3-cycle multiplier, one 10-cycle divider);
* which operand fields are read and written, which drives register
  renaming and dependence tracking;
* branch/memory classification, which selects the trace record format
  (Branch / Memory / Other, Section V.A of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """PISA instruction formats."""

    R = "R"  # register-register: op rd, rs, rt
    I = "I"  # register-immediate: op rt, rs, imm
    J = "J"  # jump: op target


class FuClass(enum.Enum):
    """Functional-unit classes recognized by the issue stage."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


class BranchKind(enum.Enum):
    """Control-flow sub-classes used by the branch predictor unit.

    The direction predictor handles conditional branches; the BTB
    provides targets for anything taken; the Return Address Stack
    handles call/return pairs.
    """

    NONE = "none"
    COND = "cond"          # beq/bne/blez/...
    JUMP = "jump"          # j — unconditional direct
    CALL = "call"          # jal/jalr — pushes return address
    RETURN = "ret"         # jr $ra — pops return address
    INDIRECT = "indirect"  # jr (non-$ra) — computed target


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    mnemonic: str
    format: Format
    fu: FuClass
    reads: tuple[str, ...] = ()   # subset of ("rs", "rt", "hi", "lo")
    writes: tuple[str, ...] = ()  # subset of ("rd", "rt", "hi", "lo", "ra")
    branch: BranchKind = BranchKind.NONE
    mem_bytes: int = 0            # access size for loads/stores
    signed_mem: bool = True       # sign- vs zero-extend loads

    @property
    def is_branch(self) -> bool:
        return self.branch is not BranchKind.NONE

    @property
    def is_load(self) -> bool:
        return self.fu is FuClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.fu is FuClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.mem_bytes > 0


class Opcode(enum.Enum):
    """All opcodes of the PISA-like integer subset."""

    # Arithmetic / logic, R format
    ADD = "add"
    ADDU = "addu"
    SUB = "sub"
    SUBU = "subu"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    # Shifts with shamt in imm
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    # Multiply / divide (HI/LO)
    MULT = "mult"
    MULTU = "multu"
    DIV = "div"
    DIVU = "divu"
    MFHI = "mfhi"
    MFLO = "mflo"
    MTHI = "mthi"
    MTLO = "mtlo"
    # Immediate arithmetic / logic
    ADDI = "addi"
    ADDIU = "addiu"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLTIU = "sltiu"
    LUI = "lui"
    # Loads / stores
    LB = "lb"
    LBU = "lbu"
    LH = "lh"
    LHU = "lhu"
    LW = "lw"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    # Misc
    NOP = "nop"
    SYSCALL = "syscall"
    BREAK = "break"


def _r3(mnemonic: str) -> OpInfo:
    """R-format three-register ALU op: rd <- rs op rt."""
    return OpInfo(mnemonic, Format.R, FuClass.ALU, reads=("rs", "rt"), writes=("rd",))


def _imm(mnemonic: str) -> OpInfo:
    """I-format ALU op: rt <- rs op imm."""
    return OpInfo(mnemonic, Format.I, FuClass.ALU, reads=("rs",), writes=("rt",))


def _load(mnemonic: str, size: int, signed: bool = True) -> OpInfo:
    return OpInfo(
        mnemonic, Format.I, FuClass.LOAD,
        reads=("rs",), writes=("rt",), mem_bytes=size, signed_mem=signed,
    )


def _store(mnemonic: str, size: int) -> OpInfo:
    return OpInfo(
        mnemonic, Format.I, FuClass.STORE,
        reads=("rs", "rt"), mem_bytes=size,
    )


def _cond2(mnemonic: str) -> OpInfo:
    """Two-source conditional branch (beq/bne)."""
    return OpInfo(
        mnemonic, Format.I, FuClass.BRANCH,
        reads=("rs", "rt"), branch=BranchKind.COND,
    )


def _cond1(mnemonic: str) -> OpInfo:
    """One-source conditional branch (blez/bgtz/bltz/bgez)."""
    return OpInfo(
        mnemonic, Format.I, FuClass.BRANCH,
        reads=("rs",), branch=BranchKind.COND,
    )


OPCODE_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: _r3("add"),
    Opcode.ADDU: _r3("addu"),
    Opcode.SUB: _r3("sub"),
    Opcode.SUBU: _r3("subu"),
    Opcode.AND: _r3("and"),
    Opcode.OR: _r3("or"),
    Opcode.XOR: _r3("xor"),
    Opcode.NOR: _r3("nor"),
    Opcode.SLT: _r3("slt"),
    Opcode.SLTU: _r3("sltu"),
    Opcode.SLLV: _r3("sllv"),
    Opcode.SRLV: _r3("srlv"),
    Opcode.SRAV: _r3("srav"),
    Opcode.SLL: OpInfo("sll", Format.R, FuClass.ALU, reads=("rt",), writes=("rd",)),
    Opcode.SRL: OpInfo("srl", Format.R, FuClass.ALU, reads=("rt",), writes=("rd",)),
    Opcode.SRA: OpInfo("sra", Format.R, FuClass.ALU, reads=("rt",), writes=("rd",)),
    Opcode.MULT: OpInfo(
        "mult", Format.R, FuClass.MUL, reads=("rs", "rt"), writes=("hi", "lo")
    ),
    Opcode.MULTU: OpInfo(
        "multu", Format.R, FuClass.MUL, reads=("rs", "rt"), writes=("hi", "lo")
    ),
    Opcode.DIV: OpInfo(
        "div", Format.R, FuClass.DIV, reads=("rs", "rt"), writes=("hi", "lo")
    ),
    Opcode.DIVU: OpInfo(
        "divu", Format.R, FuClass.DIV, reads=("rs", "rt"), writes=("hi", "lo")
    ),
    Opcode.MFHI: OpInfo("mfhi", Format.R, FuClass.ALU, reads=("hi",), writes=("rd",)),
    Opcode.MFLO: OpInfo("mflo", Format.R, FuClass.ALU, reads=("lo",), writes=("rd",)),
    Opcode.MTHI: OpInfo("mthi", Format.R, FuClass.ALU, reads=("rs",), writes=("hi",)),
    Opcode.MTLO: OpInfo("mtlo", Format.R, FuClass.ALU, reads=("rs",), writes=("lo",)),
    Opcode.ADDI: _imm("addi"),
    Opcode.ADDIU: _imm("addiu"),
    Opcode.ANDI: _imm("andi"),
    Opcode.ORI: _imm("ori"),
    Opcode.XORI: _imm("xori"),
    Opcode.SLTI: _imm("slti"),
    Opcode.SLTIU: _imm("sltiu"),
    Opcode.LUI: OpInfo("lui", Format.I, FuClass.ALU, writes=("rt",)),
    Opcode.LB: _load("lb", 1),
    Opcode.LBU: _load("lbu", 1, signed=False),
    Opcode.LH: _load("lh", 2),
    Opcode.LHU: _load("lhu", 2, signed=False),
    Opcode.LW: _load("lw", 4),
    Opcode.SB: _store("sb", 1),
    Opcode.SH: _store("sh", 2),
    Opcode.SW: _store("sw", 4),
    Opcode.BEQ: _cond2("beq"),
    Opcode.BNE: _cond2("bne"),
    Opcode.BLEZ: _cond1("blez"),
    Opcode.BGTZ: _cond1("bgtz"),
    Opcode.BLTZ: _cond1("bltz"),
    Opcode.BGEZ: _cond1("bgez"),
    Opcode.J: OpInfo("j", Format.J, FuClass.BRANCH, branch=BranchKind.JUMP),
    Opcode.JAL: OpInfo(
        "jal", Format.J, FuClass.BRANCH, writes=("ra",), branch=BranchKind.CALL
    ),
    Opcode.JR: OpInfo(
        "jr", Format.R, FuClass.BRANCH, reads=("rs",), branch=BranchKind.INDIRECT
    ),
    Opcode.JALR: OpInfo(
        "jalr", Format.R, FuClass.BRANCH,
        reads=("rs",), writes=("rd",), branch=BranchKind.CALL,
    ),
    Opcode.NOP: OpInfo("nop", Format.R, FuClass.NOP),
    Opcode.SYSCALL: OpInfo("syscall", Format.R, FuClass.NOP),
    Opcode.BREAK: OpInfo("break", Format.R, FuClass.NOP),
}

#: Reverse lookup from mnemonic text to opcode.
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {
    info.mnemonic: op for op, info in OPCODE_INFO.items()
}

#: Stable numeric encoding for the binary codec (16-bit opcode field,
#: PISA-style).  Enum declaration order is the ABI; append only.
OPCODE_NUMBERS: dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
NUMBER_TO_OPCODE: dict[int, Opcode] = {i: op for op, i in OPCODE_NUMBERS.items()}
