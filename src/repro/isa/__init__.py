"""A SimpleScalar-PISA-like integer ISA.

ReSim is *almost ISA independent*: because it is trace-driven, only the
trace format matters, and the paper notes it "supports all SimpleScalar
ISAs, i.e. PISA, Alpha, etc.".  The trace, however, has to come from a
functional simulator, and the paper uses a modified SimpleScalar
(``sim-bpred``) for that.  This package provides the equivalent
substrate: a PISA-flavoured integer instruction set (SPECint needs no
floating point), a two-pass assembler with the usual pseudo-instructions,
and a binary codec for the fixed 64-bit PISA-style instruction word.

Public API
----------
* :class:`~repro.isa.opcodes.Opcode` / :class:`~repro.isa.opcodes.FuClass`
* :class:`~repro.isa.instruction.Instruction`
* :class:`~repro.isa.assembler.Assembler` and :func:`~repro.isa.assembler.assemble`
* :class:`~repro.isa.program.Program`
* register name tables in :mod:`repro.isa.registers`
"""

from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass, Opcode, OPCODE_INFO
from repro.isa.program import Program
from repro.isa.registers import (
    HI,
    LO,
    REG_COUNT,
    REG_NAMES,
    ZERO,
    register_index,
    register_name,
)

__all__ = [
    "Assembler",
    "AssemblyError",
    "FuClass",
    "HI",
    "Instruction",
    "LO",
    "Opcode",
    "OPCODE_INFO",
    "Program",
    "REG_COUNT",
    "REG_NAMES",
    "ZERO",
    "assemble",
    "register_index",
    "register_name",
]
