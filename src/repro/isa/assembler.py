"""Two-pass assembler for the PISA-like ISA.

The assembler accepts the familiar MIPS/SPIM dialect:

* ``.text`` / ``.data`` section switches;
* labels (``loop:``), ``.word``, ``.half``, ``.byte``, ``.space``,
  ``.asciiz``, ``.align`` data directives;
* the common pseudo-instructions (``li``, ``la``, ``move``, ``b``,
  ``beqz``/``bnez``, ``blt``/``bgt``/``ble``/``bge``, ``not``, ``neg``,
  ``mul`` (three-operand), ``seq``-free subset);
* ``#`` comments.

Pass 1 expands pseudo-instructions into fixed-size stubs and assigns
addresses; pass 2 resolves symbols into immediates.  Branch immediates
are stored as *byte offsets relative to the next instruction*; jump
targets as absolute byte addresses scaled by the 8-byte instruction
size (see :mod:`repro.isa.instruction`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Format, MNEMONIC_TO_OPCODE, OPCODE_INFO, Opcode
from repro.isa.program import DATA_BASE, Program, TEXT_BASE
from repro.isa.registers import register_index


class AssemblyError(ValueError):
    """Raised on any syntax or semantic error, with a line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class _Stub:
    """A not-yet-resolved instruction from pass 1."""

    line: int
    opcode: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    symbol: str | None = None      # unresolved label reference
    symbol_mode: str = ""          # "branch" | "jump" | "hi" | "lo" | "abs"


_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w*)\((\$\w+)\)$")


def _parse_int(token: str, line: int) -> int:
    """Parse a decimal/hex/char immediate."""
    token = token.strip()
    try:
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            body = token[1:-1]
            unescaped = body.encode().decode("unicode_escape")
            if len(unescaped) != 1:
                raise ValueError
            return ord(unescaped)
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line, f"bad immediate {token!r}") from None


def _unescape(text: str, line: int) -> bytes:
    try:
        return text.encode().decode("unicode_escape").encode("latin-1")
    except (UnicodeDecodeError, UnicodeEncodeError):
        raise AssemblyError(line, f"bad string literal {text!r}") from None


class Assembler:
    """Two-pass assembler producing a :class:`~repro.isa.program.Program`."""

    def __init__(self) -> None:
        self._stubs: list[_Stub] = []
        self._data = bytearray()
        self._symbols: dict[str, int] = {}
        self._section = "text"

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` and return the program image."""
        self._stubs = []
        self._data = bytearray()
        self._symbols = {}
        self._section = "text"

        for line_number, raw in enumerate(source.splitlines(), start=1):
            self._process_line(raw, line_number)

        instructions = [
            self._resolve(stub, index) for index, stub in enumerate(self._stubs)
        ]
        entry = self._symbols.get("main", TEXT_BASE)
        return Program(
            instructions=instructions,
            data=self._data,
            symbols=dict(self._symbols),
            entry=entry,
        )

    # ------------------------------------------------------------------
    # Pass 1: line handling
    # ------------------------------------------------------------------

    def _text_pc(self) -> int:
        return TEXT_BASE + INSTRUCTION_BYTES * len(self._stubs)

    def _data_pc(self) -> int:
        return DATA_BASE + len(self._data)

    def _define_label(self, name: str, line: int) -> None:
        if not _LABEL_RE.match(name):
            raise AssemblyError(line, f"bad label name {name!r}")
        if name in self._symbols:
            raise AssemblyError(line, f"duplicate label {name!r}")
        address = self._text_pc() if self._section == "text" else self._data_pc()
        self._symbols[name] = address

    def _process_line(self, raw: str, line: int) -> None:
        text = raw.split("#", 1)[0].strip()
        if not text:
            return
        # Leading labels (possibly several).
        while ":" in text:
            head, _, rest = text.partition(":")
            head = head.strip()
            if not head or not _LABEL_RE.match(head):
                break
            self._define_label(head, line)
            text = rest.strip()
        if not text:
            return
        if text.startswith("."):
            self._process_directive(text, line)
        else:
            self._process_instruction(text, line)

    def _process_directive(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        directive = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if directive == ".text":
            self._section = "text"
        elif directive == ".data":
            self._section = "data"
        elif directive == ".globl":
            pass  # all labels are global in this assembler
        elif directive == ".align":
            amount = 1 << _parse_int(rest, line)
            if self._section != "data":
                raise AssemblyError(line, ".align only supported in .data")
            while len(self._data) % amount:
                self._data.append(0)
        elif directive == ".space":
            if self._section != "data":
                raise AssemblyError(line, ".space only supported in .data")
            self._data.extend(b"\x00" * _parse_int(rest, line))
        elif directive in (".word", ".half", ".byte"):
            if self._section != "data":
                raise AssemblyError(line, f"{directive} only supported in .data")
            size = {".word": 4, ".half": 2, ".byte": 1}[directive]
            for token in rest.split(","):
                token = token.strip()
                value = self._symbols.get(token)
                if value is None:
                    value = _parse_int(token, line)
                self._data.extend(
                    (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
                )
        elif directive == ".asciiz":
            match = _STRING_RE.search(rest)
            if not match or self._section != "data":
                raise AssemblyError(line, "bad .asciiz directive")
            self._data.extend(_unescape(match.group(1), line))
            self._data.append(0)
        else:
            raise AssemblyError(line, f"unknown directive {directive!r}")

    # ------------------------------------------------------------------
    # Pass 1: instructions and pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _emit(self, line: int, opcode: Opcode, **fields) -> None:
        self._stubs.append(_Stub(line=line, opcode=opcode, **fields))

    def _reg(self, token: str, line: int) -> int:
        try:
            return register_index(token.strip())
        except KeyError as exc:
            raise AssemblyError(line, str(exc)) from None

    def _split_operands(self, rest: str) -> list[str]:
        return [tok.strip() for tok in rest.split(",")] if rest else []

    def _imm_or_symbol(self, token: str, line: int, mode: str) -> tuple[int, str | None]:
        """Return (imm, symbol): numeric immediates resolve now."""
        token = token.strip()
        if re.match(r"^-?(0[xX][0-9a-fA-F]+|\d+|'.*')$", token):
            return _parse_int(token, line), None
        if not _LABEL_RE.match(token):
            raise AssemblyError(line, f"bad operand {token!r}")
        return 0, token

    def _process_instruction(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        ops = self._split_operands(rest)

        if self._section != "text":
            raise AssemblyError(line, "instruction outside .text section")

        handler = getattr(self, f"_pseudo_{mnemonic}", None)
        if handler is not None:
            handler(ops, line)
            return
        if mnemonic not in MNEMONIC_TO_OPCODE:
            raise AssemblyError(line, f"unknown mnemonic {mnemonic!r}")
        self._native(MNEMONIC_TO_OPCODE[mnemonic], ops, line)

    def _native(self, opcode: Opcode, ops: list[str], line: int) -> None:
        info = OPCODE_INFO[opcode]

        if opcode in (Opcode.NOP, Opcode.SYSCALL, Opcode.BREAK):
            self._expect(ops, 0, line)
            self._emit(line, opcode)
            return

        if info.is_mem:  # op rt, imm(rs)  |  op rt, label
            self._expect(ops, 2, line)
            rt = self._reg(ops[0], line)
            match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
            if match:
                offset_text, base = match.groups()
                imm = _parse_int(offset_text, line) if offset_text else 0
                self._emit(line, opcode, rt=rt, rs=self._reg(base, line), imm=imm)
            else:
                imm, symbol = self._imm_or_symbol(ops[1], line, "abs")
                if symbol is None:
                    raise AssemblyError(line, "memory operand needs base register or label")
                # Label-direct addressing expands like real MIPS
                # assemblers: lui $at, hi(label); op rt, lo(label)($at).
                self._emit(line, Opcode.LUI, rt=1, symbol=symbol,
                           symbol_mode="hi")
                self._emit(line, opcode, rt=rt, rs=1, symbol=symbol,
                           symbol_mode="lo")
            return

        if opcode in (Opcode.BEQ, Opcode.BNE):
            self._expect(ops, 3, line)
            imm, symbol = self._imm_or_symbol(ops[2], line, "branch")
            self._emit(
                line, opcode,
                rs=self._reg(ops[0], line), rt=self._reg(ops[1], line),
                imm=imm, symbol=symbol, symbol_mode="branch",
            )
            return

        if opcode in (Opcode.BLEZ, Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ):
            self._expect(ops, 2, line)
            imm, symbol = self._imm_or_symbol(ops[1], line, "branch")
            self._emit(
                line, opcode, rs=self._reg(ops[0], line),
                imm=imm, symbol=symbol, symbol_mode="branch",
            )
            return

        if opcode in (Opcode.J, Opcode.JAL):
            self._expect(ops, 1, line)
            imm, symbol = self._imm_or_symbol(ops[0], line, "jump")
            self._emit(line, opcode, imm=imm, symbol=symbol, symbol_mode="jump")
            return

        if opcode is Opcode.JR:
            self._expect(ops, 1, line)
            self._emit(line, opcode, rs=self._reg(ops[0], line))
            return

        if opcode is Opcode.JALR:
            # jalr rs  |  jalr rd, rs
            if len(ops) == 1:
                self._emit(line, opcode, rd=31, rs=self._reg(ops[0], line))
            else:
                self._expect(ops, 2, line)
                self._emit(line, opcode, rd=self._reg(ops[0], line),
                           rs=self._reg(ops[1], line))
            return

        if opcode in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
            self._expect(ops, 3, line)
            self._emit(
                line, opcode,
                rd=self._reg(ops[0], line), rt=self._reg(ops[1], line),
                imm=_parse_int(ops[2], line),
            )
            return

        if opcode in (Opcode.MULT, Opcode.MULTU, Opcode.DIV, Opcode.DIVU):
            self._expect(ops, 2, line)
            self._emit(line, opcode, rs=self._reg(ops[0], line),
                       rt=self._reg(ops[1], line))
            return

        if opcode in (Opcode.MFHI, Opcode.MFLO):
            self._expect(ops, 1, line)
            self._emit(line, opcode, rd=self._reg(ops[0], line))
            return

        if opcode in (Opcode.MTHI, Opcode.MTLO):
            self._expect(ops, 1, line)
            self._emit(line, opcode, rs=self._reg(ops[0], line))
            return

        if opcode is Opcode.LUI:
            self._expect(ops, 2, line)
            self._emit(line, opcode, rt=self._reg(ops[0], line),
                       imm=_parse_int(ops[1], line))
            return

        if info.format is Format.I:  # addi rt, rs, imm
            self._expect(ops, 3, line)
            self._emit(
                line, opcode,
                rt=self._reg(ops[0], line), rs=self._reg(ops[1], line),
                imm=_parse_int(ops[2], line),
            )
            return

        # Plain R format: op rd, rs, rt
        self._expect(ops, 3, line)
        self._emit(
            line, opcode,
            rd=self._reg(ops[0], line), rs=self._reg(ops[1], line),
            rt=self._reg(ops[2], line),
        )

    def _expect(self, ops: list[str], count: int, line: int) -> None:
        if len(ops) != count:
            raise AssemblyError(
                line, f"expected {count} operand(s), got {len(ops)}"
            )

    # ------------------------------------------------------------------
    # Pseudo-instructions
    # ------------------------------------------------------------------

    def _pseudo_li(self, ops: list[str], line: int) -> None:
        """li rt, imm32 — one or two native instructions."""
        self._expect(ops, 2, line)
        rt = self._reg(ops[0], line)
        value = _parse_int(ops[1], line) & 0xFFFFFFFF
        if value < 0x8000:
            self._emit(line, Opcode.ADDIU, rt=rt, rs=0, imm=value)
        elif value >= 0xFFFF8000:  # small negative
            self._emit(line, Opcode.ADDIU, rt=rt, rs=0,
                       imm=value - 0x100000000)
        else:
            self._emit(line, Opcode.LUI, rt=rt, imm=(value >> 16) & 0xFFFF)
            if value & 0xFFFF:
                self._emit(line, Opcode.ORI, rt=rt, rs=rt, imm=value & 0xFFFF)

    def _pseudo_la(self, ops: list[str], line: int) -> None:
        """la rt, label — lui/ori pair resolved in pass 2."""
        self._expect(ops, 2, line)
        rt = self._reg(ops[0], line)
        __, symbol = self._imm_or_symbol(ops[1], line, "abs")
        if symbol is None:
            self._pseudo_li(ops, line)
            return
        self._emit(line, Opcode.LUI, rt=rt, symbol=symbol, symbol_mode="hi")
        self._emit(line, Opcode.ORI, rt=rt, rs=rt, symbol=symbol, symbol_mode="lo")

    def _pseudo_move(self, ops: list[str], line: int) -> None:
        self._expect(ops, 2, line)
        self._emit(line, Opcode.ADDU, rd=self._reg(ops[0], line),
                   rs=self._reg(ops[1], line), rt=0)

    def _pseudo_b(self, ops: list[str], line: int) -> None:
        self._expect(ops, 1, line)
        imm, symbol = self._imm_or_symbol(ops[0], line, "branch")
        self._emit(line, Opcode.BEQ, rs=0, rt=0, imm=imm,
                   symbol=symbol, symbol_mode="branch")

    def _pseudo_beqz(self, ops: list[str], line: int) -> None:
        self._expect(ops, 2, line)
        imm, symbol = self._imm_or_symbol(ops[1], line, "branch")
        self._emit(line, Opcode.BEQ, rs=self._reg(ops[0], line), rt=0,
                   imm=imm, symbol=symbol, symbol_mode="branch")

    def _pseudo_bnez(self, ops: list[str], line: int) -> None:
        self._expect(ops, 2, line)
        imm, symbol = self._imm_or_symbol(ops[1], line, "branch")
        self._emit(line, Opcode.BNE, rs=self._reg(ops[0], line), rt=0,
                   imm=imm, symbol=symbol, symbol_mode="branch")

    def _compare_and_branch(self, ops: list[str], line: int,
                            swap: bool, branch_on_set: bool) -> None:
        """Shared body of blt/bgt/ble/bge using $at as scratch."""
        self._expect(ops, 3, line)
        ra = self._reg(ops[0], line)
        rb = self._reg(ops[1], line)
        if swap:
            ra, rb = rb, ra
        imm, symbol = self._imm_or_symbol(ops[2], line, "branch")
        self._emit(line, Opcode.SLT, rd=1, rs=ra, rt=rb)  # $at = ra < rb
        branch = Opcode.BNE if branch_on_set else Opcode.BEQ
        self._emit(line, branch, rs=1, rt=0, imm=imm,
                   symbol=symbol, symbol_mode="branch")

    def _pseudo_blt(self, ops: list[str], line: int) -> None:
        self._compare_and_branch(ops, line, swap=False, branch_on_set=True)

    def _pseudo_bgt(self, ops: list[str], line: int) -> None:
        self._compare_and_branch(ops, line, swap=True, branch_on_set=True)

    def _pseudo_bge(self, ops: list[str], line: int) -> None:
        self._compare_and_branch(ops, line, swap=False, branch_on_set=False)

    def _pseudo_ble(self, ops: list[str], line: int) -> None:
        self._compare_and_branch(ops, line, swap=True, branch_on_set=False)

    def _pseudo_not(self, ops: list[str], line: int) -> None:
        self._expect(ops, 2, line)
        self._emit(line, Opcode.NOR, rd=self._reg(ops[0], line),
                   rs=self._reg(ops[1], line), rt=0)

    def _pseudo_neg(self, ops: list[str], line: int) -> None:
        self._expect(ops, 2, line)
        self._emit(line, Opcode.SUB, rd=self._reg(ops[0], line),
                   rs=0, rt=self._reg(ops[1], line))

    def _pseudo_mul(self, ops: list[str], line: int) -> None:
        """Three-operand multiply: mult + mflo."""
        self._expect(ops, 3, line)
        self._emit(line, Opcode.MULT, rs=self._reg(ops[1], line),
                   rt=self._reg(ops[2], line))
        self._emit(line, Opcode.MFLO, rd=self._reg(ops[0], line))

    # ------------------------------------------------------------------
    # Pass 2: symbol resolution
    # ------------------------------------------------------------------

    def _resolve(self, stub: _Stub, index: int) -> Instruction:
        imm = stub.imm
        if stub.symbol is not None:
            if stub.symbol not in self._symbols:
                raise AssemblyError(stub.line, f"undefined label {stub.symbol!r}")
            target = self._symbols[stub.symbol]
            pc = TEXT_BASE + INSTRUCTION_BYTES * index
            if stub.symbol_mode == "branch":
                imm = target - (pc + INSTRUCTION_BYTES)
            elif stub.symbol_mode == "jump":
                imm = target >> 3  # scaled absolute
            elif stub.symbol_mode == "hi":
                imm = (target >> 16) & 0xFFFF
            elif stub.symbol_mode == "lo":
                imm = target & 0xFFFF
            elif stub.symbol_mode == "abs":
                imm = target
            else:
                raise AssemblyError(stub.line, "internal: bad symbol mode")
        elif stub.symbol_mode == "jump":
            # Numeric jump operands are absolute byte addresses.
            if imm % INSTRUCTION_BYTES:
                raise AssemblyError(stub.line, f"misaligned jump target {imm:#x}")
            imm >>= 3
        if not -(1 << 23) <= imm < (1 << 24):
            raise AssemblyError(stub.line, f"immediate {imm} out of range")
        return Instruction(op=stub.opcode, rd=stub.rd, rs=stub.rs,
                           rt=stub.rt, imm=imm)


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program` (convenience)."""
    return Assembler().assemble(source)
