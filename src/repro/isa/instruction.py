"""Decoded instruction representation and the 64-bit binary codec.

SimpleScalar's PISA uses a fixed 64-bit instruction word (16-bit opcode
annex plus a 32-bit MIPS-like core plus padding); instructions therefore
occupy 8 bytes and the PC advances in steps of 8.  We mirror that:
:data:`INSTRUCTION_BYTES` is 8 and the codec packs opcode, register
fields, and a 16-bit immediate into one 64-bit little-endian word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers
from repro.isa.opcodes import (
    BranchKind,
    Format,
    FuClass,
    NUMBER_TO_OPCODE,
    OPCODE_INFO,
    OPCODE_NUMBERS,
    Opcode,
    OpInfo,
)

#: PISA instructions are 8 bytes; the PC advances by this amount.
INSTRUCTION_BYTES = 8

_RA = 31  # return-address register written by jal/jalr


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Fields mirror the PISA formats: R-format uses ``rd, rs, rt``;
    I-format uses ``rt, rs, imm``; J-format uses ``imm`` as an absolute
    byte target.  Shift amounts travel in ``imm``.

    The convenience accessors (:meth:`src_registers`,
    :meth:`dest_registers`, :attr:`branch_kind`) translate the opcode
    metadata into concrete architectural register indices, which is the
    form the rename table and the trace encoder need.
    """

    op: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    @property
    def info(self) -> OpInfo:
        """Static opcode metadata."""
        return OPCODE_INFO[self.op]

    @property
    def fu_class(self) -> FuClass:
        return self.info.fu

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    @property
    def is_mem(self) -> bool:
        return self.info.is_mem

    @property
    def branch_kind(self) -> BranchKind:
        """Control-flow class, with ``jr $ra`` refined to RETURN.

        The opcode table marks ``jr`` as INDIRECT; the return-address
        stack only helps when the jump register is ``$ra``, so decode
        refines that case (this matches how real front ends and
        SimpleScalar classify returns).
        """
        kind = self.info.branch
        if self.op is Opcode.JR and self.rs == _RA:
            return BranchKind.RETURN
        return kind

    def _field_register(self, name: str) -> int:
        if name == "rs":
            return self.rs
        if name == "rt":
            return self.rt
        if name == "rd":
            return self.rd
        if name == "hi":
            return registers.HI
        if name == "lo":
            return registers.LO
        if name == "ra":
            return _RA
        raise ValueError(f"unknown operand field {name!r}")

    def src_registers(self) -> tuple[int, ...]:
        """Architectural registers read, $zero excluded (never a dependence)."""
        regs = tuple(
            self._field_register(f) for f in self.info.reads
        )
        return tuple(r for r in regs if r != registers.ZERO)

    def dest_registers(self) -> tuple[int, ...]:
        """Architectural registers written, $zero excluded (write is void)."""
        regs = tuple(
            self._field_register(f) for f in self.info.writes
        )
        return tuple(r for r in regs if r != registers.ZERO)

    # ------------------------------------------------------------------
    # Binary codec: 64-bit word, little-endian.
    #   [15:0]   opcode number
    #   [23:16]  rs
    #   [31:24]  rt
    #   [39:32]  rd
    #   [63:40]  imm (24 bits, two's complement; J targets are
    #            byte addresses >> 3 so 24 bits cover a 128 MB text
    #            segment)
    # ------------------------------------------------------------------

    _IMM_BITS = 24

    def encode(self) -> int:
        """Pack into the 64-bit PISA-style instruction word."""
        imm = self.imm & ((1 << self._IMM_BITS) - 1)
        word = OPCODE_NUMBERS[self.op]
        word |= (self.rs & 0xFF) << 16
        word |= (self.rt & 0xFF) << 24
        word |= (self.rd & 0xFF) << 32
        word |= imm << 40
        return word

    @classmethod
    def decode(cls, word: int) -> Instruction:
        """Unpack a 64-bit instruction word.

        Raises
        ------
        ValueError
            If the opcode number is not part of the ISA (e.g. the
            functional simulator fetched from a data region).
        """
        number = word & 0xFFFF
        try:
            op = NUMBER_TO_OPCODE[number]
        except KeyError:
            raise ValueError(f"invalid opcode number {number}") from None
        imm = (word >> 40) & ((1 << cls._IMM_BITS) - 1)
        if imm >= 1 << (cls._IMM_BITS - 1):  # sign-extend
            imm -= 1 << cls._IMM_BITS
        return cls(
            op=op,
            rs=(word >> 16) & 0xFF,
            rt=(word >> 24) & 0xFF,
            rd=(word >> 32) & 0xFF,
            imm=imm,
        )

    def __str__(self) -> str:
        info = self.info
        name = info.mnemonic
        if self.op in (Opcode.NOP, Opcode.SYSCALL, Opcode.BREAK):
            return name
        if info.format is Format.J:
            return f"{name} {self.imm:#x}"
        if info.is_mem:
            reg = registers.register_name(self.rt)
            base = registers.register_name(self.rs)
            return f"{name} {reg}, {self.imm}({base})"
        if info.is_branch:
            parts = [registers.register_name(self._field_register(f))
                     for f in info.reads]
            if self.op not in (Opcode.JR, Opcode.JALR):
                parts.append(f"{self.imm:+d}")
            return f"{name} " + ", ".join(parts)
        if info.format is Format.I:
            rt = registers.register_name(self.rt)
            rs = registers.register_name(self.rs)
            if self.op is Opcode.LUI:
                return f"{name} {rt}, {self.imm:#x}"
            return f"{name} {rt}, {rs}, {self.imm}"
        # R format
        dests = [registers.register_name(self._field_register(f))
                 for f in info.writes if f in ("rd", "rt")]
        srcs = [registers.register_name(self._field_register(f))
                for f in info.reads if f in ("rs", "rt")]
        if self.op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
            return f"{name} {dests[0]}, {srcs[0]}, {self.imm}"
        return f"{name} " + ", ".join(dests + srcs)


#: A canonical no-op, used for padding and wrong-path filler.
NOP = Instruction(op=Opcode.NOP)
