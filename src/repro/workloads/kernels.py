"""Real assembly kernels for the PISA-like ISA.

These small programs are assembled by :mod:`repro.isa.assembler` and
executed by the *real* functional simulator, producing genuine traces
(with genuine wrong paths) through :class:`repro.functional.SimBpred`.
They complement the synthetic SPEC profiles: synthetic streams drive
the headline tables, kernels anchor correctness (an end-to-end path
from source text to timing results with no statistical modelling in
between).

Each kernel exercises a different microarchitectural corner:

* ``vecsum``      — streaming loads, tight predictable loop;
* ``bubble_sort`` — data-dependent branches, swap stores;
* ``fibonacci``   — deep recursion, RAS behaviour;
* ``strsearch``   — byte loads, nested loops with early exit;
* ``checksum``    — multiply/accumulate, long-latency FU usage;
* ``listwalk``    — pointer chasing, load-to-load dependences;
* ``matmul``      — nested loops, multiplies, 2-D locality.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.program import Program

_VECSUM = """
# Sum a 64-element word array.
.data
array:  .space 256
.text
main:
    la   $s0, array
    li   $t0, 64          # element count
    li   $t1, 0           # index
    li   $s1, 0           # accumulator
fill:                     # initialize array[i] = i
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    sw   $t1, 0($t3)
    addi $t1, $t1, 1
    blt  $t1, $t0, fill
    li   $t1, 0
sum:
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    lw   $t4, 0($t3)
    add  $s1, $s1, $t4
    addi $t1, $t1, 1
    blt  $t1, $t0, sum
    move $a0, $s1
    li   $v0, 1           # print result
    syscall
    li   $v0, 10
    syscall
"""

_BUBBLE_SORT = """
# Bubble-sort a 32-element array of pseudo-random words.
.data
array:  .space 128
.text
main:
    la   $s0, array
    li   $t0, 32
    li   $t1, 0
    li   $t5, 12345       # LCG state
fill:
    li   $t6, 1103515245
    mult $t5, $t6
    mflo $t5
    addi $t5, $t5, 12345
    andi $t7, $t5, 0xFFFF
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    sw   $t7, 0($t3)
    addi $t1, $t1, 1
    blt  $t1, $t0, fill

    li   $s1, 0           # i
outer:
    addi $t4, $t0, -1
    sub  $t4, $t4, $s1    # limit = n-1-i
    li   $s2, 0           # j
inner:
    sll  $t2, $s2, 2
    add  $t3, $s0, $t2
    lw   $t6, 0($t3)
    lw   $t7, 4($t3)
    ble  $t6, $t7, noswap
    sw   $t7, 0($t3)
    sw   $t6, 4($t3)
noswap:
    addi $s2, $s2, 1
    blt  $s2, $t4, inner
    addi $s1, $s1, 1
    addi $t8, $t0, -1
    blt  $s1, $t8, outer

    lw   $a0, 0($s0)      # print smallest element
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""

_FIBONACCI = """
# Naive recursive fib(12): deep call tree for the RAS.
.text
main:
    li   $a0, 12
    jal  fib
    move $a0, $v0
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
fib:
    slti $t0, $a0, 2
    beqz $t0, recurse
    move $v0, $a0         # fib(0)=0, fib(1)=1
    jr   $ra
recurse:
    addi $sp, $sp, -12
    sw   $ra, 0($sp)
    sw   $a0, 4($sp)
    addi $a0, $a0, -1
    jal  fib
    sw   $v0, 8($sp)
    lw   $a0, 4($sp)
    addi $a0, $a0, -2
    jal  fib
    lw   $t1, 8($sp)
    add  $v0, $v0, $t1
    lw   $ra, 0($sp)
    addi $sp, $sp, 12
    jr   $ra
"""

_STRSEARCH = """
# Count occurrences of a 3-byte needle in a 96-byte haystack.
.data
haystack: .asciiz "the quick brown fox jumps over the lazy dog while the cat naps under the warm afternoon sun"
needle:   .asciiz "the"
.text
main:
    la   $s0, haystack
    la   $s1, needle
    li   $s2, 0           # match count
    li   $t0, 0           # haystack index
scan:
    add  $t1, $s0, $t0
    lbu  $t2, 0($t1)
    beqz $t2, done        # end of haystack
    li   $t3, 0           # needle index
compare:
    add  $t4, $s1, $t3
    lbu  $t5, 0($t4)
    beqz $t5, match       # end of needle: match found
    add  $t6, $s0, $t0
    add  $t6, $t6, $t3
    lbu  $t7, 0($t6)
    bne  $t5, $t7, nomatch
    addi $t3, $t3, 1
    b    compare
match:
    addi $s2, $s2, 1
nomatch:
    addi $t0, $t0, 1
    b    scan
done:
    move $a0, $s2
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""

_CHECKSUM = """
# Multiply-accumulate checksum over 48 words (exercises MUL/DIV units).
.data
buffer: .space 192
.text
main:
    la   $s0, buffer
    li   $t0, 48
    li   $t1, 0
    li   $t5, 7919        # seed / prime
fill:
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    mul  $t6, $t1, $t5
    sw   $t6, 0($t3)
    addi $t1, $t1, 1
    blt  $t1, $t0, fill

    li   $t1, 0
    li   $s1, 1           # checksum
accumulate:
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    lw   $t4, 0($t3)
    mul  $s1, $s1, $t4
    addi $s1, $s1, 17
    addi $t1, $t1, 1
    blt  $t1, $t0, accumulate

    li   $t7, 65521       # mod a prime-ish value via div
    divu $s1, $t7
    mfhi $a0
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""

_LISTWALK = """
# Build a 40-node linked list, then traverse it 8 times
# (load-to-load dependence chains; poor ILP by construction).
.data
nodes:  .space 320        # 40 nodes x (value, next)
.text
main:
    la   $s0, nodes
    li   $t0, 40
    li   $t1, 0
build:
    sll  $t2, $t1, 3      # node i at nodes + 8i
    add  $t3, $s0, $t2
    sw   $t1, 0($t3)      # value = i
    addi $t4, $t2, 8
    add  $t5, $s0, $t4
    sw   $t5, 4($t3)      # next = &node[i+1]
    addi $t1, $t1, 1
    blt  $t1, $t0, build
    # terminate the list
    addi $t1, $t0, -1
    sll  $t2, $t1, 3
    add  $t3, $s0, $t2
    sw   $zero, 4($t3)

    li   $s3, 8           # traversal passes
    li   $s1, 0           # sum
pass:
    move $t6, $s0         # cursor
walk:
    lw   $t7, 0($t6)      # value
    add  $s1, $s1, $t7
    lw   $t6, 4($t6)      # next (load-to-load)
    bnez $t6, walk
    addi $s3, $s3, -1
    bnez $s3, pass

    move $a0, $s1
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""

_MATMUL = """
# 8x8 integer matrix multiply: C = A * B.
.data
mat_a:  .space 256
mat_b:  .space 256
mat_c:  .space 256
.text
main:
    la   $s0, mat_a
    la   $s1, mat_b
    la   $s2, mat_c
    li   $t0, 64
    li   $t1, 0
fill:                     # A[i] = i, B[i] = i ^ 21
    sll  $t2, $t1, 2
    add  $t3, $s0, $t2
    sw   $t1, 0($t3)
    xori $t4, $t1, 21
    add  $t3, $s1, $t2
    sw   $t4, 0($t3)
    addi $t1, $t1, 1
    blt  $t1, $t0, fill

    li   $s3, 0           # i
iloop:
    li   $s4, 0           # j
jloop:
    li   $s5, 0           # k
    li   $s6, 0           # acc
kloop:
    sll  $t2, $s3, 3      # i*8
    add  $t2, $t2, $s5    # i*8 + k
    sll  $t2, $t2, 2
    add  $t3, $s0, $t2
    lw   $t4, 0($t3)      # A[i][k]
    sll  $t5, $s5, 3      # k*8
    add  $t5, $t5, $s4    # k*8 + j
    sll  $t5, $t5, 2
    add  $t6, $s1, $t5
    lw   $t7, 0($t6)      # B[k][j]
    mul  $t8, $t4, $t7
    add  $s6, $s6, $t8
    addi $s5, $s5, 1
    slti $t9, $s5, 8
    bnez $t9, kloop
    sll  $t2, $s3, 3
    add  $t2, $t2, $s4
    sll  $t2, $t2, 2
    add  $t3, $s2, $t2
    sw   $s6, 0($t3)      # C[i][j]
    addi $s4, $s4, 1
    slti $t9, $s4, 8
    bnez $t9, jloop
    addi $s3, $s3, 1
    slti $t9, $s3, 8
    bnez $t9, iloop

    lw   $a0, 0($s2)      # print C[0][0]
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""

#: All bundled kernels, name → assembly source.
KERNELS: dict[str, str] = {
    "vecsum": _VECSUM,
    "bubble_sort": _BUBBLE_SORT,
    "fibonacci": _FIBONACCI,
    "strsearch": _STRSEARCH,
    "checksum": _CHECKSUM,
    "listwalk": _LISTWALK,
    "matmul": _MATMUL,
}


def kernel_source(name: str) -> str:
    """Assembly source text of a bundled kernel."""
    try:
        return KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None


def kernel_program(name: str) -> Program:
    """Assemble a bundled kernel into a runnable program image."""
    return assemble(kernel_source(name))
