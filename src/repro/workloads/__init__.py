"""Workloads: synthetic SPECINT profiles and real assembled kernels.

The paper evaluates ReSim on five SPECINT CPU2000 programs (gzip,
bzip2, parser, vortex, vpr) with the ``train`` inputs, traced through a
modified SimpleScalar.  SPEC binaries and inputs are proprietary and
unavailable here, so this package provides the documented substitution
(DESIGN.md §2):

* :mod:`repro.workloads.profiles` — per-benchmark statistical profiles
  (instruction mix, branch-site structure and predictability, dependency
  distances, memory locality, code footprint);
* :mod:`repro.workloads.synthetic` — a deterministic generator that
  turns a profile into a control-flow-graph *skeleton* (functions,
  blocks, loop/conditional/call sites at stable PCs) and walks it,
  emitting exactly the tagged B/M/O trace a ``sim-bpred`` run over a
  real program would produce — including wrong-path blocks injected
  with the same shared :class:`~repro.bpred.unit.BranchPredictorUnit`;
* :mod:`repro.workloads.kernels` — genuine assembly kernels (sort,
  string search, checksum, list traversal, matrix multiply) assembled
  for the PISA-like ISA and traced through the *real* functional
  simulator, used in examples and cross-validation tests.

Trace-driven timing depends only on the statistical structure of the
dynamic stream; the profiles encode that structure per benchmark, so
orderings and ratios in the reproduced tables are meaningful even
though absolute MIPS are not expected to match the paper's testbed.
"""

from repro.workloads.kernels import KERNELS, kernel_program, kernel_source
from repro.workloads.profiles import (
    BenchmarkProfile,
    SPECINT_PROFILES,
    get_profile,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.tracegen import (
    UnknownWorkloadError,
    WrittenTrace,
    generate_workload_trace,
    is_known_workload,
    write_workload_trace,
)

__all__ = [
    "BenchmarkProfile",
    "KERNELS",
    "SPECINT_PROFILES",
    "SyntheticWorkload",
    "UnknownWorkloadError",
    "WrittenTrace",
    "generate_workload_trace",
    "get_profile",
    "is_known_workload",
    "kernel_program",
    "kernel_source",
    "write_workload_trace",
]
