"""One shared entry point for turning a workload name into a trace.

Every trace-producing subsystem needs the same branch — "SPECINT
profile → synthetic generator, kernel → assemble + functional tracer"
— with the same front-end parameters threaded through (predictor, ROB,
IFQ, so trace and engine stay consistent).  The session facade, the
CLI, the benchmark harness, the multicore simulator and the sweep
runner all generate traces here, so a change to trace-generation
parameters happens in exactly one place.

Workloads are named components: the :data:`WORKLOADS` registry maps
each name to a :class:`WorkloadSource`, so new workloads (a new
profile, a new kernel, or an entirely new source kind) register once
and are immediately reachable from CLI flags, sweep specs, and
:class:`~repro.session.Simulation` specs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.functional.sim_bpred import SimBpred, TraceGenerationResult
from repro.trace.fileio import DEFAULT_SEGMENT_RECORDS, SegmentedTraceWriter
from repro.trace.stats import TraceStatistics
from repro.utils.registry import Registry
from repro.workloads.kernels import KERNELS, kernel_program
from repro.workloads.profiles import SPECINT_PROFILES, get_profile
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.config import ProcessorConfig


class UnknownWorkloadError(ValueError):
    """Raised for a workload name that is neither a SPECINT profile
    nor an assembly kernel."""

    def __init__(self, workload: str) -> None:
        super().__init__(
            f"unknown workload {workload!r}; benchmarks: "
            f"{', '.join(SPECINT_PROFILES)}; kernels: "
            f"{', '.join(KERNELS)}"
        )


def build_tracer(config: ProcessorConfig) -> SimBpred:
    """A functional tracer wired to one processor config.

    The generator's predictor/ROB/IFQ parameters must match the
    engine's (the consistency contract of Section V.A); this is the
    single place that wiring happens.
    """
    return SimBpred(
        predictor_config=config.predictor,
        rob_entries=config.rob_entries,
        ifq_entries=config.ifq_entries,
    )


@dataclass(frozen=True)
class SyntheticSource:
    """A statistical SPECINT profile, traced by the synthetic
    generator (starts at the default text base → ``start_pc`` None)."""

    profile_name: str
    kind: str = "synthetic"

    def start_pc(self, config: ProcessorConfig) -> int | None:
        """Engine start PC, known before generation begins."""
        return None

    def generate(self, config: ProcessorConfig, *, budget: int,
                 seed: int, sink=None,
                 ) -> tuple[TraceGenerationResult, int | None]:
        synthetic = SyntheticWorkload(
            get_profile(self.profile_name), seed=seed,
            predictor_config=config.predictor,
            rob_entries=config.rob_entries,
            ifq_entries=config.ifq_entries,
        )
        return synthetic.generate(budget, sink=sink), None


@dataclass(frozen=True)
class KernelSource:
    """A real assembly kernel, assembled and traced through the
    functional simulator (runs to completion; budget/seed unused)."""

    kernel_name: str
    kind: str = "kernel"

    def start_pc(self, config: ProcessorConfig) -> int | None:
        """Engine start PC, known before generation begins."""
        return kernel_program(self.kernel_name).entry

    def generate(self, config: ProcessorConfig, *, budget: int,
                 seed: int, sink=None,
                 ) -> tuple[TraceGenerationResult, int | None]:
        program = kernel_program(self.kernel_name)
        return (build_tracer(config).generate(program, sink=sink),
                program.entry)


#: Workload registry: name → trace source.  Populated from the profile
#: and kernel tables at import; anything registered later (a custom
#: profile, a new source kind) is equally reachable by name.
WORKLOADS: Registry = Registry("workload")
for _name in SPECINT_PROFILES:
    WORKLOADS.register(_name, SyntheticSource(_name))
for _name in KERNELS:
    WORKLOADS.register(_name, KernelSource(_name))
del _name


def _resolve_source(workload: str):
    """Workload name → source, falling back to the profile/kernel
    tables for names added after import (the pre-registry behaviour)."""
    if workload in WORKLOADS:
        return WORKLOADS.get(workload)
    if workload in SPECINT_PROFILES:
        return SyntheticSource(workload)
    if workload in KERNELS:
        return KernelSource(workload)
    raise UnknownWorkloadError(workload)


def is_known_workload(workload: str) -> bool:
    """True for any name :func:`generate_workload_trace` accepts."""
    return (workload in WORKLOADS or workload in SPECINT_PROFILES
            or workload in KERNELS)


class _ObservingSink:
    """Forwards generated records to a writer while measuring them.

    The adapter that lets the generators' ``sink`` mode stream into a
    :class:`~repro.trace.fileio.SegmentedTraceWriter`: each record is
    written and folded into a :class:`~repro.trace.stats.TraceStatistics`
    the moment it is produced, so nothing accumulates.
    """

    def __init__(self, writer, stats: TraceStatistics) -> None:
        self._writer = writer
        self._stats = stats

    def append(self, record) -> None:
        self._writer.append(record)
        self._stats.observe(record)

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return self._writer.record_count


@dataclass(frozen=True)
class WrittenTrace:
    """Outcome of :func:`write_workload_trace`."""

    path: Path
    record_count: int
    bytes_written: int
    start_pc: int | None
    trace_stats: TraceStatistics
    generation: TraceGenerationResult


def write_workload_trace(
    workload: str,
    config: ProcessorConfig,
    path: str | Path,
    *,
    budget: int = 30_000,
    seed: int = 7,
    segment_records: int = DEFAULT_SEGMENT_RECORDS,
    extra: dict | None = None,
) -> WrittenTrace:
    """Generate a workload's trace straight into a segmented v2 file.

    The generator's records stream through a
    :class:`~repro.trace.fileio.SegmentedTraceWriter` as they are
    produced — peak memory is one encoder segment, never the record
    list — which is what lets trace *files* exceed what a Python list
    of records could hold.  Metadata (predictor, workload, seed,
    start PC, plus ``extra``) is identical to the
    ``Simulation.save_trace`` path, so consumers cannot tell which
    path produced a file.

    The write is atomic: records stream to a ``.part`` sibling that
    is renamed over ``path`` only on success, so a failure mid-
    generation (or mid-write) never destroys an existing trace at
    ``path`` and never leaves a half-written file behind.

    Raises
    ------
    UnknownWorkloadError
        If ``workload`` names neither a profile nor a kernel.
    """
    source = _resolve_source(workload)
    stats = TraceStatistics()
    streams = hasattr(source, "start_pc")
    if streams:
        # Start PC is declared up front so it can live in the header
        # metadata while records stream past it.
        start_pc = source.start_pc(config)
        generation = None
    else:
        # A registered source without the streaming protocol: fall
        # back to in-memory generation, then stream the list out.
        generation, start_pc = source.generate(
            config, budget=budget, seed=seed)
    metadata = dict(extra or {})
    if start_pc is not None:
        metadata.setdefault("start_pc", start_pc)
    target = Path(path)
    part = target.with_name(target.name + ".part")
    try:
        with SegmentedTraceWriter(
            part, predictor=config.predictor, benchmark=workload,
            seed=seed, extra=metadata, segment_records=segment_records,
        ) as writer:
            if streams:
                generation, _ = source.generate(
                    config, budget=budget, seed=seed,
                    sink=_ObservingSink(writer, stats))
            else:
                sink = _ObservingSink(writer, stats)
                sink.extend(generation.records)
    except BaseException:
        part.unlink(missing_ok=True)
        raise
    os.replace(part, target)
    return WrittenTrace(
        path=target,
        record_count=writer.record_count,
        bytes_written=writer.bytes_written,
        start_pc=start_pc,
        trace_stats=stats,
        generation=generation,
    )


def generate_workload_trace(
    workload: str,
    config: ProcessorConfig,
    *,
    budget: int = 30_000,
    seed: int = 7,
) -> tuple[TraceGenerationResult, int | None]:
    """Generate the tagged trace for one workload name.

    Returns the generation result plus the engine start PC — a
    kernel's entry point, or ``None`` for synthetic workloads (which
    start at the default text base).  The generator's predictor/ROB/
    IFQ parameters are taken from ``config`` so the consistency
    contract (engine predictor == generation predictor) holds.

    Raises
    ------
    UnknownWorkloadError
        If ``workload`` names neither a profile nor a kernel.
    """
    return _resolve_source(workload).generate(config, budget=budget,
                                              seed=seed)
