"""One shared entry point for turning a workload name into a trace.

Four subsystems need the same branch — "SPECINT profile → synthetic
generator, kernel → assemble + functional tracer" — with the same
front-end parameters threaded through (predictor, ROB, IFQ, so trace
and engine stay consistent).  The CLI, the benchmark harness, the
multicore simulator and the sweep runner all generate traces here, so
a change to trace-generation parameters happens in exactly one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.functional.sim_bpred import SimBpred, TraceGenerationResult
from repro.workloads.kernels import KERNELS, kernel_program
from repro.workloads.profiles import SPECINT_PROFILES, get_profile
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.config import ProcessorConfig


class UnknownWorkloadError(ValueError):
    """Raised for a workload name that is neither a SPECINT profile
    nor an assembly kernel."""

    def __init__(self, workload: str) -> None:
        super().__init__(
            f"unknown workload {workload!r}; benchmarks: "
            f"{', '.join(SPECINT_PROFILES)}; kernels: "
            f"{', '.join(KERNELS)}"
        )


def is_known_workload(workload: str) -> bool:
    """True for any name :func:`generate_workload_trace` accepts."""
    return workload in SPECINT_PROFILES or workload in KERNELS


def generate_workload_trace(
    workload: str,
    config: "ProcessorConfig",
    *,
    budget: int = 30_000,
    seed: int = 7,
) -> tuple[TraceGenerationResult, int | None]:
    """Generate the tagged trace for one workload name.

    Returns the generation result plus the engine start PC — a
    kernel's entry point, or ``None`` for synthetic workloads (which
    start at the default text base).  The generator's predictor/ROB/
    IFQ parameters are taken from ``config`` so the consistency
    contract (engine predictor == generation predictor) holds.

    Raises
    ------
    UnknownWorkloadError
        If ``workload`` names neither a profile nor a kernel.
    """
    if workload in SPECINT_PROFILES:
        synthetic = SyntheticWorkload(
            get_profile(workload), seed=seed,
            predictor_config=config.predictor,
            rob_entries=config.rob_entries,
            ifq_entries=config.ifq_entries,
        )
        return synthetic.generate(budget), None
    if workload in KERNELS:
        program = kernel_program(workload)
        tracer = SimBpred(
            predictor_config=config.predictor,
            rob_entries=config.rob_entries,
            ifq_entries=config.ifq_entries,
        )
        return tracer.generate(program), program.entry
    raise UnknownWorkloadError(workload)
