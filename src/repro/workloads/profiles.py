"""Per-benchmark statistical profiles for the SPECINT substitution.

Each profile captures the handful of workload properties that
trace-driven timing actually depends on:

* the **instruction mix** (branch/load/store/multiply/divide fractions,
  remainder plain ALU) — published SPECINT CPU2000 characterization
  studies agree on these within a few percent;
* **branch-site structure**: how many static loop sites vs.
  data-dependent conditional sites, loop trip counts, per-site taken
  bias and the fraction of sites with short periodic patterns (which a
  two-level predictor captures and a bimodal one does not);
* **dependency distance** (mean producer→consumer distance in dynamic
  instructions) — the knob that sets exploitable ILP;
* **memory locality**: data working-set size, fraction of streaming
  (strided) vs. random accesses — the knob that sets L1 miss rates;
* **code footprint** (functions x blocks) — the knob that sets I-cache
  behaviour and BTB pressure.

The values below were chosen so the *relationships* the paper reports
hold (bzip2 fastest under perfect memory and most cache-sensitive;
parser slowest with its branch-heavy, pointer-chasing profile; vortex
call- and code-heavy), not to numerically clone SPEC.  EXPERIMENTS.md
records the outcome next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one synthetic benchmark."""

    name: str
    description: str

    # Instruction mix (fractions of all dynamic instructions; the
    # remainder after branches/loads/stores/mul/div is single-cycle ALU).
    branch_fraction: float = 0.13
    load_fraction: float = 0.24
    store_fraction: float = 0.09
    mul_fraction: float = 0.01
    div_fraction: float = 0.001

    # Control-flow structure.
    loop_weight: float = 0.5       # block terminator is a loop back-branch
    cond_weight: float = 0.35      # ... a data-dependent conditional
    call_weight: float = 0.10      # ... a function call
    jump_weight: float = 0.05      # ... an unconditional jump
    loop_trip_mean: float = 12.0   # mean iterations per loop entry
    cond_bias_low: float = 0.60    # per-site taken-bias range
    cond_bias_high: float = 0.95
    periodic_fraction: float = 0.4  # cond sites with short repeating patterns
    periodic_max_period: int = 6

    # Code footprint.
    function_count: int = 24
    blocks_per_function: int = 8

    # Data-flow structure.
    dep_distance_mean: float = 3.0  # mean producer→consumer distance

    # Memory locality.  Non-streamed accesses hit a small *hot region*
    # (temporal locality: stack frames, hot hash buckets) with
    # probability ``hot_fraction``; the rest scatter over the full
    # working set.
    working_set_bytes: int = 512 * 1024
    stream_fraction: float = 0.65   # strided accesses; rest random
    stream_stride: int = 4
    stream_count: int = 4
    stream_region_bytes: int = 64 * 1024  # per-stream reuse window
    hot_fraction: float = 0.75      # random accesses landing in hot region
    hot_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        mix = (self.branch_fraction + self.load_fraction
               + self.store_fraction + self.mul_fraction + self.div_fraction)
        if not 0.0 < mix < 1.0:
            raise ValueError(
                f"{self.name}: instruction mix fractions sum to {mix:.3f}"
            )
        weights = (self.loop_weight + self.cond_weight
                   + self.call_weight + self.jump_weight)
        if weights <= 0:
            raise ValueError(f"{self.name}: terminator weights must be positive")
        if self.working_set_bytes <= 0 or self.function_count <= 0:
            raise ValueError(f"{self.name}: structural sizes must be positive")

    @property
    def alu_fraction(self) -> float:
        """Plain single-cycle ALU share (the remainder of the mix)."""
        return 1.0 - (self.branch_fraction + self.load_fraction
                      + self.store_fraction + self.mul_fraction
                      + self.div_fraction)

    @property
    def mean_block_length(self) -> float:
        """Mean non-branch instructions per basic block."""
        return max(1.0, (1.0 - self.branch_fraction) / self.branch_fraction)


#: The five SPECINT CPU2000 programs of Tables 1 and 3.
SPECINT_PROFILES: dict[str, BenchmarkProfile] = {
    "gzip": BenchmarkProfile(
        name="gzip",
        description=(
            "LZ77 compression: tight, highly predictable match loops over "
            "a small sliding window; modest code footprint."
        ),
        branch_fraction=0.12, load_fraction=0.21, store_fraction=0.08,
        mul_fraction=0.004, div_fraction=0.0005,
        loop_weight=0.62, cond_weight=0.26, call_weight=0.07,
        jump_weight=0.05,
        loop_trip_mean=14.0, cond_bias_low=0.74, cond_bias_high=0.97,
        periodic_fraction=0.52, periodic_max_period=4,
        function_count=16, blocks_per_function=7,
        dep_distance_mean=3.2,
        working_set_bytes=192 * 1024, stream_fraction=0.80,
        stream_stride=4, stream_count=2,
        stream_region_bytes=4 * 1024,
        hot_fraction=0.96, hot_bytes=8 * 1024,
    ),
    "bzip2": BenchmarkProfile(
        name="bzip2",
        description=(
            "Burrows-Wheeler compression: long sorting/counting loops with "
            "high ILP and excellent predictability, but a data working set "
            "far beyond 32 KB — the most cache-sensitive of the five."
        ),
        branch_fraction=0.11, load_fraction=0.26, store_fraction=0.10,
        mul_fraction=0.006, div_fraction=0.0004,
        loop_weight=0.68, cond_weight=0.22, call_weight=0.05,
        jump_weight=0.05,
        loop_trip_mean=22.0, cond_bias_low=0.75, cond_bias_high=0.98,
        periodic_fraction=0.55, periodic_max_period=4,
        function_count=12, blocks_per_function=6,
        dep_distance_mean=3.5,
        working_set_bytes=4 * 1024 * 1024, stream_fraction=0.45,
        stream_stride=4, stream_count=4,
        stream_region_bytes=256 * 1024,
        hot_fraction=0.96, hot_bytes=16 * 1024,
    ),
    "parser": BenchmarkProfile(
        name="parser",
        description=(
            "Link-grammar natural-language parser: branch-dominated, "
            "pointer-chasing dictionary lookups, poor branch bias, large "
            "code footprint — the ILP-poorest of the five."
        ),
        branch_fraction=0.19, load_fraction=0.25, store_fraction=0.08,
        mul_fraction=0.003, div_fraction=0.0003,
        loop_weight=0.34, cond_weight=0.48, call_weight=0.12,
        jump_weight=0.06,
        loop_trip_mean=5.0, cond_bias_low=0.66, cond_bias_high=0.91,
        periodic_fraction=0.22, periodic_max_period=6,
        function_count=48, blocks_per_function=10,
        dep_distance_mean=2.3,
        working_set_bytes=1024 * 1024, stream_fraction=0.30,
        stream_stride=4, stream_count=2,
        stream_region_bytes=64 * 1024,
        hot_fraction=0.94, hot_bytes=12 * 1024,
    ),
    "vortex": BenchmarkProfile(
        name="vortex",
        description=(
            "Object-oriented database: call-heavy with a very large code "
            "footprint (I-cache and BTB pressure), well-biased branches, "
            "structured record accesses."
        ),
        branch_fraction=0.16, load_fraction=0.27, store_fraction=0.12,
        mul_fraction=0.003, div_fraction=0.0002,
        loop_weight=0.30, cond_weight=0.40, call_weight=0.22,
        jump_weight=0.08,
        loop_trip_mean=6.0, cond_bias_low=0.88, cond_bias_high=0.995,
        periodic_fraction=0.55, periodic_max_period=5,
        function_count=96, blocks_per_function=9,
        dep_distance_mean=4.6,
        working_set_bytes=2 * 1024 * 1024, stream_fraction=0.55,
        stream_stride=4, stream_count=2,
        stream_region_bytes=48 * 1024,
        hot_fraction=0.95, hot_bytes=12 * 1024,
    ),
    "vpr": BenchmarkProfile(
        name="vpr",
        description=(
            "FPGA placement and routing: randomized netlist traversal "
            "(simulated annealing), moderate predictability, scattered "
            "medium-size working set."
        ),
        branch_fraction=0.13, load_fraction=0.28, store_fraction=0.06,
        mul_fraction=0.035, div_fraction=0.004,
        loop_weight=0.46, cond_weight=0.38, call_weight=0.10,
        jump_weight=0.06,
        loop_trip_mean=9.0, cond_bias_low=0.58, cond_bias_high=0.92,
        periodic_fraction=0.30, periodic_max_period=6,
        function_count=32, blocks_per_function=8,
        dep_distance_mean=2.0,
        working_set_bytes=768 * 1024, stream_fraction=0.40,
        stream_stride=4, stream_count=2,
        stream_region_bytes=4 * 1024,
        hot_fraction=0.985, hot_bytes=8 * 1024,
    ),
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up one of the five SPECINT profiles by name."""
    try:
        return SPECINT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SPECINT_PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
