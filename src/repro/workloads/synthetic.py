"""Synthetic trace generator: profile → CFG skeleton → tagged trace.

The generator builds a *static program skeleton* (functions made of
basic blocks, each ending in a loop back-branch, data-dependent
conditional, call, jump, or return — all at stable synthetic PCs) and
then *walks* it dynamically:

* loop sites iterate with per-entry trip counts;
* conditional sites follow per-site biased-random or short periodic
  outcome processes (periodic patterns are what a two-level predictor
  learns and a bimodal one cannot);
* calls/returns maintain a real call stack, exercising the RAS;
* block bodies are filled from the profile's instruction mix, with
  register dependencies drawn from the profile's dependency-distance
  distribution and memory addresses from its locality model.

Because branch sites live at stable PCs and the walker trains the same
:class:`~repro.bpred.unit.BranchPredictorUnit` the ReSim engine uses,
the trace carries exactly the wrong-path blocks ReSim's own predictions
will follow — the same consistency invariant as the functional
``sim-bpred`` flow (:mod:`repro.functional.sim_bpred`).

Everything is deterministic in the seed: the same
``(profile, seed, budget, predictor_config)`` produces a bit-identical
trace on any platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpred.unit import BranchPredictorUnit, PAPER_PREDICTOR, PredictorConfig
from repro.functional.sim_bpred import TraceGenerationResult
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import BranchKind, FuClass
from repro.isa.program import DATA_BASE, TEXT_BASE
from repro.trace.record import (
    BranchRecord,
    MemoryRecord,
    OtherRecord,
    TraceRecord,
)
from repro.trace.wrongpath import conservative_block_size
from repro.utils.rng import XorShiftRNG
from repro.workloads.profiles import BenchmarkProfile

#: Gap between consecutive synthetic functions, in bytes.
_FUNCTION_GAP = 64

#: Registers used as stable "globals" (address bases, long-lived values).
_GLOBAL_REGS = (16, 17, 18, 19, 20, 21, 22, 23)  # $s0..$s7

#: Registers cycled through as instruction destinations.
_DEST_REGS = tuple(range(8, 16)) + (24, 25)      # $t0..$t9


def _stable_name_hash(name: str) -> int:
    """FNV-1a over the benchmark name.

    ``hash(str)`` is randomized per interpreter process, which would
    silently break cross-run trace determinism; this hash is stable.
    """
    value = 0x811C9DC5
    for byte in name.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFF_FFFF
    return value


@dataclass(frozen=True)
class _Terminator:
    """Static description of how a basic block ends."""

    kind: str                    # "loop" | "cond" | "call" | "jump" | "ret"
    pc: int
    target_pc: int = 0           # branch/jump/call destination
    target_block: int = 0        # index of the taken-successor block
    callee: int = -1             # function index for calls
    trip_mean: float = 0.0       # loops
    bias: float = 0.5            # biased-random conditionals
    pattern: tuple[bool, ...] = ()  # periodic conditionals (empty = random)


@dataclass(frozen=True)
class _Block:
    """One static basic block of the skeleton."""

    start_pc: int
    body_length: int
    terminator: _Terminator

    @property
    def end_pc(self) -> int:
        """PC just past the terminator."""
        return self.start_pc + (self.body_length + 1) * INSTRUCTION_BYTES


@dataclass(frozen=True)
class _Function:
    index: int
    base_pc: int
    blocks: tuple[_Block, ...]


class SyntheticWorkload:
    """Deterministic synthetic benchmark for one profile.

    Parameters
    ----------
    profile:
        The benchmark's statistical description.
    seed:
        PRNG seed; the skeleton and the walk both derive from it.
    predictor_config:
        Must match the ReSim instance that will consume the trace (the
        generator injects wrong-path blocks where *this* predictor
        mispredicts).
    rob_entries, ifq_entries:
        Sizes bounding the conservative wrong-path block.
    """

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 2009,
        predictor_config: PredictorConfig = PAPER_PREDICTOR,
        rob_entries: int = 16,
        ifq_entries: int = 4,
    ) -> None:
        self._profile = profile
        self._seed = seed
        self._config = predictor_config
        self._block_limit = conservative_block_size(rob_entries, ifq_entries)

        root = XorShiftRNG(seed ^ _stable_name_hash(profile.name))
        self._rng_build = root.fork(1)
        self._rng_mix = root.fork(2)
        self._rng_deps = root.fork(3)
        self._rng_mem = root.fork(4)
        self._rng_branch = root.fork(5)
        self._rng_wrongpath = root.fork(6)

        self._functions = self._build_skeleton()
        self._block_by_pc: dict[int, tuple[int, int]] = {}
        for function in self._functions:
            for block_index, block in enumerate(function.blocks):
                self._block_by_pc[block.start_pc] = (function.index, block_index)

        # Memory-locality state: each stream cycles through its own
        # reuse window (region) placed somewhere in the working set.
        region = min(profile.stream_region_bytes, profile.working_set_bytes)
        self._stream_region = max(64, region)
        self._stream_bases = []
        self._stream_offsets = []
        for _ in range(profile.stream_count):
            limit = max(0, profile.working_set_bytes - self._stream_region)
            self._stream_bases.append(
                self._rng_mem.randint(0, max(0, limit)) & ~63
            )
            self._stream_offsets.append(0)

        # Recent destination registers, oldest first (dependency model).
        self._recent_dests: list[int] = list(_GLOBAL_REGS)

        # Dynamic per-site state.
        self._loop_remaining: dict[int, int] = {}
        self._pattern_phase: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Skeleton construction
    # ------------------------------------------------------------------

    def _build_skeleton(self) -> tuple[_Function, ...]:
        profile = self._profile
        rng = self._rng_build
        functions: list[_Function] = []
        next_base = TEXT_BASE

        for func_index in range(profile.function_count):
            block_count = max(
                2, rng.geometric(float(profile.blocks_per_function))
            )
            block_count = min(block_count, 3 * profile.blocks_per_function)
            blocks: list[_Block] = []
            pc = next_base
            # First pass: pick block lengths so target PCs are known.
            lengths = [
                min(32, max(1, rng.geometric(profile.mean_block_length)))
                for _ in range(block_count)
            ]
            starts = []
            cursor = pc
            for length in lengths:
                starts.append(cursor)
                cursor += (length + 1) * INSTRUCTION_BYTES

            for block_index in range(block_count):
                term_pc = (starts[block_index]
                           + lengths[block_index] * INSTRUCTION_BYTES)
                terminator = self._build_terminator(
                    rng, func_index, block_index, block_count, starts, term_pc
                )
                blocks.append(_Block(
                    start_pc=starts[block_index],
                    body_length=lengths[block_index],
                    terminator=terminator,
                ))
            functions.append(_Function(
                index=func_index, base_pc=next_base, blocks=tuple(blocks)
            ))
            next_base = cursor + _FUNCTION_GAP

        return tuple(functions)

    def _build_terminator(
        self,
        rng: XorShiftRNG,
        func_index: int,
        block_index: int,
        block_count: int,
        starts: list[int],
        term_pc: int,
    ) -> _Terminator:
        profile = self._profile
        last = block_index == block_count - 1

        if func_index == 0:
            # Function 0 is the driver (a real program's main loop):
            # alternate blocks call out to worker functions, the last
            # block jumps back to the head.  This guarantees the whole
            # skeleton — and therefore the call/return structure —
            # actually runs, without driver calls dominating the
            # dynamic branch mix.
            if last:
                return _Terminator(kind="jump", pc=term_pc,
                                   target_pc=starts[0], target_block=0)
            if profile.function_count > 1 and block_index % 2 == 0:
                callee = rng.randint(1, profile.function_count - 1)
                return _Terminator(kind="call", pc=term_pc, callee=callee)
            return _Terminator(kind="jump", pc=term_pc,
                               target_pc=starts[block_index + 1],
                               target_block=block_index + 1)

        if last:
            return _Terminator(kind="ret", pc=term_pc)

        # Profile weights describe the *dynamic* branch mix.  A loop site
        # executes its branch ~trip_mean times per visit while the other
        # kinds execute once, so the static draw down-weights loops
        # accordingly.
        weights = {
            "loop": profile.loop_weight / max(1.0, profile.loop_trip_mean),
            "cond": profile.cond_weight,
            "call": profile.call_weight,
            "jump": profile.jump_weight,
        }
        kind = rng.choose_weighted(weights)

        if kind == "call":
            # Acyclic call graph: only higher-indexed callees, so call
            # depth is bounded by the function count.
            if func_index + 1 < profile.function_count:
                callee = rng.randint(func_index + 1,
                                     profile.function_count - 1)
                return _Terminator(kind="call", pc=term_pc, callee=callee)
            kind = "jump"  # highest function has nobody to call

        if kind == "loop":
            return _Terminator(
                kind="loop", pc=term_pc,
                target_pc=starts[block_index], target_block=block_index,
                trip_mean=max(1.5, profile.loop_trip_mean
                              * (0.5 + rng.random())),
            )

        if kind == "cond":
            # Short forward skip (an if/else "diamond"): both outcomes
            # stay on the main path through the function, so every
            # block — including call sites and the final return — gets
            # visited and the dynamic mix matches the static one.
            skip = 1 + rng.randint(1, 2)
            target_block = min(block_index + skip, block_count - 1)
            bias = (profile.cond_bias_low
                    + rng.random()
                    * (profile.cond_bias_high - profile.cond_bias_low))
            pattern: tuple[bool, ...] = ()
            if rng.chance(profile.periodic_fraction):
                period = rng.randint(2, max(2, profile.periodic_max_period))
                taken_slots = max(1, round(bias * period))
                pattern = tuple(i < taken_slots for i in range(period))
            return _Terminator(
                kind="cond", pc=term_pc,
                target_pc=starts[target_block], target_block=target_block,
                bias=bias, pattern=pattern,
            )

        # Unconditional forward jump over at most one block (a goto or
        # else-join); long skips would orphan the blocks in between.
        target_block = min(block_index + rng.randint(1, 2), block_count - 1)
        return _Terminator(kind="jump", pc=term_pc,
                           target_pc=starts[target_block],
                           target_block=target_block)

    # ------------------------------------------------------------------
    # Instruction-content sampling
    # ------------------------------------------------------------------

    def _sample_source(self, rng: XorShiftRNG) -> int:
        """Pick a source register via the dependency-distance model."""
        distance = rng.geometric(self._profile.dep_distance_mean)
        recents = self._recent_dests
        if distance <= len(recents):
            return recents[-distance]
        return _GLOBAL_REGS[rng.randint(0, len(_GLOBAL_REGS) - 1)]

    def _push_dest(self, register: int) -> None:
        self._recent_dests.append(register)
        if len(self._recent_dests) > 64:
            del self._recent_dests[:32]

    def _next_dest(self, rng: XorShiftRNG) -> int:
        return _DEST_REGS[rng.randint(0, len(_DEST_REGS) - 1)]

    def _sample_address(self, rng: XorShiftRNG, advance: bool) -> int:
        """Draw a data address from the locality model."""
        profile = self._profile
        if rng.chance(profile.stream_fraction) and self._stream_bases:
            index = rng.randint(0, len(self._stream_bases) - 1)
            offset = self._stream_bases[index] + self._stream_offsets[index]
            if advance:
                self._stream_offsets[index] = (
                    (self._stream_offsets[index] + profile.stream_stride)
                    % self._stream_region
                )
        elif rng.chance(profile.hot_fraction):
            # Temporal locality: stack frames, hot buckets, counters.
            offset = rng.randint(0, profile.hot_bytes - 4) & ~3
        else:
            offset = rng.randint(0, profile.working_set_bytes - 4) & ~3
        return (DATA_BASE + offset) & 0xFFFF_FFFF

    def _body_record(self, rng_mix: XorShiftRNG, rng_deps: XorShiftRNG,
                     rng_mem: XorShiftRNG, tag: bool,
                     advance_streams: bool) -> TraceRecord:
        """Sample one non-branch instruction from the profile mix."""
        profile = self._profile
        non_branch = 1.0 - profile.branch_fraction
        weights = {
            "load": profile.load_fraction / non_branch,
            "store": profile.store_fraction / non_branch,
            "mul": profile.mul_fraction / non_branch,
            "div": profile.div_fraction / non_branch,
        }
        weights["alu"] = max(0.0, 1.0 - sum(weights.values()))
        kind = rng_mix.choose_weighted(weights)

        if kind == "load":
            dest = self._next_dest(rng_deps)
            base = _GLOBAL_REGS[rng_deps.randint(0, len(_GLOBAL_REGS) - 1)]
            record: TraceRecord = MemoryRecord(
                tag=tag, fu=FuClass.LOAD, dest=dest, src1=base,
                address=self._sample_address(rng_mem, advance_streams),
                size_log2=2,
            )
            if not tag:
                self._push_dest(dest)
            return record
        if kind == "store":
            base = _GLOBAL_REGS[rng_deps.randint(0, len(_GLOBAL_REGS) - 1)]
            data = self._sample_source(rng_deps)
            return MemoryRecord(
                tag=tag, fu=FuClass.STORE, src1=base, src2=data,
                is_store=True,
                address=self._sample_address(rng_mem, advance_streams),
                size_log2=2,
            )
        if kind in ("mul", "div"):
            fu = FuClass.MUL if kind == "mul" else FuClass.DIV
            record = OtherRecord(
                tag=tag, fu=fu,
                src1=self._sample_source(rng_deps),
                src2=self._sample_source(rng_deps),
            )
            # HI/LO destinations are implicit in the FU class.
            return record
        dest = self._next_dest(rng_deps)
        record = OtherRecord(
            tag=tag, fu=FuClass.ALU, dest=dest,
            src1=self._sample_source(rng_deps),
            src2=self._sample_source(rng_deps),
        )
        if not tag:
            self._push_dest(dest)
        return record

    # ------------------------------------------------------------------
    # Branch outcome processes
    # ------------------------------------------------------------------

    def _loop_taken(self, terminator: _Terminator) -> bool:
        remaining = self._loop_remaining.get(terminator.pc)
        if remaining is None:
            trips = max(1, self._rng_branch.geometric(terminator.trip_mean))
            remaining = trips
        remaining -= 1
        if remaining > 0:
            self._loop_remaining[terminator.pc] = remaining
            return True
        self._loop_remaining.pop(terminator.pc, None)
        return False

    def _cond_taken(self, terminator: _Terminator) -> bool:
        if terminator.pattern:
            phase = self._pattern_phase.get(terminator.pc, 0)
            self._pattern_phase[terminator.pc] = phase + 1
            return terminator.pattern[phase % len(terminator.pattern)]
        return self._rng_branch.chance(terminator.bias)

    # ------------------------------------------------------------------
    # The dynamic walk
    # ------------------------------------------------------------------

    def generate(self, instruction_budget: int = 100_000,
                 sink=None) -> TraceGenerationResult:
        """Walk the skeleton and emit the tagged trace.

        ``instruction_budget`` counts correct-path instructions; the
        returned trace additionally contains the injected wrong-path
        blocks.  ``sink`` (any object with ``append``/``extend``)
        receives the records instead of the result's in-memory list —
        the streaming-generation mode used by
        :func:`repro.workloads.tracegen.write_workload_trace`.
        """
        if instruction_budget <= 0:
            raise ValueError("instruction_budget must be positive")
        predictor = BranchPredictorUnit(self._config)
        result = TraceGenerationResult(
            records=[] if sink is None else sink)
        records = result.records

        func_index, block_index = 0, 0
        call_stack: list[tuple[int, int]] = []

        while result.committed_instructions < instruction_budget:
            function = self._functions[func_index]
            block = function.blocks[block_index]

            # Block body.
            for _ in range(block.body_length):
                records.append(self._body_record(
                    self._rng_mix, self._rng_deps, self._rng_mem,
                    tag=False, advance_streams=True,
                ))
                result.committed_instructions += 1

            # Terminator.
            terminator = block.terminator
            func_index, block_index = self._execute_terminator(
                predictor, result, function, block_index, terminator,
                call_stack,
            )

        result.output = (
            f"synthetic:{self._profile.name}:seed={self._seed}"
        )
        return result

    def _execute_terminator(
        self,
        predictor: BranchPredictorUnit,
        result: TraceGenerationResult,
        function: _Function,
        block_index: int,
        terminator: _Terminator,
        call_stack: list[tuple[int, int]],
    ) -> tuple[int, int]:
        """Emit the terminator's record(s) and return the next location."""
        kind = terminator.kind
        profile_funcs = self._functions

        if kind in ("loop", "cond"):
            taken = (self._loop_taken(terminator) if kind == "loop"
                     else self._cond_taken(terminator))
            self._emit_branch(
                predictor, result, terminator.pc, BranchKind.COND,
                taken, terminator.target_pc,
            )
            if taken:
                return function.index, terminator.target_block
            return function.index, block_index + 1

        if kind == "jump":
            self._emit_branch(
                predictor, result, terminator.pc, BranchKind.JUMP,
                True, terminator.target_pc,
            )
            return function.index, terminator.target_block

        if kind == "call":
            callee = profile_funcs[terminator.callee]
            self._emit_branch(
                predictor, result, terminator.pc, BranchKind.CALL,
                True, callee.base_pc,
            )
            call_stack.append((function.index, block_index + 1))
            return callee.index, 0

        if kind == "ret":
            if call_stack:
                ret_func, ret_block = call_stack.pop()
            else:  # underflow cannot happen with an acyclic call graph
                ret_func, ret_block = 0, 0
            target_pc = (profile_funcs[ret_func]
                         .blocks[ret_block].start_pc)
            self._emit_branch(
                predictor, result, terminator.pc, BranchKind.RETURN,
                True, target_pc,
            )
            return ret_func, ret_block

        raise AssertionError(f"unknown terminator kind {kind!r}")

    def _emit_branch(
        self,
        predictor: BranchPredictorUnit,
        result: TraceGenerationResult,
        pc: int,
        kind: BranchKind,
        taken: bool,
        target: int,
    ) -> None:
        """Emit a branch record, resolve/train, inject wrong path."""
        src1 = self._sample_source(self._rng_deps)
        result.records.append(BranchRecord(
            fu=FuClass.BRANCH, src1=src1,
            branch_kind=kind, taken=taken, target=target & 0xFFFF_FFFF,
        ))
        result.committed_instructions += 1
        result.branches += 1

        resolution = predictor.resolve(pc, kind, taken, target & 0xFFFF_FFFF)
        predictor.update(pc, kind, taken, target & 0xFFFF_FFFF, resolution)
        if resolution.misfetch:
            result.misfetches += 1
        if resolution.mispredicted:
            result.mispredictions += 1
            start = resolution.wrong_path_start
            assert start is not None
            block = self._wrong_path_block(start)
            result.wrong_path_instructions += len(block)
            result.records.extend(block)

    # ------------------------------------------------------------------
    # Wrong-path synthesis (mirrors sim_bpred._wrong_path_block)
    # ------------------------------------------------------------------

    def _wrong_path_block(self, start_pc: int) -> list[TraceRecord]:
        """Statically walk the skeleton from ``start_pc``, tagged."""
        block_records: list[TraceRecord] = []
        location = self._block_by_pc.get(start_pc)
        wp_rng = self._rng_wrongpath
        while location is not None and len(block_records) < self._block_limit:
            func_index, block_index = location
            block = self._functions[func_index].blocks[block_index]
            for _ in range(block.body_length):
                if len(block_records) >= self._block_limit:
                    return block_records
                block_records.append(self._body_record(
                    wp_rng, wp_rng, wp_rng, tag=True, advance_streams=False,
                ))
            if len(block_records) >= self._block_limit:
                return block_records
            terminator = block.terminator
            if terminator.kind in ("loop", "cond"):
                block_records.append(BranchRecord(
                    tag=True, fu=FuClass.BRANCH,
                    src1=self._sample_source(wp_rng),
                    branch_kind=BranchKind.COND,
                    taken=False, target=terminator.target_pc & 0xFFFF_FFFF,
                ))
                # Sequential wrong-path fetch: fall through.
                if block_index + 1 < len(self._functions[func_index].blocks):
                    location = (func_index, block_index + 1)
                else:
                    location = None
            else:
                # Unconditional transfer ends the wrong-path block (a
                # control-flow bubble stalls sequential fetch anyway).
                branch_kind = {
                    "jump": BranchKind.JUMP,
                    "call": BranchKind.CALL,
                    "ret": BranchKind.RETURN,
                }[terminator.kind]
                block_records.append(BranchRecord(
                    tag=True, fu=FuClass.BRANCH,
                    src1=self._sample_source(wp_rng),
                    branch_kind=branch_kind,
                    taken=False, target=terminator.target_pc & 0xFFFF_FFFF,
                ))
                location = None
        return block_records

    # ------------------------------------------------------------------
    # Introspection helpers (used by examples and tests)
    # ------------------------------------------------------------------

    @property
    def profile(self) -> BenchmarkProfile:
        return self._profile

    @property
    def code_footprint_bytes(self) -> int:
        """Total static code size of the skeleton."""
        last = self._functions[-1]
        return last.blocks[-1].end_pc - TEXT_BASE

    @property
    def static_branch_sites(self) -> int:
        """Number of distinct branch PCs in the skeleton."""
        return sum(len(f.blocks) for f in self._functions)

    def describe(self) -> str:
        return (
            f"{self._profile.name}: {len(self._functions)} functions, "
            f"{self.static_branch_sites} blocks, "
            f"{self.code_footprint_bytes / 1024:.1f} KB code, "
            f"{self._profile.working_set_bytes / 1024:.0f} KB data"
        )
