"""The :class:`Simulation` facade — one entry point for a ReSim run.

A run of the simulator is *source → engine → projection*: a trace
source (synthetic workload, assembled kernel, stored trace file, raw
records, or a live program through the functional tracer), the timing
engine on one :class:`~repro.core.config.ProcessorConfig`, and an
optional FPGA throughput projection.  Before this facade existed,
every consumer hand-wired those pieces; now they all construct a
:class:`Simulation` — fluently::

    result = (Simulation.for_workload("gzip")
              .with_budget(30_000)
              .with_devices("xc4vlx40")
              .run())

or declaratively, from a plain dict that can live in a JSON file, a
sweep manifest, or a message to a remote runner::

    result = Simulation.from_spec({
        "workload": "gzip",
        "budget": 30_000,
        "config": "4wide-perfect",
        "devices": ["xc4vlx40"],
    }).run()

Both forms produce bit-identical statistics to the hand-wired
``generate_workload_trace`` + ``ReSimEngine(...).run()`` they replace
(the test suite asserts this), because they *are* that wiring, done
once.

Components are named through registries
(:mod:`repro.utils.registry`): processor configs (:data:`CONFIGS`),
FPGA devices (:data:`repro.fpga.device.DEVICES`), workloads
(:data:`repro.workloads.tracegen.WORKLOADS`), predictor schemes
(:data:`repro.bpred.unit.PREDICTORS`) and cache replacement policies
(:data:`repro.cache.replacement.REPLACEMENT_POLICIES`), so a spec and
a CLI flag mean the same thing everywhere and new components register
without touching call sites.

Instrumentation rides along: :meth:`Simulation.with_observer` attaches
:class:`~repro.core.engine.EngineObserver` hooks, and
:meth:`Simulation.with_warmup` / :meth:`Simulation.with_roi` /
:meth:`Simulation.with_stop_when` control the measured window.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, replace
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence

from repro.core.config import (
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
)
from repro.core.engine import EngineObserver, ReSimEngine, SimulationResult
from repro.core.specialize import (
    ENGINES,
    EngineRequest,
    SpecializedEngine,
    create_engine,
)
from repro.fpga.device import DEVICES, FpgaDevice
from repro.isa.program import Program
from repro.serialize import (
    canonical_digest,
    config_from_dict,
    config_to_dict,
    stats_to_dict,
)
from repro.trace.fileio import (
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.trace.record import TraceRecord
from repro.trace.source import FileSource, InMemorySource, TraceSource
from repro.trace.stats import TraceStatistics, measure_trace
from repro.utils.registry import Registry, RegistryError
from repro.workloads.tracegen import build_tracer, generate_workload_trace

#: Named processor configurations (Table 1's two machines).  Register
#: more (``CONFIGS.register("my-config", ProcessorConfig(...))``) and
#: they become valid ``--config`` CLI values and spec strings.
CONFIGS: Registry[ProcessorConfig] = Registry("config")
CONFIGS.register("4wide-perfect", PAPER_4WIDE_PERFECT)
CONFIGS.register("2wide-cache", PAPER_2WIDE_CACHE)

#: Spec schema version; bump on incompatible layout changes.
SPEC_SCHEMA = 1

_SPEC_KEYS = frozenset((
    "schema", "workload", "trace_file", "config", "budget", "seed",
    "start_pc", "update_predictor_at_commit", "warmup_instructions",
    "roi_instructions", "devices", "max_cycles", "streaming",
    "segments", "engine",
))


def _coerce_engine(value: object) -> str:
    """Validate an engine-tier name from a spec or keyword."""
    if not isinstance(value, str):
        raise SessionError(
            f"spec 'engine' must be a registered engine-tier name, "
            f"got {value!r}")
    try:
        ENGINES.get(value)
    except RegistryError as error:
        raise SessionError(str(error)) from None
    return value


def _coerce_segments(value: object) -> tuple[int, int]:
    """Validate a ``(lo, hi)`` segment range from a spec or keyword."""
    if (not isinstance(value, Sequence) or isinstance(value, (str, bytes))
            or len(value) != 2):
        raise SessionError(
            f"a segment range is a (lo, hi) pair of segment indices, "
            f"got {value!r}"
        )
    try:
        lo, hi = int(value[0]), int(value[1])
    except (TypeError, ValueError):
        raise SessionError(
            f"segment range bounds must be integers, got {value!r}"
        ) from None
    if lo < 0 or hi <= lo:
        # An empty range (lo == hi) is rejected too: it would simulate
        # zero records yet produce a structurally valid result document
        # that checkpoints and caches as a "successful" run.
        raise SessionError(
            f"segment range needs 0 <= lo < hi, got ({lo}, {hi})")
    return (lo, hi)


class SessionError(ValueError):
    """Raised for malformed simulation specs or misused facades."""


@dataclass(frozen=True)
class PreparedTrace:
    """A prepared trace the engine can run — materialized or streamed.

    Exactly one of ``records`` (in-memory sequence) and ``source``
    (a rewindable streaming :class:`~repro.trace.source.TraceSource`,
    e.g. a :class:`~repro.trace.source.FileSource`) is set; consumers
    call :meth:`open_source` for a fresh engine-ready cursor either
    way, and only code that truly needs the whole list (``save_trace``)
    calls :meth:`materialize`.

    ``trace_stats`` carries record-stream statistics
    (bits/instruction etc.) when the source computed them anyway;
    :meth:`Simulation.trace_statistics` fills it on demand otherwise.
    ``predictor_mismatch`` is set for stored traces whose recorded
    generation predictor differs from the engine's — the Tag bits may
    then not match the engine's predictions (callers decide whether
    to warn or refuse).
    """

    records: Sequence[TraceRecord] | None
    start_pc: int | None
    trace_stats: TraceStatistics | None = None
    predictor_mismatch: bool = False
    source: TraceSource | None = None

    def __post_init__(self) -> None:
        if (self.records is None) == (self.source is None):
            raise SessionError(
                "PreparedTrace needs exactly one of records/source")

    @property
    def record_count(self) -> int:
        """Stream length without materializing."""
        if self.records is not None:
            return len(self.records)
        return self.source.total_records

    def open_source(self) -> TraceSource:
        """A fresh cursor over the prepared trace (every call rewinds,
        so repeated ``run()``s see the full stream)."""
        if self.records is not None:
            return InMemorySource(self.records)
        return self.source.fresh()

    def materialize(self) -> Sequence[TraceRecord]:
        """The full record list (decodes a streamed source)."""
        if self.records is not None:
            return self.records
        return list(self.source.fresh())


# ---------------------------------------------------------------------
# Trace sources.  Each knows how to prepare an engine-ready trace
# (in-memory records or a streaming TraceSource) and whether it can be
# described in a serializable spec.


@dataclass(frozen=True)
class _WorkloadSource:
    name: str

    def prepare(self, sim: Simulation) -> PreparedTrace:
        generation, start_pc = generate_workload_trace(
            self.name, sim.config, budget=sim.budget, seed=sim.seed)
        return PreparedTrace(records=generation.records,
                             start_pc=start_pc,
                             trace_stats=generation.statistics())

    def spec_entry(self) -> dict:
        return {"workload": self.name}

    def describe(self) -> str:
        return f"workload {self.name!r}"


@dataclass(frozen=True)
class _TraceFileSource:
    path: str
    streaming: bool = True
    segments: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.segments is not None and not self.streaming:
            raise SessionError(
                "a segment range requires streaming (the in-memory "
                "path decodes the whole file); drop streaming=False "
                "or the segment range"
            )

    def prepare(self, sim: Simulation) -> PreparedTrace:
        if self.streaming:
            source = FileSource(self.path, segments=self.segments)
            header = source.header
            records = None
        else:
            header, records = read_trace_file(self.path)
            source = None
        stored = header.predictor_config
        return PreparedTrace(
            records=records,
            source=source,
            start_pc=header.metadata.get("start_pc"),
            predictor_mismatch=(stored is not None
                                and stored != sim.config.predictor),
        )

    def spec_entry(self) -> dict:
        entry: dict = {"trace_file": self.path}
        if not self.streaming:
            entry["streaming"] = False
        if self.segments is not None:
            entry["segments"] = list(self.segments)
        return entry

    def describe(self) -> str:
        mode = "streamed" if self.streaming else "in-memory"
        if self.segments is not None:
            mode += f", segments {self.segments[0]}..{self.segments[1]}"
        return f"trace file {self.path!r} ({mode})"


@dataclass(frozen=True)
class _RecordsSource:
    records: Sequence[TraceRecord]
    start_pc: int | None

    def prepare(self, sim: Simulation) -> PreparedTrace:
        return PreparedTrace(records=self.records, start_pc=self.start_pc)

    def spec_entry(self) -> dict:
        raise SessionError(
            "a simulation over in-memory records has no serializable "
            "spec; construct from a workload name or trace file instead"
        )

    def describe(self) -> str:
        return f"{len(self.records)} in-memory records"


@dataclass(frozen=True)
class _ProgramSource:
    program: Program
    inputs: tuple[int, ...] | None

    def prepare(self, sim: Simulation) -> PreparedTrace:
        tracer = build_tracer(sim.config)
        inputs = list(self.inputs) if self.inputs is not None else None
        generation = tracer.generate(self.program, inputs=inputs)
        return PreparedTrace(records=generation.records,
                             start_pc=self.program.entry,
                             trace_stats=generation.statistics())

    def spec_entry(self) -> dict:
        raise SessionError(
            "a simulation over an assembled program has no serializable "
            "spec; trace it to a file first (save_trace) or use a "
            "kernel workload name"
        )

    def describe(self) -> str:
        return "assembled program"


# ---------------------------------------------------------------------


@dataclass
# resim-lint: disable=S202 -- deliberate one-way export: results are
# reconstructed from their inner "stats"/"config" documents via
# stats_from_dict/config_from_dict, never from this wrapper.
class SessionResult:
    """Outcome of one :meth:`Simulation.run`.

    Wraps the engine's :class:`~repro.core.engine.SimulationResult`
    (identical counts to a hand-wired run) plus everything the facade
    knew about the run: trace statistics when the source produced
    them, per-device throughput projections, and the serializable spec
    when one exists.
    """

    result: SimulationResult
    reports: dict[str, object]
    trace_stats: TraceStatistics | None = None
    start_pc: int | None = None
    spec: dict | None = None
    #: The engine tier that actually executed the run ("reference" |
    #: "specialized") — may differ from the requested tier when tier
    #: selection fell back; informational only, deliberately absent
    #: from :meth:`to_dict` (both tiers are bit-identical, so result
    #: documents must not differ by tier).
    engine_tier: str = "reference"

    @property
    def config(self) -> ProcessorConfig:
        return self.result.config

    @property
    def stats(self):
        return self.result.stats

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def major_cycles(self) -> int:
        return self.result.major_cycles

    def mips(self, device_name: str) -> float:
        """FPGA-projected simulation speed on one requested device."""
        try:
            return self.reports[device_name].mips
        except KeyError:
            raise KeyError(
                f"no projection for device {device_name!r}; requested "
                f"devices: {', '.join(self.reports) or '(none)'}"
            ) from None

    def to_dict(self) -> dict:
        """JSON-safe form (shared encoders with sweep checkpoints)."""
        document = {
            "schema": SPEC_SCHEMA,
            "config": config_to_dict(self.result.config),
            "stats": stats_to_dict(self.result.stats),
            "ipc": self.ipc,
            "major_cycles": self.major_cycles,
            "mips": {name: report.mips
                     for name, report in self.reports.items()},
        }
        if self.spec is not None:
            document["spec"] = self.spec
        if self.start_pc is not None:
            document["start_pc"] = self.start_pc
        if self.trace_stats is not None:
            document["trace_bits_per_instruction"] = (
                self.trace_stats.bits_per_instruction)
        return document

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text)
        return text


class Simulation:
    """One fully described simulator run (see module docstring).

    Instances are immutable in style: every ``with_*`` method returns
    a new :class:`Simulation`, so partial builders can be shared and
    specialized (the sweep pattern: one base, many variants).
    """

    def __init__(
        self,
        config: ProcessorConfig = PAPER_4WIDE_PERFECT,
        *,
        source=None,
        budget: int = 30_000,
        seed: int = 7,
        start_pc: int | None = None,
        update_predictor_at_commit: bool = True,
        devices: tuple[FpgaDevice, ...] = (),
        observers: tuple[EngineObserver, ...] = (),
        warmup_instructions: int = 0,
        roi_instructions: int | None = None,
        stop_when: Callable[[ReSimEngine], bool] | None = None,
        max_cycles: int | None = None,
        engine: str = "reference",
    ) -> None:
        if source is None:
            raise SessionError(
                "a Simulation needs a trace source; construct it with "
                "for_workload / for_trace_file / for_records / "
                "for_program or from_spec"
            )
        self._engine = _coerce_engine(engine)
        self._config = config
        self._source = source
        self._budget = budget
        self._seed = seed
        self._start_pc = start_pc
        self._update_at_commit = update_predictor_at_commit
        self._devices = devices
        self._observers = observers
        self._warmup = warmup_instructions
        self._roi = roi_instructions
        self._stop_when = stop_when
        self._max_cycles = max_cycles
        self._prepared: PreparedTrace | None = None

    # -- constructors --------------------------------------------------

    @classmethod
    def for_workload(cls, workload: str,
                     config: ProcessorConfig = PAPER_4WIDE_PERFECT, *,
                     budget: int = 30_000, seed: int = 7,
                     ) -> Simulation:
        """A run over a named workload (SPECINT profile or kernel)."""
        return cls(config, source=_WorkloadSource(workload),
                   budget=budget, seed=seed)

    @classmethod
    def for_trace_file(cls, path: str | Path,
                       config: ProcessorConfig = PAPER_4WIDE_PERFECT,
                       *, streaming: bool = True,
                       segments: tuple[int, int] | None = None,
                       ) -> Simulation:
        """A run over a stored ``.rtrc`` trace file.

        By default the file is *streamed* through a
        :class:`~repro.trace.source.FileSource` — peak resident
        memory is bounded by the segment size, not the trace length,
        and statistics are bit-identical to the in-memory path.  Pass
        ``streaming=False`` to decode the whole trace up front (worth
        it only when the same Simulation object will be re-run many
        times and the decode cost dominates).

        ``segments=(lo, hi)`` restricts the run to a v2 file's
        segment range ``lo..hi-1`` — the worker-side half of sharded
        distributed sweeps, where each work unit replays one slice of
        one shared trace (requires streaming).
        """
        if segments is not None:
            segments = _coerce_segments(segments)
        return cls(config,
                   source=_TraceFileSource(str(path), streaming,
                                           segments))

    @classmethod
    def for_records(cls, records: Sequence[TraceRecord],
                    config: ProcessorConfig = PAPER_4WIDE_PERFECT, *,
                    start_pc: int | None = None) -> Simulation:
        """A run over records already in memory."""
        return cls(config, source=_RecordsSource(records, start_pc))

    @classmethod
    def for_program(cls, program: Program,
                    config: ProcessorConfig = PAPER_4WIDE_PERFECT, *,
                    inputs: Sequence[int] | None = None) -> Simulation:
        """A run over an assembled program, traced through the
        functional simulator (``sim-bpred``) at prepare time."""
        inputs_tuple = tuple(inputs) if inputs is not None else None
        return cls(config, source=_ProgramSource(program, inputs_tuple))

    # -- declarative form ----------------------------------------------

    @classmethod
    def from_spec(cls, spec: Mapping) -> Simulation:
        """Build a run from a plain-dict description.

        The spec is the serializable contract shared by the CLI, the
        sweep subsystem, and future distributed runners::

            {
                "workload": "gzip",          # or "trace_file": "t.rtrc"
                "config": "4wide-perfect",   # name or full config dict
                "budget": 30000, "seed": 7,
                "devices": ["xc4vlx40"],
                "warmup_instructions": 0,
                "roi_instructions": null,
                "update_predictor_at_commit": true,
            }

        Unknown keys are rejected (a typo'd key silently ignored would
        change the experiment being described).
        """
        if not isinstance(spec, Mapping):
            raise SessionError(
                f"spec must be a mapping, got {type(spec).__name__}")
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise SessionError(
                f"unknown spec key(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"valid keys: {', '.join(sorted(_SPEC_KEYS))}"
            )
        schema = spec.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SessionError(
                f"unsupported spec schema {schema!r} "
                f"(this version reads schema {SPEC_SCHEMA})"
            )

        workload = spec.get("workload")
        trace_file = spec.get("trace_file")
        if (workload is None) == (trace_file is None):
            raise SessionError(
                "spec needs exactly one source: 'workload' or "
                "'trace_file'"
            )
        streaming = spec.get("streaming")
        segments = spec.get("segments")
        if workload is not None:
            if streaming is not None:
                raise SessionError(
                    "spec key 'streaming' applies only to "
                    "'trace_file' sources"
                )
            if segments is not None:
                raise SessionError(
                    "spec key 'segments' applies only to "
                    "'trace_file' sources"
                )
            source = _WorkloadSource(workload)
        else:
            source = _TraceFileSource(
                str(trace_file),
                True if streaming is None else bool(streaming),
                None if segments is None else _coerce_segments(segments))

        config = spec.get("config", PAPER_4WIDE_PERFECT)
        if isinstance(config, str):
            config = CONFIGS.get(config)
        elif isinstance(config, Mapping):
            try:
                config = config_from_dict(dict(config))
            except (KeyError, TypeError, ValueError) as error:
                raise SessionError(
                    f"bad config in spec: {error!r}") from None
        elif not isinstance(config, ProcessorConfig):
            raise SessionError(
                f"spec 'config' must be a registered name, a config "
                f"dict, or a ProcessorConfig, got {config!r}"
            )

        devices = []
        for device in spec.get("devices", ()):
            devices.append(device if isinstance(device, FpgaDevice)
                           else DEVICES.get(device))

        def optional_int(key: str) -> int | None:
            value = spec.get(key)
            return None if value is None else int(value)

        try:
            return cls(
                config,
                source=source,
                budget=int(spec.get("budget", 30_000)),
                seed=int(spec.get("seed", 7)),
                start_pc=optional_int("start_pc"),
                update_predictor_at_commit=bool(
                    spec.get("update_predictor_at_commit", True)),
                devices=tuple(devices),
                warmup_instructions=int(
                    spec.get("warmup_instructions", 0)),
                roi_instructions=optional_int("roi_instructions"),
                max_cycles=optional_int("max_cycles"),
                engine=spec.get("engine", "reference"),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, SessionError):
                raise
            raise SessionError(f"bad value in spec: {error}") from None

    def to_spec(self) -> dict:
        """The serializable description of this run.

        Inverse of :meth:`from_spec` (``from_spec(sim.to_spec())``
        describes the identical run).  Raises :class:`SessionError`
        for runs over in-memory records or programs, and for attached
        observers/predicates (code does not serialize).
        """
        if self._observers or self._stop_when is not None:
            raise SessionError(
                "a simulation with observers or a stop predicate has "
                "no serializable spec (code does not serialize); "
                "attach them after from_spec on the running side"
            )
        spec: dict = {"schema": SPEC_SCHEMA}
        spec.update(self._source.spec_entry())
        named = next((name for name in CONFIGS
                      if CONFIGS[name] == self._config), None)
        spec["config"] = named or config_to_dict(self._config)
        spec["budget"] = self._budget
        spec["seed"] = self._seed
        if self._start_pc is not None:
            spec["start_pc"] = self._start_pc
        if not self._update_at_commit:
            spec["update_predictor_at_commit"] = False
        if self._devices:
            spec["devices"] = [device.name for device in self._devices]
        if self._warmup:
            spec["warmup_instructions"] = self._warmup
        if self._roi is not None:
            spec["roi_instructions"] = self._roi
        if self._max_cycles is not None:
            spec["max_cycles"] = self._max_cycles
        if self._engine != "reference":
            spec["engine"] = self._engine
        return spec

    def canonical_spec(self) -> dict:
        """The *canonical* serializable description of this run.

        Same contract as :meth:`to_spec` (``from_spec`` reproduces the
        identical run) but normalized for hashing: every default is
        materialized (a spec that omits ``budget`` and one that spells
        out ``"budget": 30000`` canonicalize identically), the config
        is always the full config dict (a registered name and its
        expanded dict canonicalize identically), keys are emitted in
        sorted order, and the source entry always carries all three
        source keys (``workload`` / ``trace_file`` / ``segments``,
        unused ones ``None``).  The ``streaming`` flag is dropped: it
        selects an I/O strategy with bit-identical statistics, so two
        specs differing only there describe the same result.  The
        ``engine`` tier is dropped for the same reason: every tier is
        bit-identical by contract, so a campaign run with
        ``--engine specialized`` shares its cache keys (and cached
        results) with the reference run it reproduces.

        This is the spec half of the campaign-service cache key (see
        :mod:`repro.serve.canon`); :meth:`spec_key` hashes it.
        """
        self.to_spec()  # same serializability rules (and errors)
        source = self._source
        if isinstance(source, _WorkloadSource):
            entry: dict = {"workload": source.name, "trace_file": None,
                           "segments": None}
        else:
            segments = (None if source.segments is None
                        else [int(source.segments[0]),
                              int(source.segments[1])])
            entry = {"workload": None, "trace_file": source.path,
                     "segments": segments}
        spec = {
            "schema": SPEC_SCHEMA,
            "config": config_to_dict(self._config),
            "budget": self._budget,
            "seed": self._seed,
            "start_pc": self._start_pc,
            "update_predictor_at_commit": self._update_at_commit,
            "devices": [device.name for device in self._devices],
            "warmup_instructions": self._warmup,
            "roi_instructions": self._roi,
            "max_cycles": self._max_cycles,
            **entry,
        }
        return dict(sorted(spec.items()))

    def spec_key(self, *, length: int = 40) -> str:
        """Canonical hash of this run's description.

        Truncated SHA-256 over :meth:`canonical_spec`'s canonical JSON
        — invariant under spec key reordering and default
        materialization, so users can predict the campaign service's
        cache keys offline (``resim spec hash``).  Note the full cache
        key additionally folds in the trace content digest and the
        engine version (:func:`repro.serve.canon.cache_key`).
        """
        return canonical_digest(self.canonical_spec(), length=length)

    # -- fluent builders -----------------------------------------------

    def _replace(self, **changes) -> Simulation:
        clone = copy.copy(self)
        for name, value in changes.items():
            setattr(clone, name, value)
        clone._prepared = None  # a changed run must re-prepare
        return clone

    def with_config(self, config: ProcessorConfig | str) -> Simulation:
        """Swap the processor configuration (name or object)."""
        if isinstance(config, str):
            config = CONFIGS.get(config)
        return self._replace(_config=config)

    def with_predictor(self, predictor) -> Simulation:
        """Swap the branch predictor (scheme name or PredictorConfig).

        Note the trace-driven contract: for workload sources the trace
        is regenerated with the new predictor, but a stored trace file
        keeps its recorded wrong paths (``predictor_mismatch`` will be
        set if they disagree).
        """
        from repro.bpred.unit import PredictorConfig, PREDICTORS
        if isinstance(predictor, str):
            PREDICTORS.get(predictor)  # validate the name
            predictor = PredictorConfig(scheme=predictor)
        return self._replace(
            _config=replace(self._config, predictor=predictor))

    def with_budget(self, budget: int) -> Simulation:
        """Instruction budget for synthetic workload generation."""
        return self._replace(_budget=budget)

    def with_seed(self, seed: int) -> Simulation:
        """Synthetic-generator seed."""
        return self._replace(_seed=seed)

    def with_start_pc(self, start_pc: int | None) -> Simulation:
        """Override the engine's first-fetch PC (rarely needed; trace
        files and kernels carry their own)."""
        return self._replace(_start_pc=start_pc)

    def with_devices(self, *devices: FpgaDevice | str) -> Simulation:
        """FPGA devices to project throughput onto (names or objects)."""
        resolved = tuple(
            device if isinstance(device, FpgaDevice)
            else DEVICES.get(device)
            for device in devices
        )
        return self._replace(_devices=resolved)

    def with_observer(self, *observers: EngineObserver) -> Simulation:
        """Attach engine instrumentation (appends to existing)."""
        return self._replace(_observers=self._observers + observers)

    def with_warmup(self, instructions: int) -> Simulation:
        """Fast-forward: commit this many instructions with warm
        microarchitectural state before statistics start."""
        return self._replace(_warmup=instructions)

    def with_roi(self, instructions: int | None) -> Simulation:
        """Region of interest: stop after this many post-warmup
        committed instructions."""
        return self._replace(_roi=instructions)

    def with_stop_when(
            self, predicate: Callable[[ReSimEngine], bool] | None
    ) -> Simulation:
        """Early-stop predicate, checked after every cycle."""
        return self._replace(_stop_when=predicate)

    def with_max_cycles(self, max_cycles: int | None) -> Simulation:
        """Cycle budget guard (None = the engine's default)."""
        return self._replace(_max_cycles=max_cycles)

    def with_predictor_training(self, at_commit: bool) -> Simulation:
        """True (paper behaviour): train the predictor at commit;
        False: train at fetch (engine agrees with the generator
        bit-for-bit)."""
        return self._replace(_update_at_commit=at_commit)

    def with_engine(self, engine: str) -> Simulation:
        """Select the engine tier executing this run (a name from
        :data:`repro.core.specialize.ENGINES`; ``"specialized"`` is
        the config-compiled fast path).  Every tier is bit-identical
        to the reference engine; requests a tier cannot honour
        (observers, warmup/ROI windows, subclassed configs) fall back
        to the reference tier transparently."""
        return self._replace(_engine=_coerce_engine(engine))

    # -- introspection -------------------------------------------------

    @property
    def config(self) -> ProcessorConfig:
        return self._config

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def devices(self) -> tuple[FpgaDevice, ...]:
        return self._devices

    @property
    def engine(self) -> str:
        """The requested engine tier (tier selection may still fall
        back to ``"reference"`` at :meth:`build_engine` time)."""
        return self._engine

    def describe(self) -> str:
        return (f"Simulation({self._source.describe()} on "
                f"{self._config.describe()})")

    __repr__ = describe

    # -- execution -----------------------------------------------------

    def prepare(self) -> PreparedTrace:
        """Materialize the trace source (cached across calls, so
        ``prepare()`` + ``run()`` generates only once)."""
        if self._prepared is None:
            self._prepared = self._source.prepare(self)
        return self._prepared

    def trace_statistics(self) -> TraceStatistics:
        """Record-stream statistics of the prepared trace, measuring
        on demand for sources that don't compute them anyway (a
        streamed trace file is measured in one constant-memory pass,
        never materialized)."""
        prepared = self.prepare()
        if prepared.trace_stats is not None:
            return prepared.trace_stats
        return measure_trace(prepared.open_source())

    def build_engine(
            self,
            trace: Sequence[TraceRecord] | TraceSource | None = None,
    ) -> ReSimEngine | SpecializedEngine:
        """Construct the configured engine, observers attached.

        ``trace`` overrides the prepared source — the streaming
        co-simulation driver passes its growing input FIFO here while
        keeping the facade's start PC and observer wiring.  A trace
        override always uses the reference engine (step-wise driving
        is a reference-tier feature); otherwise the requested tier is
        resolved through :func:`repro.core.specialize.create_engine`,
        which falls back to the reference tier for requests the
        specialized tier cannot honour.
        """
        if trace is None:
            prepared = self.prepare()
            trace = prepared.open_source()
            start_pc = (self._start_pc if self._start_pc is not None
                        else prepared.start_pc)
            if self._engine != "reference":
                request = EngineRequest(
                    config=self._config,
                    trace=trace,
                    start_pc=start_pc,
                    update_predictor_at_commit=self._update_at_commit,
                    observers=self._observers,
                    warmup_instructions=self._warmup,
                    roi_instructions=self._roi,
                    stop_when=self._stop_when,
                    wrong_path_free=self._wrong_path_free(prepared),
                )
                return create_engine(self._engine, request)
        else:
            start_pc = (self._start_pc if self._start_pc is not None
                        else self.prepare().start_pc)
        engine = ReSimEngine(
            self._config, trace, start_pc=start_pc,
            update_predictor_at_commit=self._update_at_commit,
        )
        for observer in self._observers:
            engine.add_observer(observer)
        return engine

    @staticmethod
    def _wrong_path_free(prepared: PreparedTrace) -> bool:
        """True only when the prepared trace *provably* contains no
        tagged (wrong-path) records, letting the specialized tier
        compile out speculative fetch and recovery.

        Sound sources of that fact: the generator's own trace
        statistics, or a v2 file header whose committed-count
        consistency field equals the record count (every record
        untagged).  Anything unprovable stays False — the wrong-path
        variant is still bit-identical, just slightly slower; and the
        generated code re-checks the claim per record, failing loudly
        rather than silently diverging.
        """
        if prepared.trace_stats is not None:
            return prepared.trace_stats.wrong_path_records == 0
        source = prepared.source
        if isinstance(source, FileSource):
            header = source.header
            return (header.record_count < (1 << 32)
                    and header.record_count == header.committed_low32)
        return False

    def run(self, max_cycles: int | None = None) -> SessionResult:
        """Prepare, simulate, and project — the whole pipeline."""
        prepared = self.prepare()
        engine = self.build_engine()
        result = engine.run(
            max_cycles if max_cycles is not None else self._max_cycles,
            warmup_instructions=self._warmup,
            roi_instructions=self._roi,
            stop_when=self._stop_when,
        )
        from repro.perf.throughput import ThroughputModel
        reports = {
            device.name: ThroughputModel(device).report(result)
            for device in self._devices
        }
        try:
            spec = self.to_spec()
        except SessionError:
            spec = None
        return SessionResult(
            result=result,
            reports=reports,
            trace_stats=prepared.trace_stats,
            start_pc=(self._start_pc if self._start_pc is not None
                      else prepared.start_pc),
            spec=spec,
            engine_tier=getattr(engine, "tier", "reference"),
        )

    def save_trace(self, path: str | Path, *,
                   benchmark: str | None = None,
                   extra: dict | None = None) -> tuple[int, int]:
        """Persist the prepared trace as a ``.rtrc`` file (format v2).

        Returns ``(record_count, bytes_written)``.  The file carries
        the generation predictor, the workload name, the seed and the
        start PC, so ``Simulation.for_trace_file`` reproduces this
        run's timing exactly.  (To generate-and-persist a workload
        without ever holding the record list, use
        :func:`repro.workloads.tracegen.write_workload_trace`.)
        """
        prepared = self.prepare()
        if benchmark is None:
            source = self._source
            benchmark = (source.name
                         if isinstance(source, _WorkloadSource)
                         else "unknown")
        metadata = dict(extra or {})
        start_pc = (self._start_pc if self._start_pc is not None
                    else prepared.start_pc)
        if start_pc is not None:
            metadata.setdefault("start_pc", start_pc)
        records = prepared.materialize()
        written = write_trace_file(
            path, records, predictor=self._config.predictor,
            benchmark=benchmark, seed=self._seed, extra=metadata,
        )
        return len(records), written
