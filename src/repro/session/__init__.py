"""`repro.session` — the Simulation facade and component registries.

The paper positions ReSim as a *reconfigurable* simulator: one
prepared trace, many scenarios.  This package is the scenario API —
a single :class:`Simulation` entry point (fluent or declarative from
a plain-dict spec) plus the string-keyed registries that make every
pluggable component nameable from CLI flags, specs and sweep axes:

==========================  ===========================================
registry                    components
==========================  ===========================================
:data:`CONFIGS`             named processor configs (``4wide-perfect``,
                            ``2wide-cache``, ...)
:data:`DEVICES`             FPGA parts (``xc4vlx40``, ``xc5vlx50t``, ...)
:data:`WORKLOADS`           SPECINT profiles + assembly kernels
:data:`PREDICTORS`          direction-predictor schemes
:data:`REPLACEMENT_POLICIES` cache replacement policies
==========================  ===========================================

See :mod:`repro.session.simulation` for the full story, and
:class:`repro.core.engine.EngineObserver` for run instrumentation.
"""

from repro.bpred.unit import PREDICTORS
from repro.cache.replacement import REPLACEMENT_POLICIES
from repro.core.engine import EngineObserver
from repro.fpga.device import DEVICES
from repro.session.simulation import (
    CONFIGS,
    PreparedTrace,
    SPEC_SCHEMA,
    SessionError,
    SessionResult,
    Simulation,
)
from repro.utils.registry import Registry, RegistryError
from repro.workloads.tracegen import WORKLOADS

__all__ = [
    "CONFIGS",
    "DEVICES",
    "EngineObserver",
    "PREDICTORS",
    "PreparedTrace",
    "REPLACEMENT_POLICIES",
    "Registry",
    "RegistryError",
    "SPEC_SCHEMA",
    "SessionError",
    "SessionResult",
    "Simulation",
    "WORKLOADS",
]
