"""Multiple ReSim instances on one device, sharing the trace channel.

Model
-----
* **Placement** — the area model gives slices/BRAMs per instance; the
  device gives totals; the floor of the ratios is the instance count
  (one spare BRAM pair is reserved for the trace deserializer).
* **Timing** — each instance is a full :class:`~repro.core.ReSimEngine`
  running its own workload; instances are independent (the paper's
  CMP motivation is throughput simulation of many cores), so their
  major-cycle counts come from real simulation, not a model.
* **Trace channel** — each instance demands
  ``bits_per_instruction x trace_throughput x f/L`` of input
  bandwidth.  A shared channel of capacity C Gb/s serves all
  instances; when aggregate demand D exceeds C, every instance runs at
  the fraction C/D of full speed (fair round-robin service of the
  deserializer, the natural hardware arrangement).

The interesting output is aggregate simulated MIPS per device as a
function of instance count: it grows linearly until the channel
saturates — quantifying exactly the extension problem the paper's
conclusion poses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import ProcessorConfig
from repro.core.minorpipe import select_pipeline
from repro.fpga.area import AreaEstimator
from repro.fpga.device import FpgaDevice
from repro.perf.throughput import ThroughputModel, ThroughputReport
from repro.session import Simulation
from repro.trace.source import FileSource
from repro.trace.stats import TraceStatistics, measure_trace

#: Default shared trace-channel capacity, in Gb/s.  The paper points
#: at tightly-coupled CPU-FPGA attachments (the DRC board's
#: HyperTransport link) as the remedy for >GigE demands; 6.4 Gb/s is
#: that class of link.
DEFAULT_CHANNEL_GBPS = 6.4


@dataclass(frozen=True)
class TraceChannel:
    """Shared trace-input link between the host and the FPGA."""

    capacity_gbps: float = DEFAULT_CHANNEL_GBPS

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("channel capacity must be positive")

    def service_fraction(self, demand_gbps: float) -> float:
        """Fraction of full speed the instances sustain under demand."""
        if demand_gbps <= self.capacity_gbps:
            return 1.0
        return self.capacity_gbps / demand_gbps


@dataclass
class CoreResult:
    """One instance's workload and throughput."""

    core: int
    benchmark: str
    report: ThroughputReport
    trace_stats: TraceStatistics

    @property
    def demand_gbps(self) -> float:
        """Trace bandwidth this core wants at full speed."""
        return self.report.bandwidth_gbits_per_sec(
            self.trace_stats.bits_per_instruction
        )


@dataclass
class MultiCoreResult:
    """Placement + timing + bandwidth outcome for one device."""

    device: FpgaDevice
    instances: int
    slices_per_instance: int
    brams_per_instance: int
    cores: list[CoreResult] = field(default_factory=list)
    channel: TraceChannel = field(default_factory=TraceChannel)

    @property
    def aggregate_demand_gbps(self) -> float:
        return sum(core.demand_gbps for core in self.cores)

    @property
    def service_fraction(self) -> float:
        """Throttle factor imposed by the shared trace channel."""
        return self.channel.service_fraction(self.aggregate_demand_gbps)

    @property
    def aggregate_mips_unconstrained(self) -> float:
        """Sum of per-core MIPS if bandwidth were free."""
        return sum(core.report.mips for core in self.cores)

    @property
    def aggregate_mips(self) -> float:
        """Deliverable simulation throughput through the real channel."""
        return self.aggregate_mips_unconstrained * self.service_fraction

    @property
    def bandwidth_limited(self) -> bool:
        return self.service_fraction < 1.0

    def summary(self) -> str:
        lines = [
            f"{self.instances} ReSim instance(s) on {self.device.name} "
            f"({self.slices_per_instance} slices, "
            f"{self.brams_per_instance} BRAMs each)",
            f"aggregate demand : {self.aggregate_demand_gbps:.2f} Gb/s "
            f"over a {self.channel.capacity_gbps:.1f} Gb/s channel"
            + (" [SATURATED]" if self.bandwidth_limited else ""),
            f"aggregate MIPS   : {self.aggregate_mips:.2f} "
            f"(unconstrained {self.aggregate_mips_unconstrained:.2f})",
        ]
        for core in self.cores:
            lines.append(
                f"  core {core.core}: {core.benchmark:8s} "
                f"{core.report.mips:6.2f} MIPS, "
                f"{core.demand_gbps:.2f} Gb/s"
            )
        return "\n".join(lines)


class MultiCoreSimulator:
    """Places and runs multiple ReSim instances on one device."""

    def __init__(
        self,
        config: ProcessorConfig,
        device: FpgaDevice,
        channel: TraceChannel | None = None,
    ) -> None:
        self._config = config
        self._device = device
        self._channel = channel or TraceChannel()
        report = AreaEstimator(config, device_name=device.name).estimate()
        self._slices_per_instance = report.total_slices
        # Reserve one BRAM pair for the shared trace deserializer.
        self._brams_per_instance = max(1, report.total_brams)

    @property
    def max_instances(self) -> int:
        """How many instances the device's resources allow."""
        return self._device.instances_fit(
            self._slices_per_instance, self._brams_per_instance
        )

    def run(
        self,
        benchmarks: list[str],
        budget: int = 10_000,
        seed: int = 7,
    ) -> MultiCoreResult:
        """Simulate one workload per core (round-robin over names).

        Each entry is either a workload name (SPECINT profile or
        kernel) or a path to a stored ``.rtrc`` trace file — stored
        traces are *streamed* through the trace-source layer, so a
        many-core study over long pre-generated traces holds one
        decoded segment per core, not one record list per core.

        Raises
        ------
        ValueError
            If more workloads are requested than instances fit.
        """
        if not benchmarks:
            raise ValueError("at least one benchmark required")
        if len(benchmarks) > max(1, self.max_instances):
            raise ValueError(
                f"{len(benchmarks)} cores requested but only "
                f"{self.max_instances} instance(s) fit on "
                f"{self._device.name}"
            )
        return self._run_unchecked(benchmarks, budget, seed)

    def scaling_study(
        self,
        benchmarks: list[str],
        budget: int = 8_000,
        seed: int = 7,
        max_cores: int | None = None,
    ) -> list[MultiCoreResult]:
        """Aggregate throughput vs. core count, 1..max.

        Ignores the placement limit when ``max_cores`` overrides it
        (useful for studying where the *channel* — not area — becomes
        the binding constraint on a hypothetical larger part).
        """
        limit = max_cores if max_cores is not None else self.max_instances
        if limit < 1:
            raise ValueError("device fits no instances")
        results = []
        for count in range(1, limit + 1):
            names = [benchmarks[i % len(benchmarks)] for i in range(count)]
            saved = self.max_instances
            if count <= saved or max_cores is not None:
                result = self._run_unchecked(names, budget, seed)
                results.append(result)
        return results

    def _core_simulation(self, name: str, budget: int,
                         seed: int) -> tuple[Simulation, str]:
        """One core's Simulation (workload name or trace-file path)
        plus its display label.

        Only the ``.rtrc`` suffix selects the trace-file path — a
        stray local file that happens to share a workload's name must
        never shadow the workload.
        """
        if name.endswith(".rtrc"):
            return (Simulation.for_trace_file(name, self._config),
                    Path(name).stem)
        return (Simulation.for_workload(name, self._config,
                                        budget=budget, seed=seed),
                name)

    @staticmethod
    def _header_stats(simulation: Simulation) -> TraceStatistics:
        """Record statistics for a core without a generation
        by-product (a streamed ``.rtrc`` core).

        The bandwidth model only consumes ``bits_per_instruction``,
        which the trace-file header carries exactly (total payload
        bits / record count) — so a stored trace is *not* decoded a
        second time just to re-derive it.  Only the totals are
        populated; kind counts stay zero.
        """
        prepared = simulation.prepare()
        if isinstance(prepared.source, FileSource):
            header = prepared.source.header
            return TraceStatistics(total_records=header.record_count,
                                   total_bits=header.bit_length)
        return measure_trace(prepared.open_source())

    def _run_unchecked(self, benchmarks: list[str], budget: int,
                       seed: int) -> MultiCoreResult:
        """`run` without the placement guard (scaling studies)."""
        result = MultiCoreResult(
            device=self._device,
            instances=len(benchmarks),
            slices_per_instance=self._slices_per_instance,
            brams_per_instance=self._brams_per_instance,
            channel=self._channel,
        )
        pipeline = select_pipeline(self._config.width,
                                   self._config.memory_ports)
        model = ThroughputModel(self._device, pipeline)
        for core_index, name in enumerate(benchmarks):
            simulation, label = self._core_simulation(
                name, budget, seed + core_index)
            session = simulation.run()
            trace_stats = (session.trace_stats
                           if session.trace_stats is not None
                           else self._header_stats(simulation))
            result.cores.append(CoreResult(
                core=core_index,
                benchmark=label,
                report=model.report(session.result),
                trace_stats=trace_stats,
            ))
        return result
