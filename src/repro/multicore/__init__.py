"""Multi-core simulation — the paper's Section VI direction.

*"Therefore it is possible to fit multiple ReSim instances in a single
FPGA and simulate multi-core systems.  We are evaluating the
modifications and extensions that need to be made to ReSim in order to
support multi-core simulation."*

This package implements that evaluation: :class:`MultiCoreSimulator`
places as many ReSim instances on a device as its resources allow
(area model), runs one independent workload per core (the
throughput-oriented multiprogrammed scenario the paper's CMP
motivation describes), and accounts for the *shared trace-input
channel* — the resource the paper identifies as ReSim's bottleneck
(Table 3: ~1.1 Gb/s per instance, already beyond plain GigE).  When
the aggregate trace demand exceeds the link, every instance stalls
proportionally; the model quantifies where per-device simulation
throughput saturates.
"""

from repro.multicore.simulator import (
    CoreResult,
    MultiCoreResult,
    MultiCoreSimulator,
    TraceChannel,
)

__all__ = [
    "CoreResult",
    "MultiCoreResult",
    "MultiCoreSimulator",
    "TraceChannel",
]
