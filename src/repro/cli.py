"""Command-line interface: the ReSim toolflow without writing Python.

Subcommands mirror how the paper's system is used:

* ``trace``    — generate a tagged trace (synthetic benchmark or
  assembled kernel), streaming it straight into a segmented trace
  file; ``trace info FILE`` inspects a stored trace (header, format
  version, metadata, segment table) without decoding its payload;
* ``simulate`` — run a trace file (streamed by default; see
  ``--in-memory``, ``--progress``) or generate one on the fly through
  the timing engine and print statistics + FPGA-projected MIPS;
* ``tables``   — regenerate the paper's Tables 1-4;
* ``area``     — print the Table 4 area breakdown for a configuration;
* ``vhdl``     — emit the parametric branch-predictor VHDL;
* ``multicore``— the Section VI study: instances per device and
  aggregate throughput under the shared trace channel;
* ``sweep``    — the paper's bulk mode: simulate one shared trace
  across a whole parameter grid, with per-point checkpointing so
  interrupted sweeps resume; ``--backend serial|pool|queue`` picks
  how points execute (in-process, local process pool, or a shared-
  filesystem queue drained by workers on any number of hosts), and
  ``--shards N`` splits every design point into N segment-range
  shard runs merged back into one result;
* ``search``   — adaptive design-space search (grid / seeded random /
  hill-climb) that simulates points one batch at a time through the
  same backends, checkpoints, and sharding;
* ``worker``   — a queue worker: claims work units from a shared
  queue directory (``sweep``/``search`` with ``--backend queue``)
  and simulates them until the queue drains or it is stopped;
* ``stats``    — statistics utilities: ``stats merge A.json B.json``
  reduces per-shard result documents into one merged document;
* ``serve``    — the campaign service: a long-lived process accepting
  simulate/sweep/search submissions over HTTP/JSON, scheduling them
  onto the execution backends, streaming progress events, and
  memoizing every completed work unit in a content-addressed result
  cache (``serve ROOT --port N``);
* ``client``   — drive a running service: ``client submit REQ.json``,
  ``client batch REQS.json --wait``, ``client watch/fetch/status/``
  ``cancel JOB``, ``client health/cache/jobs``;
* ``spec``     — spec utilities: ``spec hash`` prints the canonical
  content key (spec + trace digest + engine version) the campaign
  cache addresses results by.

Entry point: ``python -m repro.cli <subcommand>`` or the installed
``resim`` script.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.core.minorpipe import select_pipeline
from repro.core.observers import ProgressObserver
from repro.fpga.area import AreaEstimator
from repro.fpga.device import DEVICES, VIRTEX4_LX40, VIRTEX5_LX50T
from repro.fpga.vhdlgen import generate_branch_predictor_vhdl
from repro.multicore.simulator import MultiCoreSimulator, TraceChannel
from repro.core.specialize import ENGINES
from repro.session import CONFIGS, SessionError, Simulation
from repro.trace.fileio import (
    DEFAULT_SEGMENT_RECORDS,
    TraceFileError,
    read_segment_table,
    read_trace_header,
)
from repro.utils.registry import RegistryError
from repro.workloads.profiles import SPECINT_PROFILES
from repro.workloads.tracegen import (
    UnknownWorkloadError,
    write_workload_trace,
)


def _config(name: str):
    try:
        return CONFIGS.get(name)
    except RegistryError as error:
        raise SystemExit(str(error)) from error


def _device(name: str):
    try:
        return DEVICES.get(name)
    except RegistryError as error:
        raise SystemExit(str(error)) from error


def _apply_engine(simulation: Simulation, engine: str) -> Simulation:
    """Select the engine tier before observers attach / prepare()
    runs (``with_*`` clones invalidate the prepared-trace cache)."""
    if engine == "reference":
        return simulation
    try:
        return simulation.with_engine(engine)
    except SessionError as error:
        raise SystemExit(str(error)) from error


def _workload_simulation(args, config) -> Simulation:
    """Shared workload selection for `trace` and `simulate`."""
    return Simulation.for_workload(
        args.workload, config, budget=args.budget, seed=args.seed)


def cmd_trace(args) -> int:
    if args.workload == "info":
        return cmd_trace_info(args)
    if args.workload == "analyze":
        return cmd_trace_analyze(args)
    config = _config(args.config)
    try:
        written = write_workload_trace(
            args.workload, config, args.output,
            budget=args.budget, seed=args.seed,
            segment_records=args.segment_records,
        )
    except UnknownWorkloadError as error:
        raise SystemExit(str(error)) from error
    except TraceFileError as error:
        raise SystemExit(f"{args.output}: {error}") from error
    print(f"wrote {written.record_count} records "
          f"({written.bytes_written} bytes) to {args.output}")
    return 0


def _describe_predictor(blob) -> str:
    if not isinstance(blob, dict):
        return "(not recorded)"
    scheme = blob.get("scheme", "?")
    details = ", ".join(f"{key}={value}" for key, value in sorted(blob.items())
                        if key != "scheme" and value is not None)
    return f"{scheme} ({details})" if details else scheme


def cmd_trace_info(args) -> int:
    """`resim trace info <file>`: inspect a stored trace."""
    from repro.serve.canon import trace_digest  # deferred: hashes the file

    path = Path(args.output)
    try:
        header = read_trace_header(path)
        segments = read_segment_table(path)
    except OSError as error:
        raise SystemExit(f"{path}: {error.strerror or error}") from error
    except TraceFileError as error:
        raise SystemExit(f"{path}: {error}") from error
    size = path.stat().st_size
    digest = trace_digest(path)
    if args.format == "json":
        import json as _json
        document = {
            "path": str(path),
            "file_size_bytes": size,
            "format_version": header.version,
            "records": header.record_count,
            "committed_low32": header.committed_low32,
            "payload_bits": header.bit_length,
            "bits_per_instruction": header.bits_per_instruction,
            "content_digest": digest,
            "metadata": dict(header.metadata),
            "segment_count": (None if header.version == 1
                              else header.segment_count),
            "segment_records": (None if header.version == 1
                                else header.segment_records),
            "segments": [
                {"index": segment.index,
                 "records": segment.record_count,
                 "bits": segment.bit_length,
                 "payload_offset": segment.payload_offset}
                for segment in segments
            ],
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"{path}")
    print(f"  format version       : {header.version}"
          + ("" if header.version != 1 else " (monolithic payload)"))
    print(f"  file size            : {size} bytes")
    print(f"  records              : {header.record_count}")
    print(f"  committed (low 32)   : {header.committed_low32}")
    print(f"  payload bits         : {header.bit_length}")
    print(f"  bits per instruction : {header.bits_per_instruction:.2f}")
    print(f"  content digest       : {digest}")
    metadata = dict(header.metadata)
    predictor = metadata.pop("predictor", None)
    print(f"  generation predictor : {_describe_predictor(predictor)}")
    for key in sorted(metadata):
        if metadata[key] is not None:
            print(f"  {key:21s}: {metadata[key]}")
    if header.version == 1:
        print(f"  segments             : (none; v1 payload spans "
              f"{segments[0].byte_length} bytes)")
        return 0
    print(f"  segments             : {header.segment_count} "
          f"(nominal {header.segment_records} records each)")
    rows = segments if len(segments) <= 8 else segments[:8]
    for segment in rows:
        print(f"    [{segment.index:4d}] {segment.record_count:8d} "
              f"records, {segment.bit_length:10d} bits at offset "
              f"{segment.payload_offset}")
    if len(segments) > len(rows):
        print(f"    ... {len(segments) - len(rows)} more segment(s)")
    return 0


def cmd_trace_analyze(args) -> int:
    """``resim trace analyze <file>``: profile a stored trace into its
    ``.rprof`` sidecar (reused when digest-fresh) and summarize it."""
    from repro.trace.analyze import ensure_profile, profile_path

    path = Path(args.output)
    try:
        profile = ensure_profile(path, force=args.force)
    except OSError as error:
        raise SystemExit(f"{path}: {error.strerror or error}") from error
    except (TraceFileError, ValueError) as error:
        raise SystemExit(f"{path}: {error}") from error
    if args.format == "json":
        import json as _json
        print(_json.dumps(profile.to_dict(), indent=2, sort_keys=True))
        return 0
    print(profile.summary())
    print(f"  profile sidecar      : {profile_path(path)}")
    return 0


def _simulate_regions(args, config) -> int:
    """``resim simulate --trace-file F --sample-regions N``: profile,
    plan, run the representative regions, report the weighted
    estimate."""
    import tempfile
    from repro.exec import (
        ExecError,
        RegionReducer,
        WorkUnit,
        execute_unit,
        plan_regions,
        region_units,
    )
    from repro.serialize import config_to_dict, stats_from_dict
    from repro.trace.analyze import ensure_profile

    if not args.trace_file:
        raise SystemExit("--sample-regions needs --trace-file: region "
                         "sampling plans over a stored segmented "
                         "trace's profile")
    if args.sample_regions < 1:
        raise SystemExit(f"--sample-regions must be positive, "
                         f"got {args.sample_regions}")
    if args.region_warmup < 0:
        raise SystemExit(f"--region-warmup must be >= 0, "
                         f"got {args.region_warmup}")
    trace = Path(args.trace_file)
    try:
        profile = ensure_profile(trace)
        plan = plan_regions(trace, profile,
                            regions=args.sample_regions,
                            seed=args.region_seed,
                            warmup_segments=args.region_warmup)
    except OSError as error:
        raise SystemExit(
            f"{trace}: {error.strerror or error}") from error
    except (TraceFileError, ExecError, ValueError) as error:
        raise SystemExit(f"{trace}: {error}") from error
    print(plan.describe(), file=sys.stderr)
    with tempfile.TemporaryDirectory(prefix="resim-regions-") as work:
        base = WorkUnit.for_trace(
            "point", trace.resolve(), config_to_dict(config),
            Path(work) / "point.json", engine=args.engine)
        try:
            reducer = RegionReducer(base, plan)
            for unit in region_units(base, plan):
                reducer.add(execute_unit(unit))
            merged = reducer.merged()
        except TraceFileError as error:
            raise SystemExit(f"{trace}: {error}") from error
        except ExecError as error:
            raise SystemExit(str(error)) from error
    stats = stats_from_dict(merged["stats"])
    print(stats.report())
    print(f"\nregion-sampled ESTIMATE: {plan.count} region(s) stood "
          f"for {plan.total_segments} segment(s); "
          f"{100.0 * plan.coverage:.1f}% of trace records executed "
          f"(rerun without --sample-regions for exact statistics)")
    return 0


def cmd_simulate(args) -> int:
    config = _config(args.config)
    if args.progress_records < 1:
        raise SystemExit(
            f"--progress-records must be positive, "
            f"got {args.progress_records}")
    if args.sample_regions is not None:
        return _simulate_regions(args, config)
    if args.trace_file:
        simulation = Simulation.for_trace_file(
            args.trace_file, config=config,
            streaming=not args.in_memory,
        ).with_devices(VIRTEX4_LX40, VIRTEX5_LX50T)
        simulation = _apply_engine(simulation, args.engine)
        if args.progress:
            # Attach before prepare(): every with_* clone invalidates
            # the prepared-trace cache, and preparing twice would
            # decode an --in-memory trace file twice.
            simulation = simulation.with_observer(
                ProgressObserver(args.progress_records))
        try:
            prepared = simulation.prepare()
        except TraceFileError as error:
            raise SystemExit(f"{args.trace_file}: {error}") from error
        except OSError as error:
            raise SystemExit(
                f"{args.trace_file}: {error.strerror or error}") from error
        if prepared.predictor_mismatch:
            print("warning: trace was generated with a different "
                  "predictor configuration; Tag bits may not match "
                  "this engine's predictions", file=sys.stderr)
    else:
        simulation = _workload_simulation(args, config).with_devices(
            VIRTEX4_LX40, VIRTEX5_LX50T)
        simulation = _apply_engine(simulation, args.engine)
        if args.progress:
            simulation = simulation.with_observer(
                ProgressObserver(args.progress_records))
    try:
        session = simulation.run()
    except UnknownWorkloadError as error:
        raise SystemExit(str(error)) from error
    except TraceFileError as error:
        # Streamed payload corruption surfaces during the run, not at
        # prepare time (only one segment is ever decoded ahead).
        raise SystemExit(f"{args.trace_file}: {error}") from error
    print(session.stats.report())
    pipeline = select_pipeline(config.width, config.memory_ports)
    print(f"\ninternal pipeline: {pipeline.name} "
          f"(major = {pipeline.minor_cycles_per_major} minor cycles)")
    for device in (VIRTEX4_LX40, VIRTEX5_LX50T):
        print(f"  {device.name:12s} {session.mips(device.name):7.2f} MIPS")
    return 0


def cmd_tables(args) -> int:
    from repro.perf.tables import render_all  # heavy import, lazy
    try:
        render_all(args.tables or None, args.budget)
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from error
    return 0


def cmd_area(args) -> int:
    config = _config(args.config)
    if args.with_caches:
        config = replace(config, perfect_memory=False)
    report = AreaEstimator(config, device_name=args.device).estimate()
    print(report.render())
    return 0


def cmd_vhdl(args) -> int:
    config = _config(args.config)
    sources = generate_branch_predictor_vhdl(config.predictor)
    output = Path(args.output_dir)
    output.mkdir(parents=True, exist_ok=True)
    for entity, source in sources.items():
        path = output / f"{entity}.vhd"
        path.write_text(source)
        print(f"wrote {path}")
    return 0


def cmd_multicore(args) -> int:
    config = _config(args.config)
    device = _device(args.device)
    simulator = MultiCoreSimulator(
        config, device, TraceChannel(args.channel_gbps)
    )
    print(f"{device.name}: up to {simulator.max_instances} instance(s)")
    benchmarks = args.benchmarks or list(SPECINT_PROFILES)
    count = min(len(benchmarks), max(1, simulator.max_instances))
    try:
        result = simulator.run(benchmarks[:count], budget=args.budget,
                               seed=args.seed)
    except UnknownWorkloadError as error:
        raise SystemExit(str(error)) from error
    except (TraceFileError, OSError) as error:
        # A core given a .rtrc path: missing or corrupt trace files
        # must not escape as tracebacks.
        raise SystemExit(str(error)) from error
    print(result.summary())
    return 0


def _int_list(raw: str, option: str) -> list[int]:
    try:
        return [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise SystemExit(
            f"{option} expects a comma-separated integer list, got {raw!r}"
        ) from None


def _collect_axes(args) -> dict[str, list]:
    """Shared axis-flag parsing for ``sweep`` and ``search``."""
    axes: dict[str, list] = {}
    for name, option, raw in (
        ("rob_entries", "--rob", args.rob),
        ("lsq_entries", "--lsq", args.lsq),
        ("ifq_entries", "--ifq", args.ifq),
        ("width", "--width", args.width),
        ("alu_count", "--alus", args.alus),
    ):
        if raw:
            axes[name] = _int_list(raw, option)
    if args.predictor:
        axes["predictor"] = [part for part in args.predictor.split(",")
                             if part]
    for raw in args.axis or []:
        name, sep, values = raw.partition("=")
        if not sep or not values:
            raise SystemExit(
                f"--axis expects NAME=V1,V2,..., got {raw!r}")
        if name in axes:
            raise SystemExit(
                f"axis {name!r} specified twice; merge its values "
                f"into one option"
            )
        axes[name] = _int_list(values, f"--axis {name}")
    if not axes:
        raise SystemExit(
            f"nothing to {args.command}; pass at least one axis "
            f"(--rob/--lsq/--ifq/--width/--alus/--predictor/--axis)"
        )
    return axes


def _make_backend(args, results_dir: Path):
    """Resolve ``--backend`` (None = the runner's workers default).

    ``--workers`` means "pool size" for the process pool and "local
    worker processes to spawn" for the queue (0 = rely entirely on
    externally started ``resim worker`` processes).
    """
    from repro.exec import (
        BACKENDS,
        DirectoryQueueBackend,
        ExecError,
        ProcessPoolBackend,
        SerialBackend,
    )

    if args.backend == "auto":
        if args.workers < 1:
            raise SystemExit(
                f"--workers must be >= 1 (got {args.workers}); use "
                f"--backend queue --workers 0 to rely on external "
                f"workers"
            )
        return None
    try:
        backend_cls = BACKENDS.get(args.backend)
    except RegistryError as error:
        raise SystemExit(str(error)) from error
    try:
        if backend_cls is SerialBackend:
            return SerialBackend()
        if backend_cls is ProcessPoolBackend:
            return ProcessPoolBackend(args.workers)
        if backend_cls is DirectoryQueueBackend:
            queue_dir = (Path(args.queue_dir) if args.queue_dir
                         else results_dir / "queue")
            return DirectoryQueueBackend(
                queue_dir, workers=args.workers,
                lease_seconds=args.queue_lease,
                timeout=args.queue_timeout,
            )
        return backend_cls()  # extension-registered backend
    except ExecError as error:
        raise SystemExit(str(error)) from error


def _bulk_progress(args):
    if not args.progress:
        return None
    from repro.sweep import ProgressPrinter
    return ProgressPrinter()


def _validate_bulk_options(args) -> Path:
    """Fail on bad presentation/export options *before* simulations
    run, not after minutes of them; returns the resolved results
    dir."""
    from repro.sweep.result import SORT_KEYS
    if hasattr(args, "metric"):  # search names it --metric
        kind, sort_key = "metric", args.metric
    else:  # sweep names it --sort
        kind, sort_key = "sort key", args.sort
    if sort_key not in SORT_KEYS:
        raise SystemExit(
            f"unknown {kind} {sort_key!r}; choose from "
            f"{', '.join(SORT_KEYS)}"
        )
    if args.top is not None and args.top < 1:
        raise SystemExit(f"--top must be positive, got {args.top}")
    results_dir = Path(args.results_dir).resolve()
    for option, export in (("--csv", args.csv), ("--json", args.json)):
        if export:
            parent = Path(export).resolve().parent
            inside_results = (parent == results_dir
                              or results_dir in parent.parents)
            if not parent.is_dir() and not inside_results:
                raise SystemExit(
                    f"{option} {export!r}: directory {parent} does "
                    f"not exist"
                )
    return results_dir


def _export_bulk_result(args, result, device) -> None:
    if args.csv:
        Path(args.csv).resolve().parent.mkdir(parents=True,
                                              exist_ok=True)
        result.to_csv(args.csv, devices=(device,))
        print(f"wrote {args.csv}")
    if args.json:
        Path(args.json).resolve().parent.mkdir(parents=True,
                                               exist_ok=True)
        result.to_json(args.json)
        print(f"wrote {args.json}")


def _sampling_options(args) -> dict:
    """Runner kwargs for the shared --sample-regions bulk options."""
    if args.sample_regions is None:
        return {}
    if args.sample_regions < 1:
        raise SystemExit(f"--sample-regions must be positive, "
                         f"got {args.sample_regions}")
    if args.region_warmup < 0:
        raise SystemExit(f"--region-warmup must be >= 0, "
                         f"got {args.region_warmup}")
    return {
        "sampling": "regions",
        "regions": args.sample_regions,
        "region_seed": args.region_seed,
        "region_warmup": args.region_warmup,
    }


def cmd_sweep(args) -> int:
    from repro.perf.tables import sweep_table  # heavy import, lazy
    from repro.exec import ExecError
    from repro.sweep import SweepError, SweepRunner, SweepSpec

    base = _config(args.config)
    axes = _collect_axes(args)
    device = _device(args.device)
    results_dir = _validate_bulk_options(args)
    backend = _make_backend(args, results_dir)

    try:
        spec = SweepSpec(axes=axes, base=base)
        runner = SweepRunner(
            spec, args.workload, results_dir=args.results_dir,
            budget=args.budget, seed=args.seed, workers=args.workers,
            backend=backend, progress=_bulk_progress(args),
            shards=args.shards, segment_records=args.segment_records,
            engine=args.engine, **_sampling_options(args),
        )
        result = runner.run()
    except (SweepError, ExecError) as error:
        raise SystemExit(str(error)) from error

    print(sweep_table(result, device_name=args.device,
                      sort_key=args.sort, limit=args.top))
    notes = [f"{len(result)} design points"]
    if backend is not None:
        notes.append(f"backend {backend.name}")
    if args.shards > 1:
        notes.append(f"{args.shards} shards per point")
    if args.sample_regions is not None:
        notes.append(f"region-sampled estimates "
                     f"({args.sample_regions} regions requested)")
    if result.resumed_count:
        notes.append(f"{result.resumed_count} resumed from checkpoints")
    if result.skipped_invalid:
        notes.append(f"{result.skipped_invalid} invalid combos skipped")
    if result.skipped_duplicates:
        notes.append(f"{result.skipped_duplicates} duplicates collapsed")
    print(f"\n[{'; '.join(notes)}; results in {args.results_dir}]")
    _export_bulk_result(args, result, device)
    return 0


def cmd_search(args) -> int:
    from repro.perf.tables import sweep_table  # heavy import, lazy
    from repro.exec import ExecError
    from repro.sweep import (
        SEARCHES,
        GridSearch,
        HillClimb,
        RandomSearch,
        SearchRunner,
        SweepError,
        SweepSpec,
    )

    base = _config(args.config)
    axes = _collect_axes(args)
    device = _device(args.device)
    results_dir = _validate_bulk_options(args)
    backend = _make_backend(args, results_dir)
    if args.samples < 1:
        raise SystemExit(f"--samples must be positive, "
                         f"got {args.samples}")
    if args.max_steps < 0:
        raise SystemExit(f"--max-steps must be >= 0, "
                         f"got {args.max_steps}")
    try:
        strategy_cls = SEARCHES.get(args.strategy)
    except RegistryError as error:
        raise SystemExit(str(error)) from error

    try:
        spec = SweepSpec(axes=axes, base=base)
        if strategy_cls is RandomSearch:
            strategy = RandomSearch(spec, samples=args.samples,
                                    seed=args.search_seed,
                                    metric=args.metric)
        elif strategy_cls is HillClimb:
            strategy = HillClimb(spec, metric=args.metric,
                                 max_steps=args.max_steps)
        elif strategy_cls is GridSearch:
            strategy = GridSearch(spec, metric=args.metric)
        else:
            strategy = strategy_cls(spec, metric=args.metric)
        runner = SearchRunner(
            strategy, args.workload, results_dir=args.results_dir,
            budget=args.budget, seed=args.seed, workers=args.workers,
            backend=backend, progress=_bulk_progress(args),
            shards=args.shards, segment_records=args.segment_records,
            engine=args.engine, **_sampling_options(args),
        )
        search = runner.run()
    except (SweepError, ExecError) as error:
        raise SystemExit(str(error)) from error

    print(sweep_table(search.result, device_name=args.device,
                      sort_key=args.metric, limit=args.top))
    print(f"\n{search.summary()}")
    if search.result.resumed_count:
        print(f"[{search.result.resumed_count} point(s) resumed from "
              f"checkpoints; results in {args.results_dir}]")
    _export_bulk_result(args, search.result, device)
    return 0


def cmd_worker(args) -> int:
    from repro.exec.worker import run_from_args
    return run_from_args(args)


def cmd_stats(args) -> int:
    """``resim stats merge A.json B.json ...`` — the shard reducer,
    standalone: merge per-shard (or per-region) result documents into
    one statistics document."""
    import json as _json
    from repro.exec import ExecError, merge_result_documents
    from repro.serialize import stats_from_dict

    documents = []
    for name in args.files:
        path = Path(name)
        try:
            payload = _json.loads(path.read_text())
        except OSError as error:
            raise SystemExit(f"{path}: {error.strerror or error}") from error
        except _json.JSONDecodeError as error:
            raise SystemExit(f"{path}: not valid JSON ({error})") from error
        documents.append(payload)
    try:
        merged = merge_result_documents(documents)
    except ExecError as error:
        raise SystemExit(str(error)) from error
    stats = stats_from_dict(merged["stats"])
    print(f"merged {len(documents)} result document(s) "
          f"({len(merged['stats']['shards'] or ())} shard(s))")
    print(stats.report())
    if args.output:
        text = _json.dumps(merged, indent=2, sort_keys=True)
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    return 0


def _read_json_document(target):
    """Load a JSON document from a file path, or stdin for ``-``."""
    import json as _json
    if target in (None, "-"):
        raw = sys.stdin.read()
        label = "<stdin>"
    else:
        try:
            raw = Path(target).read_text()
        except OSError as error:
            raise SystemExit(
                f"{target}: {error.strerror or error}") from error
        label = target
    try:
        return _json.loads(raw)
    except _json.JSONDecodeError as error:
        raise SystemExit(f"{label}: not valid JSON ({error})") from error


def cmd_serve(args) -> int:
    """``resim serve``: run the campaign service until interrupted."""
    from repro.serve import (
        CampaignServer,
        CampaignService,
        ServiceError,
    )

    if args.concurrency < 1:
        raise SystemExit(f"--concurrency must be >= 1, "
                         f"got {args.concurrency}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    try:
        service = CampaignService(
            args.root, concurrency=args.concurrency,
            workers=args.workers)
        server = CampaignServer(service, host=args.host,
                                port=args.port)
    except (ServiceError, OSError) as error:
        raise SystemExit(str(error)) from error

    def ready(host: str, port: int) -> None:
        print(f"campaign service listening on http://{host}:{port} "
              f"(root {Path(args.root).resolve()})", flush=True)

    try:
        server.run(ready=ready)
    except OSError as error:
        raise SystemExit(
            f"cannot serve on {args.host}:{args.port}: "
            f"{error}") from error
    return 0


def cmd_client(args) -> int:
    """``resim client``: drive a running campaign service."""
    import json as _json
    from repro.serve import ClientError, ServiceClient

    client = ServiceClient(args.host, args.port,
                           timeout=args.timeout)

    def show(document) -> None:
        print(_json.dumps(document, indent=2, sort_keys=True))

    def watch(job_id: str) -> dict:
        # Events go to stderr so stdout stays one parseable JSON
        # document (the batch/submit answer or final status).
        def on_event(event: dict) -> None:
            print(_json.dumps(event, sort_keys=True),
                  file=sys.stderr, flush=True)
        return client.wait(job_id, on_event=on_event)

    try:
        if args.action == "health":
            show(client.health())
        elif args.action == "cache":
            show(client.cache_stats())
        elif args.action == "jobs":
            show({"jobs": client.jobs()})
        elif args.action == "submit":
            answer = client.submit(_read_json_document(args.target))
            if args.wait:
                watch(answer["job_id"])
                show(client.result(answer["job_id"]))
            else:
                show(answer)
        elif args.action == "batch":
            documents = _read_json_document(args.target)
            if not isinstance(documents, list):
                raise SystemExit(
                    "batch expects a JSON array of request documents")
            answers = client.batch_submit(documents)
            if args.wait:
                for answer in answers:
                    watch(answer["job_id"])
                show({"results": [client.result(answer["job_id"])
                                  for answer in answers]})
            else:
                show({"submitted": answers})
        else:  # watch / fetch / status / cancel need a job id
            if not args.target:
                raise SystemExit(f"resim client {args.action} needs "
                                 f"a job id")
            if args.action == "watch":
                show(watch(args.target))
            elif args.action == "fetch":
                show(client.result(args.target))
            elif args.action == "status":
                show(client.status(args.target))
            else:
                show(client.cancel(args.target))
    except ClientError as error:
        raise SystemExit(str(error)) from error
    return 0


def cmd_spec(args) -> int:
    """``resim spec hash``: print a simulation spec's canonical
    content key — the same canonicalization + hash the campaign
    cache builds its keys from, so two invocations agree iff the
    service would treat the specs as the same computation."""
    from repro.session import SessionError

    if args.length < 4 or args.length > 64:
        raise SystemExit(f"--length must be in 4..64, "
                         f"got {args.length}")
    try:
        if args.file:
            simulation = Simulation.from_spec(
                _read_json_document(args.file))
        elif args.trace_file:
            simulation = Simulation.for_trace_file(
                args.trace_file, config=_config(args.config))
        else:
            simulation = _workload_simulation(args,
                                              _config(args.config))
        print(simulation.spec_key(length=args.length))
    except SessionError as error:
        raise SystemExit(str(error)) from error
    return 0


def cmd_lint(args) -> int:
    """`resim lint`: run the project's AST invariant linter.

    The linter lives in ``tools/lint`` (repo tooling, stdlib-only,
    outside the installable package) so the same code path serves
    ``python -m tools.lint`` and this subcommand.  It is importable
    from a source checkout; an installed-only environment has no
    ``src/`` to lint anyway.
    """
    try:
        from tools.lint.cli import run
    except ImportError:
        # Running from the source tree without the repo root on
        # sys.path: src/repro/cli.py -> parents[2] is the checkout.
        root = Path(__file__).resolve().parents[2]
        if not (root / "tools" / "lint").is_dir():
            raise SystemExit(
                "resim lint needs a source checkout (tools/lint not "
                "found); run it from the repository, or use "
                "python -m tools.lint there") from None
        sys.path.insert(0, str(root))
        from tools.lint.cli import run
    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    return run(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="resim", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--config", default="4wide-perfect",
                       help=f"processor config ({', '.join(CONFIGS)})")
        p.add_argument("--budget", type=int, default=20_000)
        p.add_argument("--seed", type=int, default=7)

    trace = sub.add_parser(
        "trace",
        help="generate a trace file, or inspect one (trace info FILE)")
    add_common(trace)
    trace.add_argument(
        "workload",
        help="benchmark profile or kernel name, or the literal 'info' "
             "/ 'analyze' to inspect / profile an existing trace file")
    trace.add_argument(
        "output",
        help="output trace file path (with 'info'/'analyze': the file "
             "to inspect)")
    trace.add_argument("--segment-records", type=int,
                       default=DEFAULT_SEGMENT_RECORDS,
                       help="records per v2 segment (decode granularity "
                            "of streaming readers)")
    trace.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="with 'info'/'analyze': output format "
                            "(json includes the trace content digest "
                            "the campaign cache keys on)")
    trace.add_argument("--force", action="store_true",
                       help="with 'analyze': re-profile even when a "
                            "digest-fresh .rprof sidecar exists")
    trace.set_defaults(func=cmd_trace)

    simulate = sub.add_parser("simulate", help="run the timing engine")
    add_common(simulate)
    simulate.add_argument("workload", nargs="?", default="gzip")
    simulate.add_argument("--trace-file", default=None,
                          help="simulate a stored trace instead")
    simulate.add_argument("--in-memory", action="store_true",
                          help="decode the whole trace file up front "
                               "instead of streaming it")
    simulate.add_argument("--progress", action="store_true",
                          help="print periodic progress lines to stderr")
    simulate.add_argument("--progress-records", type=int,
                          default=100_000,
                          help="records between progress lines")
    simulate.add_argument("--engine", default="reference",
                          help=f"engine tier ({', '.join(ENGINES)}); "
                               f"tiers are bit-identical, 'specialized' "
                               f"compiles the config into a fast path")
    simulate.add_argument("--sample-regions", type=int, default=None,
                          metavar="N",
                          help="with --trace-file: estimate the run "
                               "from N weighted representative regions "
                               "instead of replaying every record (an "
                               "approximation; see README "
                               "'Region-sampled simulation')")
    simulate.add_argument("--region-seed", type=int, default=0,
                          help="k-means seed for --sample-regions")
    simulate.add_argument("--region-warmup", type=int, default=1,
                          metavar="SEGMENTS",
                          help="warmup segments replayed (uncounted) "
                               "before each representative region")
    simulate.set_defaults(func=cmd_simulate)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("tables", nargs="*", metavar="TABLE")
    tables.add_argument("--budget", type=int, default=30_000)
    tables.set_defaults(func=cmd_tables)

    area = sub.add_parser("area", help="Table 4 area breakdown")
    area.add_argument("--config", default="4wide-perfect")
    area.add_argument("--device", default="xc4vlx40")
    area.add_argument("--with-caches", action="store_true",
                      help="include cache tag structures")
    area.set_defaults(func=cmd_area)

    vhdl = sub.add_parser("vhdl", help="emit branch-predictor VHDL")
    vhdl.add_argument("--config", default="4wide-perfect")
    vhdl.add_argument("output_dir")
    vhdl.set_defaults(func=cmd_vhdl)

    multicore = sub.add_parser("multicore",
                               help="Section VI multi-core study")
    add_common(multicore)
    multicore.add_argument("--device", default="xc4vlx100")
    multicore.add_argument("--channel-gbps", type=float, default=6.4)
    multicore.add_argument("benchmarks", nargs="*", metavar="BENCH")
    multicore.set_defaults(func=cmd_multicore)

    def add_axes(p, verb):
        p.add_argument("--rob", help="ROB sizes, e.g. 8,16,32")
        p.add_argument("--lsq", help="LSQ sizes")
        p.add_argument("--ifq", help="IFQ sizes")
        p.add_argument("--width", help="superscalar widths")
        p.add_argument("--alus", help="ALU counts")
        p.add_argument("--predictor",
                       help="predictor schemes, e.g. twolevel,bimodal")
        p.add_argument("--axis", action="append",
                       metavar="NAME=V1,V2",
                       help=f"{verb} any integer ProcessorConfig field")

    def add_bulk(p, default_dir):
        """Options shared by the two bulk commands (sweep/search):
        where results live, how points execute, how they render."""
        p.add_argument("--results-dir", default=default_dir,
                       help="trace + checkpoint directory (reuse to "
                            "resume an interrupted run)")
        p.add_argument("--workers", type=int, default=1,
                       help="pool size (--backend auto/pool) or local "
                            "worker processes to spawn "
                            "(--backend queue; 0 = external workers "
                            "only)")
        p.add_argument("--backend", default="auto",
                       help="execution backend: auto (serial for "
                            "--workers 1, else pool), serial, pool, "
                            "or queue (shared-filesystem multi-host; "
                            "see 'resim worker')")
        p.add_argument("--queue-dir", default=None,
                       help="queue directory for --backend queue "
                            "(default: RESULTS_DIR/queue; every host "
                            "must see it at the same path)")
        p.add_argument("--queue-lease", type=float, default=60.0,
                       help="seconds of silence before a claimed "
                            "unit is presumed orphaned and retried")
        p.add_argument("--queue-timeout", type=float, default=None,
                       help="abort if no unit completes for this "
                            "many seconds (default: wait forever)")
        p.add_argument("--shards", type=int, default=1,
                       help="split every design point into N "
                            "segment-range shard units, merged back "
                            "into one result (exact-sum counters "
                            "identical, cycle metrics approximate; "
                            "see README 'Sharded design points')")
        p.add_argument("--segment-records", type=int,
                       default=DEFAULT_SEGMENT_RECORDS,
                       help="records per v2 trace segment when the "
                            "sweep generates its trace (the shard "
                            "planner's boundary granularity)")
        p.add_argument("--sample-regions", type=int, default=None,
                       metavar="N",
                       help="estimate every design point from N "
                            "weighted representative regions instead "
                            "of replaying the whole trace (an "
                            "approximation; see README "
                            "'Region-sampled simulation'; mutually "
                            "exclusive with --shards)")
        p.add_argument("--region-seed", type=int, default=0,
                       help="k-means seed for --sample-regions; fixed "
                            "seed = identical plan")
        p.add_argument("--region-warmup", type=int, default=1,
                       metavar="SEGMENTS",
                       help="warmup segments replayed (uncounted) "
                            "before each representative region")
        p.add_argument("--engine", default="reference",
                       help=f"engine tier executing every point "
                            f"({', '.join(ENGINES)}); tiers are "
                            f"bit-identical, so checkpoints and cache "
                            f"keys are shared across them")
        p.add_argument("--progress", action="store_true",
                       help="report per-point completion to stderr")
        p.add_argument("--device", default="xc4vlx40",
                       help="device for projected MIPS column")
        p.add_argument("--top", type=int, default=None,
                       help="show only the best N points")
        p.add_argument("--csv", default=None, help="CSV export path")
        p.add_argument("--json", default=None, help="JSON export path")

    sweep = sub.add_parser(
        "sweep", help="bulk design-space sweep over one shared trace")
    add_common(sweep)
    sweep.add_argument("workload", nargs="?", default="gzip",
                       help="benchmark profile or kernel name")
    add_axes(sweep, "sweep")
    add_bulk(sweep, "sweep-results")
    sweep.add_argument("--sort", default="ipc",
                       help="table sort key (ipc, cycles, mispredictions)")
    sweep.set_defaults(func=cmd_sweep)

    search = sub.add_parser(
        "search",
        help="adaptive design-space search (grid/random/hillclimb)")
    add_common(search)
    search.add_argument("workload", nargs="?", default="gzip",
                        help="benchmark profile or kernel name")
    add_axes(search, "search")
    add_bulk(search, "search-results")
    search.add_argument("--strategy", default="hillclimb",
                        help="search strategy (grid, random, "
                             "hillclimb)")
    search.add_argument("--metric", default="ipc",
                        help="objective to optimize (ipc, cycles, "
                             "mispredictions)")
    search.add_argument("--samples", type=int, default=16,
                        help="points to sample (--strategy random)")
    search.add_argument("--search-seed", type=int, default=1,
                        help="sampling seed (--strategy random); "
                             "fixed seed = identical search")
    search.add_argument("--max-steps", type=int, default=64,
                        help="move budget (--strategy hillclimb)")
    search.set_defaults(func=cmd_search)

    from repro.exec.worker import add_worker_arguments
    worker = sub.add_parser(
        "worker",
        help="process work units from a shared queue directory")
    add_worker_arguments(worker)
    worker.set_defaults(func=cmd_worker)

    stats = sub.add_parser(
        "stats",
        help="statistics utilities: merge shard result documents")
    stats.add_argument("action", choices=("merge",),
                       help="operation (currently only 'merge')")
    stats.add_argument("files", nargs="+", metavar="RESULT_JSON",
                       help="per-shard result documents to reduce")
    stats.add_argument("--output", "-o", default=None,
                       help="write the merged document here")
    stats.set_defaults(func=cmd_stats)

    # Defaults below mirror repro.serve.app.DEFAULT_HOST/DEFAULT_PORT;
    # literals keep parser construction free of the serve import.
    serve = sub.add_parser(
        "serve",
        help="run the campaign service: async submission API + "
             "content-addressed result cache")
    serve.add_argument("root", nargs="?", default="campaign-root",
                       help="service state directory (cache, job "
                            "journal, results; reuse to resume "
                            "journaled jobs after a crash)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8437,
                       help="listen port (0 = pick a free port)")
    serve.add_argument("--concurrency", type=int, default=2,
                       help="jobs running at once")
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool size per job (1 = serial)")
    serve.set_defaults(func=cmd_serve)

    client = sub.add_parser(
        "client",
        help="talk to a running campaign service")
    client.add_argument(
        "action",
        choices=("submit", "batch", "watch", "fetch", "status",
                 "cancel", "health", "cache", "jobs"),
        help="submit/batch take a request JSON file; "
             "watch/fetch/status/cancel take a job id")
    client.add_argument(
        "target", nargs="?", default=None,
        help="request document path ('-' = stdin) for submit, a "
             "JSON array of documents for batch, or a job id")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8437)
    client.add_argument("--timeout", type=float, default=600.0,
                        help="per-request socket timeout in seconds")
    client.add_argument("--wait", action="store_true",
                        help="after submit/batch: stream progress "
                             "events until done, then print the "
                             "result envelope")
    client.set_defaults(func=cmd_client)

    spec = sub.add_parser(
        "spec",
        help="spec utilities: 'spec hash' prints the canonical "
             "content key the campaign cache uses")
    spec.add_argument("action", choices=("hash",),
                      help="operation (currently only 'hash')")
    spec.add_argument("--file", default=None, metavar="SPEC_JSON",
                      help="hash a saved spec document "
                           "('-' = stdin)")
    spec.add_argument("--trace-file", default=None,
                      help="hash a trace-file simulation spec")
    spec.add_argument("--workload", default="gzip",
                      help="hash a workload simulation spec "
                           "(ignored with --file/--trace-file)")
    spec.add_argument("--config", default="4wide-perfect",
                      help=f"processor config ({', '.join(CONFIGS)})")
    spec.add_argument("--budget", type=int, default=20_000)
    spec.add_argument("--seed", type=int, default=7)
    spec.add_argument("--length", type=int, default=40,
                      help="hex digits to print (4..64; the campaign "
                           "cache uses 40)")
    spec.set_defaults(func=cmd_spec)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter (determinism, "
             "serialization, exact-sum contracts) over src/")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint "
                           "(default: the checkout's src/)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", help="output format")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids to run")
    lint.add_argument("--list-rules", action="store_true",
                      help="list rules with rationale and exit")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
