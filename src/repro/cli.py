"""Command-line interface: the ReSim toolflow without writing Python.

Subcommands mirror how the paper's system is used:

* ``trace``    — generate a tagged trace (synthetic benchmark or
  assembled kernel) and write it to a trace file;
* ``simulate`` — run a trace file (or generate one on the fly) through
  the timing engine and print statistics + FPGA-projected MIPS;
* ``tables``   — regenerate the paper's Tables 1-4;
* ``area``     — print the Table 4 area breakdown for a configuration;
* ``vhdl``     — emit the parametric branch-predictor VHDL;
* ``multicore``— the Section VI study: instances per device and
  aggregate throughput under the shared trace channel.

Entry point: ``python -m repro.cli <subcommand>`` or the installed
``resim`` script.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.core.config import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT
from repro.core.engine import ReSimEngine
from repro.core.minorpipe import select_pipeline
from repro.fpga.area import AreaEstimator
from repro.fpga.device import DEVICES, VIRTEX4_LX40, VIRTEX5_LX50T
from repro.fpga.vhdlgen import generate_branch_predictor_vhdl
from repro.functional.sim_bpred import SimBpred
from repro.multicore.simulator import MultiCoreSimulator, TraceChannel
from repro.perf.throughput import ThroughputModel
from repro.trace.fileio import read_trace_file, write_trace_file
from repro.workloads.kernels import KERNELS, kernel_program
from repro.workloads.profiles import SPECINT_PROFILES, get_profile
from repro.workloads.synthetic import SyntheticWorkload

CONFIGS = {
    "4wide-perfect": PAPER_4WIDE_PERFECT,
    "2wide-cache": PAPER_2WIDE_CACHE,
}


def _config(name: str):
    try:
        return CONFIGS[name]
    except KeyError:
        raise SystemExit(
            f"unknown config {name!r}; choose from {', '.join(CONFIGS)}"
        )


def _device(name: str):
    try:
        return DEVICES[name]
    except KeyError:
        raise SystemExit(
            f"unknown device {name!r}; choose from {', '.join(DEVICES)}"
        )


def _generate_records(args, config):
    """Shared workload selection for `trace` and `simulate`."""
    if args.workload in SPECINT_PROFILES:
        workload = SyntheticWorkload(
            get_profile(args.workload), seed=args.seed,
            predictor_config=config.predictor,
            rob_entries=config.rob_entries,
            ifq_entries=config.ifq_entries,
        )
        generation = workload.generate(args.budget)
        return generation.records, None
    if args.workload in KERNELS:
        program = kernel_program(args.workload)
        tracer = SimBpred(
            predictor_config=config.predictor,
            rob_entries=config.rob_entries,
            ifq_entries=config.ifq_entries,
        )
        generation = tracer.generate(program)
        return generation.records, program.entry
    raise SystemExit(
        f"unknown workload {args.workload!r}; benchmarks: "
        f"{', '.join(SPECINT_PROFILES)}; kernels: {', '.join(KERNELS)}"
    )


def cmd_trace(args) -> int:
    config = _config(args.config)
    records, __ = _generate_records(args, config)
    written = write_trace_file(
        args.output, records, predictor=config.predictor,
        benchmark=args.workload, seed=args.seed,
    )
    print(f"wrote {len(records)} records ({written} bytes) "
          f"to {args.output}")
    return 0


def cmd_simulate(args) -> int:
    config = _config(args.config)
    start_pc = None
    if args.trace_file:
        header, records = read_trace_file(args.trace_file)
        stored = header.predictor_config
        if stored is not None and stored != config.predictor:
            print("warning: trace was generated with a different "
                  "predictor configuration; Tag bits may not match "
                  "this engine's predictions", file=sys.stderr)
    else:
        records, start_pc = _generate_records(args, config)
    engine = ReSimEngine(
        config, records,
        **({"start_pc": start_pc} if start_pc is not None else {}),
    )
    result = engine.run()
    print(result.stats.report())
    pipeline = select_pipeline(config.width, config.memory_ports)
    print(f"\ninternal pipeline: {pipeline.name} "
          f"(major = {pipeline.minor_cycles_per_major} minor cycles)")
    for device in (VIRTEX4_LX40, VIRTEX5_LX50T):
        report = ThroughputModel(device).report(result)
        print(f"  {device.name:12s} {report.mips:7.2f} MIPS")
    return 0


def cmd_tables(args) -> int:
    from repro.perf.tables import render_all  # heavy import, lazy
    try:
        render_all(args.tables or None, args.budget)
    except KeyError as error:
        raise SystemExit(str(error.args[0]))
    return 0


def cmd_area(args) -> int:
    config = _config(args.config)
    if args.with_caches:
        config = replace(config, perfect_memory=False)
    report = AreaEstimator(config, device_name=args.device).estimate()
    print(report.render())
    return 0


def cmd_vhdl(args) -> int:
    config = _config(args.config)
    sources = generate_branch_predictor_vhdl(config.predictor)
    output = Path(args.output_dir)
    output.mkdir(parents=True, exist_ok=True)
    for entity, source in sources.items():
        path = output / f"{entity}.vhd"
        path.write_text(source)
        print(f"wrote {path}")
    return 0


def cmd_multicore(args) -> int:
    config = _config(args.config)
    device = _device(args.device)
    simulator = MultiCoreSimulator(
        config, device, TraceChannel(args.channel_gbps)
    )
    print(f"{device.name}: up to {simulator.max_instances} instance(s)")
    benchmarks = args.benchmarks or list(SPECINT_PROFILES)
    count = min(len(benchmarks), max(1, simulator.max_instances))
    result = simulator.run(benchmarks[:count], budget=args.budget,
                           seed=args.seed)
    print(result.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="resim", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--config", default="4wide-perfect",
                       help=f"processor config ({', '.join(CONFIGS)})")
        p.add_argument("--budget", type=int, default=20_000)
        p.add_argument("--seed", type=int, default=7)

    trace = sub.add_parser("trace", help="generate a trace file")
    add_common(trace)
    trace.add_argument("workload", help="benchmark profile or kernel name")
    trace.add_argument("output", help="output trace file path")
    trace.set_defaults(func=cmd_trace)

    simulate = sub.add_parser("simulate", help="run the timing engine")
    add_common(simulate)
    simulate.add_argument("workload", nargs="?", default="gzip")
    simulate.add_argument("--trace-file", default=None,
                          help="simulate a stored trace instead")
    simulate.set_defaults(func=cmd_simulate)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("tables", nargs="*", metavar="TABLE")
    tables.add_argument("--budget", type=int, default=30_000)
    tables.set_defaults(func=cmd_tables)

    area = sub.add_parser("area", help="Table 4 area breakdown")
    area.add_argument("--config", default="4wide-perfect")
    area.add_argument("--device", default="xc4vlx40")
    area.add_argument("--with-caches", action="store_true",
                      help="include cache tag structures")
    area.set_defaults(func=cmd_area)

    vhdl = sub.add_parser("vhdl", help="emit branch-predictor VHDL")
    vhdl.add_argument("--config", default="4wide-perfect")
    vhdl.add_argument("output_dir")
    vhdl.set_defaults(func=cmd_vhdl)

    multicore = sub.add_parser("multicore",
                               help="Section VI multi-core study")
    add_common(multicore)
    multicore.add_argument("--device", default="xc4vlx100")
    multicore.add_argument("--channel-gbps", type=float, default=6.4)
    multicore.add_argument("benchmarks", nargs="*", metavar="BENCH")
    multicore.set_defaults(func=cmd_multicore)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
