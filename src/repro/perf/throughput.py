"""Simulation-throughput mathematics.

The quantity ReSim is evaluated on is *simulation throughput*: how
many simulated instructions complete per wall-clock second on the
FPGA.  With a minor-cycle frequency ``f`` and a major cycle of ``L``
minor cycles, major cycles complete at ``f / L``; multiplying by the
engine-measured instructions per major cycle gives MIPS:

* **Table 1 MIPS** uses committed (correct-path) instructions;
* **Table 3 MIPS** uses all trace records consumed — "simulation
  throughput including mis-speculated instructions", the *total trace
  instruction demands*;
* **Table 3 bandwidth** = Table-3 MIPS x bits-per-instruction / 8,
  in MBytes/s (the paper notes ~1.1 Gb/s, beyond plain GigE).

The Virtex-4 / Virtex-5 MIPS ratio is therefore exactly the frequency
ratio 84/105 for every benchmark — a property the paper's Table 1
exhibits and our tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import SimulationResult
from repro.core.minorpipe import MinorPipeline, select_pipeline
from repro.fpga.device import FpgaDevice


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput of one (run, device, pipeline) combination."""

    device_name: str
    minor_cycle_mhz: float
    minor_cycles_per_major: int
    ipc: float
    fetch_throughput: float
    trace_throughput: float

    @property
    def major_cycle_mhz(self) -> float:
        """Simulated-cycle completion rate."""
        return self.minor_cycle_mhz / self.minor_cycles_per_major

    @property
    def mips(self) -> float:
        """Committed-instruction throughput (Table 1)."""
        return self.major_cycle_mhz * self.ipc

    @property
    def mips_with_wrong_path(self) -> float:
        """Trace-record throughput (Table 3): total trace demands."""
        return self.major_cycle_mhz * self.trace_throughput

    def bandwidth_mbytes_per_sec(self, bits_per_instruction: float) -> float:
        """Required trace input bandwidth (Table 3, last column)."""
        return self.mips_with_wrong_path * bits_per_instruction / 8.0

    def bandwidth_gbits_per_sec(self, bits_per_instruction: float) -> float:
        """Same requirement in Gb/s (the paper quotes ~1.1 Gb/s)."""
        return (self.mips_with_wrong_path * bits_per_instruction) / 1000.0


class ThroughputModel:
    """Combines engine results with a device and a pipeline model."""

    def __init__(self, device: FpgaDevice,
                 pipeline: MinorPipeline | None = None) -> None:
        self._device = device
        self._pipeline = pipeline

    def _pipeline_for(self, result: SimulationResult) -> MinorPipeline:
        if self._pipeline is not None:
            return self._pipeline
        config = result.config
        return select_pipeline(config.width, config.memory_ports)

    def report(self, result: SimulationResult) -> ThroughputReport:
        """Throughput of one simulation run on this device."""
        pipeline = self._pipeline_for(result)
        stats = result.stats
        return ThroughputReport(
            device_name=self._device.name,
            minor_cycle_mhz=self._device.minor_cycle_mhz,
            minor_cycles_per_major=pipeline.minor_cycles_per_major,
            ipc=stats.ipc,
            fetch_throughput=stats.fetch_throughput,
            trace_throughput=stats.trace_throughput,
        )

    def wall_clock_seconds(self, result: SimulationResult) -> float:
        """FPGA seconds to simulate the run."""
        pipeline = self._pipeline_for(result)
        minors = pipeline.total_minor_cycles(result.major_cycles)
        return minors / (self._device.minor_cycle_mhz * 1e6)
