"""Shared evaluation harness for benchmarks and examples.

One call runs a synthetic benchmark through trace generation and the
timing engine, then projects throughput onto any number of FPGA
devices.  The benchmark scripts (``benchmarks/``), the table-
reproduction example, and several tests all consume these rows, so the
numbers in every artifact come from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ProcessorConfig
from repro.core.engine import SimulationResult
from repro.fpga.device import FpgaDevice, VIRTEX4_LX40, VIRTEX5_LX50T
from repro.perf.throughput import ThroughputReport
from repro.session import Simulation
from repro.trace.stats import TraceStatistics

#: Default devices: the paper's two implementation targets.
DEFAULT_DEVICES = (VIRTEX4_LX40, VIRTEX5_LX50T)

#: Default per-benchmark instruction budget.  Small enough for quick
#: runs, large enough for the predictor/caches to reach steady state.
DEFAULT_BUDGET = 30_000

#: Default workload seed (kept fixed so every table in EXPERIMENTS.md
#: regenerates identically).
DEFAULT_SEED = 7


@dataclass
class BenchmarkRow:
    """Everything measured for one (benchmark, configuration) pair."""

    benchmark: str
    config: ProcessorConfig
    result: SimulationResult
    trace_stats: TraceStatistics
    reports: dict[str, ThroughputReport] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.result.ipc

    def mips(self, device_name: str) -> float:
        """Table 1 MIPS on one device."""
        return self.reports[device_name].mips

    def mips_with_wrong_path(self, device_name: str) -> float:
        """Table 3 MIPS (total trace demands) on one device."""
        return self.reports[device_name].mips_with_wrong_path

    def bandwidth_mbytes(self, device_name: str) -> float:
        """Table 3 trace bandwidth on one device."""
        return self.reports[device_name].bandwidth_mbytes_per_sec(
            self.trace_stats.bits_per_instruction
        )

    @property
    def bits_per_instruction(self) -> float:
        return self.trace_stats.bits_per_instruction


def evaluate_benchmark(
    benchmark: str,
    config: ProcessorConfig,
    devices: tuple[FpgaDevice, ...] = DEFAULT_DEVICES,
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
) -> BenchmarkRow:
    """Generate, simulate, and project one benchmark.

    The workload's predictor configuration and wrong-path block bound
    are taken from ``config`` so trace and engine stay consistent.
    """
    session = (Simulation.for_workload(benchmark, config,
                                       budget=budget, seed=seed)
               .with_devices(*devices)
               .run())
    return BenchmarkRow(
        benchmark=benchmark,
        config=config,
        result=session.result,
        trace_stats=session.trace_stats,
        reports=dict(session.reports),
    )


def evaluate_suite(
    config: ProcessorConfig,
    benchmarks: tuple[str, ...] = ("gzip", "bzip2", "parser",
                                   "vortex", "vpr"),
    devices: tuple[FpgaDevice, ...] = DEFAULT_DEVICES,
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
) -> list[BenchmarkRow]:
    """Evaluate the full SPECINT suite on one configuration."""
    return [
        evaluate_benchmark(name, config, devices, budget, seed)
        for name in benchmarks
    ]


def average_mips(rows: list[BenchmarkRow], device_name: str) -> float:
    """Arithmetic mean of Table 1 MIPS over a suite (the paper's
    'Average' row)."""
    if not rows:
        return 0.0
    return sum(row.mips(device_name) for row in rows) / len(rows)
