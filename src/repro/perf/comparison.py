"""Cross-simulator comparison (Table 2) and speedup claims.

The paper compares ReSim against published simulator speeds — software
(PTLsim, SimpleScalar's sim-outorder, GEMS), hardware (FAST, A-Ports)
— exactly as reported in the FAST paper and the A-Ports paper.  We
reproduce the comparison the same way: the non-ReSim rows are
literature constants (they cannot be re-measured without those
systems), while the ReSim rows are recomputed live by our engine +
throughput model.  The derived claims the tests check:

* ReSim (2-wide, perfect BP, V4) / FAST (perfect BP) ≈ 6.57x;
* ReSim vs. A-Ports ≈ 5x;
* hardware simulators beat software ones by orders of magnitude.

Area comparison constants from the Table 4 discussion: a 4-wide FAST
configuration on Virtex-4 occupies 29 230 slices and 172 BRAMs — 2.4x
and 24x ReSim's respective totals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimulatorEntry:
    """One row of the Table 2 comparison."""

    name: str
    isa: str
    mips: float
    category: str       # "software" | "hardware" | "resim"
    source: str         # provenance of the number

    def describe(self) -> str:
        return f"{self.name:<28s} {self.isa:<24s} {self.mips:8.2f} MIPS"


#: Published simulator speeds, as cited in the paper's Table 2.
PUBLISHED_SIMULATORS: tuple[SimulatorEntry, ...] = (
    SimulatorEntry("PTLsim", "x86-64", 0.27, "software",
                   "reported in FAST (ICCAD'07), cited by Table 2"),
    SimulatorEntry("sim-outorder", "PISA", 0.30, "software",
                   "reported in FAST (ICCAD'07), cited by Table 2"),
    SimulatorEntry("GEMS", "Sparc", 0.07, "software",
                   "reported in FAST (ICCAD'07), cited by Table 2"),
    SimulatorEntry("FAST (gshare BP)", "x86", 1.20, "hardware",
                   "FAST (ICCAD'07), cited by Table 2"),
    SimulatorEntry("FAST (perfect BP)", "x86", 2.79, "hardware",
                   "FAST scaled to Muops, Table 1 right"),
    SimulatorEntry("A-Ports", "MIPS subset, 4-wide", 4.70, "hardware",
                   "A-Ports (FPGA'08), Virtex-2Pro, cited by Table 2"),
)

#: FAST area on Virtex-4 (Table 4 discussion).
FAST_AREA_SLICES = 29_230
FAST_AREA_BRAMS = 172


def comparison_table(resim_rows: dict[str, float]) -> list[SimulatorEntry]:
    """Assemble Table 2: published rows plus measured ReSim rows.

    Parameters
    ----------
    resim_rows:
        Mapping from a ReSim configuration label (e.g.
        ``"ReSim (PISA, 2-wide, perfect BP, Virtex5)"``) to its
        measured MIPS.
    """
    rows = list(PUBLISHED_SIMULATORS)
    for label, mips in resim_rows.items():
        rows.append(SimulatorEntry(
            name=label, isa="PISA (trace-driven)", mips=mips,
            category="resim", source="measured by this reproduction",
        ))
    return rows


def speedup_over(resim_mips: float, competitor_name: str) -> float:
    """ReSim speedup over one published simulator."""
    for entry in PUBLISHED_SIMULATORS:
        if entry.name == competitor_name:
            return resim_mips / entry.mips
    raise KeyError(f"unknown simulator {competitor_name!r}")


def best_hardware_competitor() -> SimulatorEntry:
    """The fastest published non-ReSim hardware simulator (A-Ports)."""
    hardware = [e for e in PUBLISHED_SIMULATORS if e.category == "hardware"]
    return max(hardware, key=lambda entry: entry.mips)


def render_table(rows: list[SimulatorEntry]) -> str:
    """ASCII rendition of Table 2."""
    lines = [f"{'Simulator':<28s} {'ISA':<24s} {'Speed':>13s}",
             "-" * 67]
    for entry in rows:
        lines.append(entry.describe())
    return "\n".join(lines)
