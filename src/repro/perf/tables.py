"""Paper-table rendering (Tables 1-4), shared by the example script
and the ``resim tables`` CLI subcommand.

Each function regenerates one table of the paper's evaluation section
at a given instruction budget and prints it next to the paper's
reported values.  The measurement code paths are the same ones the
benchmark harness asserts against; this module only formats.
"""

from __future__ import annotations

from dataclasses import replace

from repro import PAPER_2WIDE_CACHE, PAPER_4WIDE_PERFECT, VIRTEX4_LX40
from repro.fpga.area import AreaEstimator
from repro.perf.comparison import (
    FAST_AREA_BRAMS,
    FAST_AREA_SLICES,
    comparison_table,
    render_table,
    speedup_over,
)
from repro.perf.harness import average_mips, evaluate_suite

BENCHMARKS = ("gzip", "bzip2", "parser", "vortex", "vpr")

PAPER_TABLE1_LEFT = {"gzip": (23.26, 29.07), "bzip2": (27.55, 34.44),
                     "parser": (19.94, 24.92), "vortex": (23.57, 29.46),
                     "vpr": (20.38, 25.48), "Average": (22.94, 28.67)}
PAPER_TABLE1_RIGHT = {"gzip": (20.44, 25.55), "bzip2": (18.53, 23.16),
                      "parser": (16.70, 20.88), "vortex": (16.83, 21.04),
                      "vpr": (19.16, 23.95), "Average": (18.33, 22.92)}
PAPER_TABLE3 = {"gzip": (41.74, 26.37, 137.56),
                "bzip2": (41.16, 29.43, 151.39),
                "parser": (43.66, 22.83, 124.58),
                "vortex": (47.14, 24.47, 144.20),
                "vpr": (43.52, 24.44, 132.94),
                "Average": (43.44, 25.51, 138.13)}


def table1(budget: int) -> None:
    print("== Table 1: ReSim simulation performance (MIPS) ==\n")
    for label, config, paper in (
        ("4-issue, perfect memory, 2-level BP (left)",
         PAPER_4WIDE_PERFECT, PAPER_TABLE1_LEFT),
        ("2-issue, 32KB L1, perfect BP (right)",
         PAPER_2WIDE_CACHE, PAPER_TABLE1_RIGHT),
    ):
        rows = evaluate_suite(config, budget=budget)
        print(f"--- {label} ---")
        print(f"{'SPEC':8s} {'V4 meas':>8s} {'V4 paper':>9s} "
              f"{'V5 meas':>8s} {'V5 paper':>9s}")
        for row in rows:
            paper_v4, paper_v5 = paper[row.benchmark]
            print(f"{row.benchmark:8s} {row.mips('xc4vlx40'):8.2f} "
                  f"{paper_v4:9.2f} {row.mips('xc5vlx50t'):8.2f} "
                  f"{paper_v5:9.2f}")
        v4 = average_mips(rows, "xc4vlx40")
        v5 = average_mips(rows, "xc5vlx50t")
        paper_v4, paper_v5 = paper["Average"]
        print(f"{'Average':8s} {v4:8.2f} {paper_v4:9.2f} "
              f"{v5:8.2f} {paper_v5:9.2f}\n")


def table2(budget: int) -> None:
    print("== Table 2: architectural simulator performance ==\n")
    rows_2w = evaluate_suite(PAPER_2WIDE_CACHE, budget=budget)
    rows_4w = evaluate_suite(PAPER_4WIDE_PERFECT, budget=budget)
    resim = {
        "ReSim (2-wide, perfect BP, Virtex5)":
            average_mips(rows_2w, "xc5vlx50t"),
        "ReSim (4-wide, 2-lev BP, Virtex5)":
            average_mips(rows_4w, "xc5vlx50t"),
    }
    print(render_table(comparison_table(resim)))
    v4_2w = average_mips(rows_2w, "xc4vlx40")
    print(f"\nReSim (2-wide, V4) vs FAST (perfect BP): "
          f"{speedup_over(v4_2w, 'FAST (perfect BP)'):.2f}x "
          f"(paper: 6.57x)")
    v5_4w = average_mips(rows_4w, "xc5vlx50t")
    print(f"ReSim (4-wide, V5) vs A-Ports:           "
          f"{speedup_over(v5_4w, 'A-Ports'):.2f}x (paper: ~5x)")


def table3(budget: int) -> None:
    print("== Table 3: ReSim throughput statistics "
          "(V4, perfect memory) ==\n")
    rows = evaluate_suite(PAPER_4WIDE_PERFECT, budget=budget)
    print(f"{'SPEC':8s} {'bits/i':>7s} {'(paper)':>8s} "
          f"{'MIPS+wp':>8s} {'(paper)':>8s} {'MB/s':>8s} {'(paper)':>8s}")
    sums = [0.0, 0.0, 0.0]
    for row in rows:
        bits = row.bits_per_instruction
        mips = row.mips_with_wrong_path("xc4vlx40")
        bandwidth = row.bandwidth_mbytes("xc4vlx40")
        paper_bits, paper_mips, paper_bw = PAPER_TABLE3[row.benchmark]
        sums[0] += bits
        sums[1] += mips
        sums[2] += bandwidth
        print(f"{row.benchmark:8s} {bits:7.2f} {paper_bits:8.2f} "
              f"{mips:8.2f} {paper_mips:8.2f} "
              f"{bandwidth:8.2f} {paper_bw:8.2f}")
    count = len(rows)
    paper_bits, paper_mips, paper_bw = PAPER_TABLE3["Average"]
    print(f"{'Average':8s} {sums[0]/count:7.2f} {paper_bits:8.2f} "
          f"{sums[1]/count:8.2f} {paper_mips:8.2f} "
          f"{sums[2]/count:8.2f} {paper_bw:8.2f}")
    gbps = sums[1] / count * sums[0] / count / 1000.0
    print(f"\naverage trace demand: {gbps:.2f} Gb/s "
          f"(paper: ~1.1 Gb/s, beyond plain GigE)")


def table4(budget: int) -> None:
    print("== Table 4: area cost on xc4vlx40 ==\n")
    config = replace(PAPER_4WIDE_PERFECT, perfect_memory=False)
    report = AreaEstimator(config).estimate()
    print(report.render())
    print(f"\npaper totals : 12273 slices / 17175 LUTs / 7 BRAMs")
    print(f"FAST (4-wide, V4): {FAST_AREA_SLICES} slices / "
          f"{FAST_AREA_BRAMS} BRAMs "
          f"-> {FAST_AREA_SLICES / report.total_slices:.1f}x slices, "
          f"{FAST_AREA_BRAMS / report.total_brams:.0f}x BRAMs "
          f"(paper: 2.4x, 24x)")



def sweep_table(result, device_name: str = "xc4vlx40",
                sort_key: str = "ipc", limit: int | None = None) -> str:
    """Render a :class:`~repro.sweep.result.SweepResult` the way the
    paper tables are rendered: swept coordinates + IPC next to the
    FPGA-projected MIPS on one device, best design point first.

    This is the sweep subsystem's hook into the table machinery — the
    same rows can also join Table 2 via
    ``comparison_table`` + ``SweepResult.comparison_entries``.
    """
    from repro.fpga.device import DEVICES  # lazy: avoid import cycles
    try:
        device = DEVICES[device_name]
    except KeyError:
        raise KeyError(
            f"unknown device {device_name!r}; choose from "
            f"{', '.join(DEVICES)}"
        ) from None
    ordered = result.sorted_by(sort_key)
    if limit is not None:
        ordered = ordered.top(limit, sort_key)
    header = (f"== sweep: {result.workload}, budget {result.budget}, "
              f"seed {result.seed} ({len(result)} design points) ==\n")
    return header + ordered.table(devices=(device,))


def render_all(tables: list[str] | None = None,
               budget: int = 30_000) -> None:
    """Render the selected tables (all four by default)."""
    runners = {"table1": table1, "table2": table2,
               "table3": table3, "table4": table4}
    for name in tables or list(runners):
        if name not in runners:
            raise KeyError(
                f"unknown table {name!r}; choose from {', '.join(runners)}"
            )
        runners[name](budget)
        print()
