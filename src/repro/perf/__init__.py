"""Performance models: simulation throughput, bandwidth, comparisons.

This package turns the engine's major-cycle counts into the quantities
the paper reports:

* :mod:`repro.perf.throughput` — MIPS = f_minor / L x instructions per
  major cycle (Table 1), the wrong-path-inclusive variant and the
  trace-bandwidth requirement (Table 3);
* :mod:`repro.perf.harness` — one-call evaluation of a benchmark on a
  configuration across devices, returning structured rows the
  benchmark scripts and examples share;
* :mod:`repro.perf.comparison` — the cross-simulator comparison of
  Table 2 (published speeds for PTLsim, sim-outorder, GEMS, FAST,
  A-Ports, combined with our measured ReSim rows), and the derived
  speedup claims (>5x over the best hardware simulators).
"""

from repro.perf.comparison import (
    PUBLISHED_SIMULATORS,
    SimulatorEntry,
    comparison_table,
    speedup_over,
)
from repro.perf.harness import BenchmarkRow, evaluate_benchmark, evaluate_suite
from repro.perf.throughput import ThroughputModel, ThroughputReport

__all__ = [
    "BenchmarkRow",
    "PUBLISHED_SIMULATORS",
    "SimulatorEntry",
    "ThroughputModel",
    "ThroughputReport",
    "comparison_table",
    "evaluate_benchmark",
    "evaluate_suite",
    "speedup_over",
]
