"""Architectural state for functional simulation.

Thirty-two 32-bit GPRs plus HI/LO, a program counter, and a sparse byte
memory.  The memory is a dictionary of 4 KB pages allocated on first
touch, which comfortably holds the data/stack footprints of the bundled
kernels without preallocating a 4 GB array.
"""

from __future__ import annotations

from repro.isa.program import Program, STACK_TOP
from repro.isa.registers import HI, LO, REG_COUNT, ZERO

_WORD_MASK = 0xFFFFFFFF
_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= _WORD_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def to_unsigned(value: int) -> int:
    """Truncate an integer to its 32-bit pattern."""
    return value & _WORD_MASK


class MachineState:
    """Registers, memory, and PC of the simulated machine.

    Parameters
    ----------
    program:
        The assembled image to load: text is *not* copied into byte
        memory (instructions are fetched through the Program), data is.
    stack_pointer:
        Initial ``$sp``; defaults to the conventional stack top.
    """

    def __init__(self, program: Program,
                 stack_pointer: int = STACK_TOP) -> None:
        self.program = program
        self.pc = program.entry
        self.registers = [0] * REG_COUNT
        self.registers[29] = stack_pointer  # $sp
        self.registers[28] = program.data_base  # $gp
        self._pages: dict[int, bytearray] = {}
        self._load_data_segment()
        self.exited = False
        self.exit_code = 0
        self.output: list[str] = []

    def _load_data_segment(self) -> None:
        for offset, byte in enumerate(self.program.data):
            self.store_byte(self.program.data_base + offset, byte)

    # -- registers -----------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read a register; $zero always reads 0."""
        if index == ZERO:
            return 0
        return self.registers[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write a register; writes to $zero are discarded."""
        if index == ZERO:
            return
        self.registers[index] = to_unsigned(value)

    @property
    def hi(self) -> int:
        return self.registers[HI]

    @hi.setter
    def hi(self, value: int) -> None:
        self.registers[HI] = to_unsigned(value)

    @property
    def lo(self) -> int:
        return self.registers[LO]

    @lo.setter
    def lo(self, value: int) -> None:
        self.registers[LO] = to_unsigned(value)

    # -- memory ----------------------------------------------------------

    def _page(self, address: int) -> bytearray:
        page_number = address >> _PAGE_BITS
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def load_byte(self, address: int) -> int:
        """Read one byte (unsigned); untouched memory reads 0."""
        page = self._pages.get(address >> _PAGE_BITS)
        if page is None:
            return 0
        return page[address & (_PAGE_SIZE - 1)]

    def store_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        self._page(address)[address & (_PAGE_SIZE - 1)] = value & 0xFF

    def load(self, address: int, size: int, signed: bool = True) -> int:
        """Little-endian load of ``size`` bytes."""
        value = 0
        for offset in range(size):
            value |= self.load_byte(address + offset) << (8 * offset)
        if signed and value & (1 << (8 * size - 1)):
            value -= 1 << (8 * size)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        """Little-endian store of ``size`` bytes."""
        for offset in range(size):
            self.store_byte(address + offset, (value >> (8 * offset)) & 0xFF)

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (for the print-string syscall)."""
        chars = []
        for offset in range(limit):
            byte = self.load_byte(address + offset)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    @property
    def touched_pages(self) -> int:
        """Number of memory pages allocated so far."""
        return len(self._pages)
