"""Trace generation with a branch predictor — the ``sim-bpred`` flow.

This is the paper's trace generator (Section V.A): a functional
simulator that also runs the branch predictor ReSim will use, so that
after every branch the predictor *mispredicts* it can inject a **wrong
path block** — the tagged instructions the simulated front end will
fetch before the branch resolves.

Wrong-path construction
-----------------------
The block starts at the PC fetch actually (wrongly) redirected to —
the fall-through address for a missed taken branch, the predicted
target for a wrongly-taken one — and decodes *statically* from the
program text:

* decoding stops at the first unconditional control transfer or at the
  text-segment boundary (fetch would stall on such a bubble anyway);
* wrong-path loads/stores compute their addresses from the *current*
  architectural register state — the closest available approximation,
  and enough to exercise the D-cache the way real wrong-path traffic
  does;
* nothing is executed: architectural state is never polluted.

The block is capped at the paper's conservative bound, Reorder Buffer
entries + IFQ entries (:func:`repro.trace.wrongpath.conservative_block_size`).

Consistency invariant
---------------------
The generator trains its predictor in program order with exactly the
same :class:`~repro.bpred.unit.BranchPredictorUnit` the ReSim engine
uses at Commit, so both see identical predictor state at every branch.
Tests assert this end to end (the engine re-derives every prediction
and must agree with the Tag bits in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpred.unit import BranchPredictorUnit, PredictorConfig, PAPER_PREDICTOR
from repro.functional.executor import Executor, StepResult
from repro.functional.state import MachineState, to_unsigned
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import BranchKind, FuClass
from repro.isa.program import Program
from repro.trace.record import (
    BranchRecord,
    MemoryRecord,
    OtherRecord,
    TraceRecord,
)
from repro.trace.stats import TraceStatistics, measure_trace
from repro.trace.wrongpath import conservative_block_size

_SIZE_TO_LOG2 = {1: 0, 2: 1, 4: 2, 8: 3}


@dataclass
class TraceGenerationResult:
    """A generated trace plus everything measured while producing it.

    ``records`` is normally a plain list, but generators accept any
    append/extend sink (see their ``sink`` parameter) so records can
    stream straight into a
    :class:`~repro.trace.fileio.SegmentedTraceWriter` without ever
    being held in memory; in that mode :attr:`total_records` and
    :meth:`statistics` are the *sink's* business (e.g.
    :func:`repro.workloads.tracegen.write_workload_trace` counts and
    measures as it writes).
    """

    records: list[TraceRecord] = field(default_factory=list)
    committed_instructions: int = 0
    wrong_path_instructions: int = 0
    mispredictions: int = 0
    misfetches: int = 0
    branches: int = 0
    output: str = ""

    @property
    def total_records(self) -> int:
        return len(self.records)

    def statistics(self) -> TraceStatistics:
        """Record-stream statistics (bits/instr etc., for Table 3)."""
        return measure_trace(self.records)


def _trace_registers(instr: Instruction) -> tuple[int, int, int]:
    """Map an instruction's registers into trace namespace.

    Returns ``(dest, src1, src2)``; the multiply/divide HI/LO pair is
    implicit in the FU class and encoded as dest 0.
    """
    dests = instr.dest_registers()
    if instr.fu_class in (FuClass.MUL, FuClass.DIV):
        dest = 0
    else:
        dest = dests[0] if dests else 0
    srcs = instr.src_registers()
    src1 = srcs[0] if len(srcs) > 0 else 0
    src2 = srcs[1] if len(srcs) > 1 else 0
    return dest, src1, src2


def record_for(instr: Instruction, step: StepResult | None = None,
               tag: bool = False) -> TraceRecord:
    """Build the B/M/O record for one (possibly unexecuted) instruction.

    ``step`` supplies dynamic facts (branch outcome, memory address);
    for wrong-path records it is None and static fall-backs are used.
    """
    dest, src1, src2 = _trace_registers(instr)
    if instr.is_branch:
        if step is not None:
            taken, target = step.taken, step.target
        else:
            taken, target = False, 0
        return BranchRecord(
            tag=tag, fu=FuClass.BRANCH, dest=dest, src1=src1, src2=src2,
            branch_kind=instr.branch_kind, taken=taken,
            target=to_unsigned(target),
        )
    if instr.is_mem:
        address = step.mem_address if step is not None else 0
        return MemoryRecord(
            tag=tag,
            fu=FuClass.STORE if instr.is_store else FuClass.LOAD,
            dest=dest, src1=src1, src2=src2,
            is_store=instr.is_store,
            address=to_unsigned(address),
            size_log2=_SIZE_TO_LOG2[instr.info.mem_bytes],
        )
    return OtherRecord(tag=tag, fu=instr.fu_class, dest=dest,
                       src1=src1, src2=src2)


class SimBpred:
    """Functional simulator + predictor = tagged trace generator.

    Parameters
    ----------
    predictor_config:
        Must match the configuration the consuming ReSim instance uses,
        or the Tag bits will not line up with its predictions.
    rob_entries, ifq_entries:
        Sizes used for the conservative wrong-path block bound.
    """

    def __init__(
        self,
        predictor_config: PredictorConfig = PAPER_PREDICTOR,
        rob_entries: int = 16,
        ifq_entries: int = 4,
        max_instructions: int = 50_000_000,
    ) -> None:
        self._config = predictor_config
        self._block_limit = conservative_block_size(rob_entries, ifq_entries)
        self._max_instructions = max_instructions

    @property
    def predictor_config(self) -> PredictorConfig:
        return self._config

    @property
    def wrong_path_block_limit(self) -> int:
        return self._block_limit

    def generate(self, program: Program,
                 inputs: list[int] | None = None,
                 sink=None) -> TraceGenerationResult:
        """Run ``program`` and emit its tagged trace.

        ``sink`` (any object with ``append``/``extend``) receives the
        records instead of the result's in-memory list — the
        streaming-generation mode used by
        :func:`repro.workloads.tracegen.write_workload_trace`.
        """
        state = MachineState(program)
        executor = Executor(inputs=inputs)
        predictor = BranchPredictorUnit(self._config)
        result = TraceGenerationResult(
            records=[] if sink is None else sink)

        for step in executor.run(state, self._max_instructions):
            instr = step.instruction
            result.committed_instructions += 1
            result.records.append(record_for(instr, step))

            if not instr.is_branch:
                continue
            result.branches += 1
            resolution = predictor.resolve(
                step.pc, instr.branch_kind, step.taken,
                to_unsigned(step.target),
            )
            predictor.update(
                step.pc, instr.branch_kind, step.taken,
                to_unsigned(step.target), resolution,
            )
            if resolution.misfetch:
                result.misfetches += 1
            if resolution.mispredicted:
                result.mispredictions += 1
                assert resolution.wrong_path_start is not None
                block = self._wrong_path_block(
                    program, state, resolution.wrong_path_start
                )
                result.wrong_path_instructions += len(block)
                result.records.extend(block)

        result.output = "".join(state.output)
        return result

    def _wrong_path_block(self, program: Program, state: MachineState,
                          start_pc: int) -> list[TraceRecord]:
        """Statically decode the wrong path into tagged records."""
        block: list[TraceRecord] = []
        pc = start_pc
        while len(block) < self._block_limit and program.has_instruction(pc):
            instr = program.instruction_at(pc)
            record = self._wrong_path_record(instr, state, pc)
            block.append(record)
            kind = instr.branch_kind
            if kind in (BranchKind.JUMP, BranchKind.CALL,
                        BranchKind.RETURN, BranchKind.INDIRECT):
                break  # unconditional transfer: fetch bubble ends the block
            pc += INSTRUCTION_BYTES
        return block

    def _wrong_path_record(self, instr: Instruction, state: MachineState,
                           pc: int) -> TraceRecord:
        """A tagged record with best-effort dynamic fields."""
        dest, src1, src2 = _trace_registers(instr)
        if instr.is_mem:
            # Approximate the address from current architectural state;
            # wrong-path memory traffic pollutes the D-cache, and this
            # is the closest address the unexecuted path would form.
            address = to_unsigned(state.read_reg(instr.rs) + instr.imm)
            return MemoryRecord(
                tag=True,
                fu=FuClass.STORE if instr.is_store else FuClass.LOAD,
                dest=dest, src1=src1, src2=src2,
                is_store=instr.is_store, address=address,
                size_log2=_SIZE_TO_LOG2[instr.info.mem_bytes],
            )
        if instr.is_branch:
            # Static target for direct branches; never used to redirect.
            if instr.branch_kind in (BranchKind.JUMP, BranchKind.CALL):
                target = to_unsigned(instr.imm << 3)
            elif instr.branch_kind is BranchKind.COND:
                target = to_unsigned(pc + INSTRUCTION_BYTES + instr.imm)
            else:
                target = 0
            return BranchRecord(
                tag=True, fu=FuClass.BRANCH, dest=dest, src1=src1, src2=src2,
                branch_kind=instr.branch_kind, taken=False, target=target,
            )
        return OtherRecord(tag=True, fu=instr.fu_class, dest=dest,
                           src1=src1, src2=src2)
