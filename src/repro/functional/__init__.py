"""Functional simulation (the SimpleScalar side of the toolflow).

ReSim does not execute instructions; its traces are produced by *"a
modified (SimpleScalar) functional simulator"* — specifically
``sim-bpred``, a functional simulator that also runs a branch predictor
so that wrong-path blocks can be injected after each mispredicted
branch (Section V.A).  This package is that toolflow:

* :mod:`repro.functional.state` — architectural state (registers,
  sparse byte memory, PC);
* :mod:`repro.functional.executor` — instruction semantics;
* :mod:`repro.functional.sim_fast` — plain functional simulation
  (SimpleScalar's ``sim-fast``): run to completion, count instructions;
* :mod:`repro.functional.sim_bpred` — functional simulation with a
  branch predictor, producing the tagged B/M/O trace ReSim consumes,
  including wrong-path blocks.
"""

from repro.functional.executor import Executor, ExecutionError, StepResult
from repro.functional.sim_bpred import SimBpred, TraceGenerationResult
from repro.functional.sim_fast import SimFast, SimFastResult
from repro.functional.state import MachineState

__all__ = [
    "ExecutionError",
    "Executor",
    "MachineState",
    "SimBpred",
    "SimFast",
    "SimFastResult",
    "StepResult",
    "TraceGenerationResult",
]
