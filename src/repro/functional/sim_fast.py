"""Plain functional simulation — the SimpleScalar ``sim-fast`` analogue.

Executes a program to completion and collects the simple statistics a
functional simulator offers (instruction counts by class, program
output).  No timing, no predictor: this is the fastest mode, and it is
what the trace-generation flow builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.executor import Executor
from repro.functional.state import MachineState
from repro.isa.opcodes import FuClass
from repro.isa.program import Program


@dataclass
class SimFastResult:
    """Counts and outputs from one functional run."""

    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    multiplies: int = 0
    divides: int = 0
    output: str = ""
    exit_code: int = 0

    @property
    def memory_operations(self) -> int:
        return self.loads + self.stores

    def mix_summary(self) -> str:
        """One-line instruction-mix report (fractions of total)."""
        if self.instructions == 0:
            return "no instructions executed"
        total = self.instructions
        return (
            f"{total} instructions: "
            f"{100.0 * self.branches / total:.1f}% branch, "
            f"{100.0 * self.loads / total:.1f}% load, "
            f"{100.0 * self.stores / total:.1f}% store"
        )


class SimFast:
    """Run programs functionally, as fast as the interpreter allows."""

    def __init__(self, max_instructions: int = 50_000_000) -> None:
        self._max_instructions = max_instructions

    def run(self, program: Program,
            inputs: list[int] | None = None) -> SimFastResult:
        """Execute ``program`` to completion and return the statistics."""
        state = MachineState(program)
        executor = Executor(inputs=inputs)
        result = SimFastResult()
        for step in executor.run(state, self._max_instructions):
            result.instructions += 1
            instr = step.instruction
            fu = instr.fu_class
            if instr.is_branch:
                result.branches += 1
                if step.taken:
                    result.taken_branches += 1
            elif fu is FuClass.LOAD:
                result.loads += 1
            elif fu is FuClass.STORE:
                result.stores += 1
            elif fu is FuClass.MUL:
                result.multiplies += 1
            elif fu is FuClass.DIV:
                result.divides += 1
        result.output = "".join(state.output)
        result.exit_code = state.exit_code
        return result
