"""Instruction semantics for the PISA-like ISA.

:meth:`Executor.step` executes exactly one instruction and returns a
:class:`StepResult` describing everything the trace generator needs:
control-flow outcome (taken? target?), memory behaviour (address, size,
store?), and the retired instruction itself.

Deviations from strict MIPS semantics, chosen for simulator robustness
and documented here once:

* ``add``/``addi``/``sub`` wrap instead of trapping on overflow;
* division by zero yields HI = LO = 0 instead of being undefined;
* there are no branch delay slots (SimpleScalar's PISA also dropped
  them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.functional.state import MachineState, to_signed, to_unsigned
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import BranchKind, Opcode
from repro.isa.program import Program


class ExecutionError(RuntimeError):
    """Raised when execution leaves the text segment or hits bad state."""


@dataclass(frozen=True)
class StepResult:
    """Everything observable about one executed instruction."""

    pc: int
    instruction: Instruction
    next_pc: int
    taken: bool = False           # branches only
    target: int = 0               # actual target for branches (taken or not)
    mem_address: int = 0          # memory ops only
    mem_size: int = 0
    is_store: bool = False
    exited: bool = False

    @property
    def branch_kind(self) -> BranchKind:
        return self.instruction.branch_kind


# Syscall numbers follow the SPIM convention.
SYSCALL_PRINT_INT = 1
SYSCALL_PRINT_STRING = 4
SYSCALL_READ_INT = 5
SYSCALL_SBRK = 9
SYSCALL_EXIT = 10


class Executor:
    """Executes instructions against a :class:`MachineState`.

    Parameters
    ----------
    inputs:
        Values returned by successive ``read_int`` syscalls (exhausted
        inputs return 0) — lets kernels consume "input data"
        deterministically.
    """

    def __init__(self, inputs: list[int] | None = None) -> None:
        self._inputs = list(inputs or [])
        self._input_cursor = 0
        self._brk = 0  # lazily initialised heap break

    # ------------------------------------------------------------------

    def step(self, state: MachineState) -> StepResult:
        """Execute the instruction at ``state.pc``; advance the state."""
        if state.exited:
            raise ExecutionError("machine has already exited")
        pc = state.pc
        program = state.program
        if not program.has_instruction(pc):
            raise ExecutionError(f"PC {pc:#010x} outside text segment")
        instr = program.instruction_at(pc)
        handler = _HANDLERS.get(instr.op)
        if handler is None:
            raise ExecutionError(f"unimplemented opcode {instr.op}")
        result = handler(self, state, pc, instr)
        state.pc = result.next_pc
        if result.exited:
            state.exited = True
        return result

    def run(self, state: MachineState, max_instructions: int = 10_000_000):
        """Yield step results until exit or the instruction budget ends."""
        executed = 0
        while not state.exited and executed < max_instructions:
            yield self.step(state)
            executed += 1
        if not state.exited and executed >= max_instructions:
            raise ExecutionError(
                f"instruction budget of {max_instructions} exhausted"
            )

    # ------------------------------------------------------------------
    # Helpers shared by handlers
    # ------------------------------------------------------------------

    def _sequential(self, pc: int, instr: Instruction) -> StepResult:
        return StepResult(pc=pc, instruction=instr,
                          next_pc=pc + INSTRUCTION_BYTES)

    def _branch(self, pc: int, instr: Instruction, taken: bool,
                target: int) -> StepResult:
        next_pc = target if taken else pc + INSTRUCTION_BYTES
        return StepResult(pc=pc, instruction=instr, next_pc=next_pc,
                          taken=taken, target=target)

    def _syscall(self, state: MachineState, pc: int,
                 instr: Instruction) -> StepResult:
        number = state.read_reg(2)  # $v0
        arg = state.read_reg(4)     # $a0
        exited = False
        if number == SYSCALL_PRINT_INT:
            state.output.append(str(to_signed(arg)))
        elif number == SYSCALL_PRINT_STRING:
            state.output.append(state.read_cstring(arg))
        elif number == SYSCALL_READ_INT:
            value = 0
            if self._input_cursor < len(self._inputs):
                value = self._inputs[self._input_cursor]
                self._input_cursor += 1
            state.write_reg(2, value)
        elif number == SYSCALL_SBRK:
            if self._brk == 0:
                self._brk = state.program.data_base + max(
                    4096, len(state.program.data) + 4096
                )
            state.write_reg(2, self._brk)
            self._brk += arg
        elif number == SYSCALL_EXIT:
            exited = True
        else:
            raise ExecutionError(f"unknown syscall {number} at {pc:#010x}")
        return StepResult(pc=pc, instruction=instr,
                          next_pc=pc + INSTRUCTION_BYTES, exited=exited)


# ----------------------------------------------------------------------
# Per-opcode handlers.  Each takes (executor, state, pc, instr).
# ----------------------------------------------------------------------

def _alu_r(op):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        a = st.read_reg(i.rs)
        b = st.read_reg(i.rt)
        st.write_reg(i.rd, op(a, b))
        return ex._sequential(pc, i)
    return handler


def _alu_i(op):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        a = st.read_reg(i.rs)
        st.write_reg(i.rt, op(a, i.imm))
        return ex._sequential(pc, i)
    return handler


def _shift(op):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        st.write_reg(i.rd, op(st.read_reg(i.rt), i.imm & 31))
        return ex._sequential(pc, i)
    return handler


def _shift_v(op):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        st.write_reg(i.rd, op(st.read_reg(i.rt), st.read_reg(i.rs) & 31))
        return ex._sequential(pc, i)
    return handler


def _load(size: int, signed: bool):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        address = to_unsigned(st.read_reg(i.rs) + i.imm)
        st.write_reg(i.rt, st.load(address, size, signed))
        return StepResult(pc=pc, instruction=i,
                          next_pc=pc + INSTRUCTION_BYTES,
                          mem_address=address, mem_size=size)
    return handler


def _store(size: int):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        address = to_unsigned(st.read_reg(i.rs) + i.imm)
        st.store(address, st.read_reg(i.rt), size)
        return StepResult(pc=pc, instruction=i,
                          next_pc=pc + INSTRUCTION_BYTES,
                          mem_address=address, mem_size=size, is_store=True)
    return handler


def _cond(test):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        taken = test(to_signed(st.read_reg(i.rs)), to_signed(st.read_reg(i.rt)))
        target = pc + INSTRUCTION_BYTES + i.imm
        return ex._branch(pc, i, taken, target)
    return handler


def _mult(signed: bool):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        convert = to_signed if signed else to_unsigned
        product = convert(st.read_reg(i.rs)) * convert(st.read_reg(i.rt))
        product &= (1 << 64) - 1
        st.lo = product & 0xFFFFFFFF
        st.hi = (product >> 32) & 0xFFFFFFFF
        return ex._sequential(pc, i)
    return handler


def _divide(signed: bool):
    def handler(ex: Executor, st: MachineState, pc: int, i: Instruction):
        convert = to_signed if signed else to_unsigned
        a = convert(st.read_reg(i.rs))
        b = convert(st.read_reg(i.rt))
        if b == 0:
            st.lo = 0
            st.hi = 0
        else:
            quotient = int(a / b)  # C-style truncation toward zero
            st.lo = quotient
            st.hi = a - quotient * b
        return ex._sequential(pc, i)
    return handler


def _jump(ex: Executor, st: MachineState, pc: int, i: Instruction):
    return ex._branch(pc, i, taken=True, target=to_unsigned(i.imm << 3))


def _jal(ex: Executor, st: MachineState, pc: int, i: Instruction):
    st.write_reg(31, pc + INSTRUCTION_BYTES)
    return ex._branch(pc, i, taken=True, target=to_unsigned(i.imm << 3))


def _jr(ex: Executor, st: MachineState, pc: int, i: Instruction):
    return ex._branch(pc, i, taken=True, target=st.read_reg(i.rs))


def _jalr(ex: Executor, st: MachineState, pc: int, i: Instruction):
    target = st.read_reg(i.rs)
    st.write_reg(i.rd, pc + INSTRUCTION_BYTES)
    return ex._branch(pc, i, taken=True, target=target)


def _mfhi(ex, st, pc, i):
    st.write_reg(i.rd, st.hi)
    return ex._sequential(pc, i)


def _mflo(ex, st, pc, i):
    st.write_reg(i.rd, st.lo)
    return ex._sequential(pc, i)


def _mthi(ex, st, pc, i):
    st.hi = st.read_reg(i.rs)
    return ex._sequential(pc, i)


def _mtlo(ex, st, pc, i):
    st.lo = st.read_reg(i.rs)
    return ex._sequential(pc, i)


def _nop(ex, st, pc, i):
    return ex._sequential(pc, i)


def _syscall(ex: Executor, st: MachineState, pc: int, i: Instruction):
    return ex._syscall(st, pc, i)


_HANDLERS = {
    Opcode.ADD: _alu_r(lambda a, b: a + b),
    Opcode.ADDU: _alu_r(lambda a, b: a + b),
    Opcode.SUB: _alu_r(lambda a, b: a - b),
    Opcode.SUBU: _alu_r(lambda a, b: a - b),
    Opcode.AND: _alu_r(lambda a, b: a & b),
    Opcode.OR: _alu_r(lambda a, b: a | b),
    Opcode.XOR: _alu_r(lambda a, b: a ^ b),
    Opcode.NOR: _alu_r(lambda a, b: ~(a | b)),
    Opcode.SLT: _alu_r(lambda a, b: int(to_signed(a) < to_signed(b))),
    Opcode.SLTU: _alu_r(lambda a, b: int(to_unsigned(a) < to_unsigned(b))),
    Opcode.SLLV: _shift_v(lambda v, s: v << s),
    Opcode.SRLV: _shift_v(lambda v, s: to_unsigned(v) >> s),
    Opcode.SRAV: _shift_v(lambda v, s: to_signed(v) >> s),
    Opcode.SLL: _shift(lambda v, s: v << s),
    Opcode.SRL: _shift(lambda v, s: to_unsigned(v) >> s),
    Opcode.SRA: _shift(lambda v, s: to_signed(v) >> s),
    Opcode.MULT: _mult(signed=True),
    Opcode.MULTU: _mult(signed=False),
    Opcode.DIV: _divide(signed=True),
    Opcode.DIVU: _divide(signed=False),
    Opcode.MFHI: _mfhi,
    Opcode.MFLO: _mflo,
    Opcode.MTHI: _mthi,
    Opcode.MTLO: _mtlo,
    Opcode.ADDI: _alu_i(lambda a, imm: a + imm),
    Opcode.ADDIU: _alu_i(lambda a, imm: a + imm),
    Opcode.ANDI: _alu_i(lambda a, imm: a & (imm & 0xFFFF)),
    Opcode.ORI: _alu_i(lambda a, imm: a | (imm & 0xFFFF)),
    Opcode.XORI: _alu_i(lambda a, imm: a ^ (imm & 0xFFFF)),
    Opcode.SLTI: _alu_i(lambda a, imm: int(to_signed(a) < imm)),
    Opcode.SLTIU: _alu_i(lambda a, imm: int(to_unsigned(a) < to_unsigned(imm))),
    Opcode.LUI: _alu_i(lambda a, imm: (imm & 0xFFFF) << 16),
    Opcode.LB: _load(1, signed=True),
    Opcode.LBU: _load(1, signed=False),
    Opcode.LH: _load(2, signed=True),
    Opcode.LHU: _load(2, signed=False),
    Opcode.LW: _load(4, signed=True),
    Opcode.SB: _store(1),
    Opcode.SH: _store(2),
    Opcode.SW: _store(4),
    Opcode.BEQ: _cond(lambda a, b: a == b),
    Opcode.BNE: _cond(lambda a, b: a != b),
    Opcode.BLEZ: _cond(lambda a, b: a <= 0),
    Opcode.BGTZ: _cond(lambda a, b: a > 0),
    Opcode.BLTZ: _cond(lambda a, b: a < 0),
    Opcode.BGEZ: _cond(lambda a, b: a >= 0),
    Opcode.J: _jump,
    Opcode.JAL: _jal,
    Opcode.JR: _jr,
    Opcode.JALR: _jalr,
    Opcode.NOP: _nop,
    Opcode.SYSCALL: _syscall,
    Opcode.BREAK: _nop,
}
