"""JSON-safe serialization of configs and statistics.

One run of the simulator is described by a
:class:`~repro.core.config.ProcessorConfig` and measured by a
:class:`~repro.core.stats.SimulationStatistics`; several subsystems
need both in a lossless, human-inspectable dict form:

* the sweep subsystem moves configs across process boundaries and
  persists statistics into checkpoint files
  (:mod:`repro.sweep.runner`);
* the session facade serializes run specs and results
  (:mod:`repro.session`);
* both name checkpoint/trace files with :func:`config_key` /
  :func:`canonical_digest`, so two runs of the same experiment (even
  on different machines) agree on which file belongs to which design
  point.

Everything here round-trips exactly:

>>> from repro.core.config import PAPER_4WIDE_PERFECT
>>> round_tripped = config_from_dict(config_to_dict(PAPER_4WIDE_PERFECT))
>>> round_tripped == PAPER_4WIDE_PERFECT
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields

from repro.bpred.unit import PredictorConfig
from repro.cache.cache import CacheConfig
from repro.core.config import ProcessorConfig
from repro.core.stats import Counter64, OccupancySampler, SimulationStatistics


def config_to_dict(config: ProcessorConfig) -> dict:
    """Flatten a processor config (and its nested predictor/cache
    configs) into JSON-serializable primitives."""
    return asdict(config)


def config_from_dict(data: dict) -> ProcessorConfig:
    """Inverse of :func:`config_to_dict`."""
    data = dict(data)
    data["predictor"] = PredictorConfig(**data["predictor"])
    data["icache"] = CacheConfig(**data["icache"])
    data["dcache"] = CacheConfig(**data["dcache"])
    return ProcessorConfig(**data)


def canonical_json(data: dict) -> str:
    """The canonical JSON form of a document: sorted keys, no
    insertion-order leakage.  Every byte-compared or hashed document
    in the repo (digests, cache keys, queue descriptors) goes through
    this one serialization so two hosts always agree on the bytes."""
    return json.dumps(data, sort_keys=True)


def canonical_digest(data: dict, length: int = 16) -> str:
    """Truncated SHA-256 over a dict's canonical JSON form: stable
    across processes and interpreter restarts (unlike ``hash()``),
    and short enough to be a filename stem.  Every identifier derived
    from a config shares this one canonicalization."""
    canonical = canonical_json(data)
    return hashlib.sha256(canonical.encode()).hexdigest()[:length]


def config_key(config: ProcessorConfig) -> str:
    """Short stable identifier of one design point."""
    return canonical_digest(config_to_dict(config))


def stats_to_dict(stats: SimulationStatistics) -> dict:
    """Flatten simulation statistics into JSON primitives.

    Merged (sharded) statistics round-trip too: the
    :attr:`~repro.core.stats.SimulationStatistics.shards` provenance
    field is already a JSON-safe list of dicts (or ``None``) and is
    carried verbatim.
    """
    out: dict = {}
    for spec in fields(stats):
        value = getattr(stats, spec.name)
        if isinstance(value, Counter64):
            out[spec.name] = int(value)
        elif isinstance(value, OccupancySampler):
            out[spec.name] = {"total": value.total,
                              "samples": value.samples,
                              "peak": value.peak}
        else:
            # Plain JSON-safe field (the shards provenance list).
            out[spec.name] = value
    return out


def stats_from_dict(data: dict) -> SimulationStatistics:
    """Inverse of :func:`stats_to_dict`.

    Unknown keys are ignored so a checkpoint written by a newer
    version (extra counters) still loads; missing keys keep their
    zero defaults.
    """
    stats = SimulationStatistics()
    for spec in fields(stats):
        if spec.name not in data:
            continue
        value = data[spec.name]
        current = getattr(stats, spec.name)
        if isinstance(current, Counter64):
            setattr(stats, spec.name, Counter64(int(value)))
        elif isinstance(current, OccupancySampler):
            setattr(stats, spec.name, OccupancySampler(**value))
        else:
            # Plain JSON-safe field (the shards provenance list).
            setattr(stats, spec.name, value)
    return stats
