"""Trace statistics — the measurement side of Table 3.

Table 3 of the paper reports, per benchmark: average trace **bits per
instruction** (41.16-47.14), simulation throughput *including
mis-speculated instructions*, and the resulting input **trace bandwidth
in MBytes/second**.  The bandwidth column is simply
``MIPS x bits-per-instruction / 8``; this module supplies the
bits-per-instruction and record-mix measurements that feed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.trace.encode import record_bit_length
from repro.trace.record import RecordKind, TraceRecord


@dataclass
class TraceStatistics:
    """Aggregate measurements over a record stream."""

    total_records: int = 0
    total_bits: int = 0
    wrong_path_records: int = 0
    kind_counts: dict[RecordKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in RecordKind}
    )
    store_count: int = 0
    taken_branches: int = 0

    def observe(self, record: TraceRecord) -> None:
        """Fold one record into the statistics."""
        self.total_records += 1
        self.total_bits += record_bit_length(record)
        self.kind_counts[record.kind] += 1
        if record.tag:
            self.wrong_path_records += 1
        kind = record.kind
        if kind is RecordKind.MEMORY and getattr(record, "is_store", False):
            self.store_count += 1
        if kind is RecordKind.BRANCH and getattr(record, "taken", False):
            self.taken_branches += 1

    # -- derived quantities -------------------------------------------

    @property
    def correct_path_records(self) -> int:
        return self.total_records - self.wrong_path_records

    @property
    def bits_per_instruction(self) -> float:
        """Average encoded bits per dynamic instruction (Table 3 col. 1)."""
        if self.total_records == 0:
            return 0.0
        return self.total_bits / self.total_records

    @property
    def wrong_path_fraction(self) -> float:
        """Fraction of trace records that are wrong-path (paper: ~10%)."""
        if self.total_records == 0:
            return 0.0
        return self.wrong_path_records / self.total_records

    def kind_fraction(self, kind: RecordKind) -> float:
        """Fraction of records of the given format."""
        if self.total_records == 0:
            return 0.0
        return self.kind_counts[kind] / self.total_records

    def bandwidth_mbytes_per_sec(self, mips: float) -> float:
        """Trace input bandwidth needed at a given simulation rate.

        Parameters
        ----------
        mips:
            Simulation throughput in millions of trace instructions per
            second, *including* wrong-path records (Table 3 col. 2).

        Returns
        -------
        float
            Required trace bandwidth in MBytes/s (Table 3 col. 3).
        """
        return mips * self.bits_per_instruction / 8.0

    def summary(self) -> str:
        """Human-readable one-trace report."""
        lines = [
            f"records              : {self.total_records}",
            f"  other              : {self.kind_counts[RecordKind.OTHER]}",
            f"  memory             : {self.kind_counts[RecordKind.MEMORY]}"
            f" ({self.store_count} stores)",
            f"  branch             : {self.kind_counts[RecordKind.BRANCH]}"
            f" ({self.taken_branches} taken)",
            f"wrong-path records   : {self.wrong_path_records}"
            f" ({100.0 * self.wrong_path_fraction:.1f}%)",
            f"bits per instruction : {self.bits_per_instruction:.2f}",
        ]
        return "\n".join(lines)


def measure_trace(records: Iterable[TraceRecord]) -> TraceStatistics:
    """Measure a full record stream (convenience wrapper)."""
    stats = TraceStatistics()
    for record in records:
        stats.observe(record)
    return stats
