"""Bounded-lookahead trace sources — streaming ingestion for the engine.

ReSim's hardware consumes its trace through an input FIFO: the
deserializer exposes the *next few* records, never the whole trace.
This module is the software equivalent.  A :class:`TraceSource` is a
forward-only cursor with one record of lookahead — exactly what the
engine's fetch stage needs (``peek`` the next record, ``next`` to
consume it, ``peek_is_tagged`` for the wrong-path discard loop at
recovery) — so simulation memory no longer scales with trace length:

* :class:`InMemorySource` wraps a record sequence already in memory
  (including a *growing* list — the streaming co-simulation driver
  appends chunks while the engine runs, and the source sees them);
* :class:`FileSource` streams a stored ``.rtrc`` file, decoding one
  v2 segment (or one v1 chunk) at a time — peak resident memory is
  bounded by the segment size, not the trace length;
* :class:`ConcatSource` chains sources end to end, so a trace sharded
  across several files (or several segment ranges of one file)
  replays as one stream.

Every consumer — the engine, the session facade, sweep workers, the
multicore study, co-simulation — speaks this protocol; a sequence
passed to :class:`~repro.core.engine.ReSimEngine` is wrapped in an
:class:`InMemorySource` automatically, so the two ingestion paths
share one fetch implementation and produce bit-identical statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from collections.abc import Iterator, Sequence

from repro.trace.fileio import (
    TraceFileHeader,
    TraceSegment,
    iter_trace_records,
    read_segment_table,
    read_trace_header,
)
from repro.trace.record import TraceRecord


class TraceSourceError(ValueError):
    """Raised for misused or exhausted trace sources."""


class TraceSource(ABC):
    """A forward-only record cursor with one record of lookahead.

    The contract the engine relies on:

    * :meth:`peek` returns the next record without consuming it, or
      ``None`` when no record is available *right now* (a growing
      in-memory stream may produce more later; a file is simply done);
    * :meth:`next` consumes and returns that record;
    * :attr:`total_records` is the best current estimate of the full
      stream length (exact for files; the live length for growing
      lists) — used for cycle budgets and progress reporting, never
      for termination.
    """

    @abstractmethod
    def peek(self) -> TraceRecord | None:
        """The next record, or ``None`` if none is available."""

    @abstractmethod
    def next(self) -> TraceRecord:
        """Consume and return the next record.

        Raises
        ------
        TraceSourceError
            If the source is exhausted.
        """

    def peek_is_tagged(self) -> bool:
        """True when the next record exists and is wrong-path."""
        record = self.peek()
        return record is not None and record.tag

    @property
    @abstractmethod
    def consumed(self) -> int:
        """Records consumed so far."""

    @property
    @abstractmethod
    def total_records(self) -> int:
        """Best current estimate of the stream length (see class doc)."""

    @property
    def exhausted(self) -> bool:
        """True when no record is available right now."""
        return self.peek() is None

    def fresh(self) -> TraceSource:
        """An independent cursor over the same stream, rewound to the
        start.  Sources that cannot rewind raise
        :class:`TraceSourceError`."""
        raise TraceSourceError(
            f"{type(self).__name__} cannot be reopened")

    def __iter__(self) -> Iterator[TraceRecord]:
        while self.peek() is not None:
            yield self.next()


class InMemorySource(TraceSource):
    """Cursor over a record sequence already in memory.

    The sequence is referenced, not copied, and its length is read
    live — appending to the underlying list makes the new records
    visible, which is exactly how the streaming co-simulation driver
    models its flow-controlled input FIFO.
    """

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        self._records = records
        self._index = 0

    def peek(self) -> TraceRecord | None:
        if self._index < len(self._records):
            return self._records[self._index]
        return None

    def next(self) -> TraceRecord:
        if self._index >= len(self._records):
            raise TraceSourceError("in-memory source exhausted")
        record = self._records[self._index]
        self._index += 1
        return record

    @property
    def consumed(self) -> int:
        return self._index

    @property
    def total_records(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[TraceRecord]:
        """The wrapped sequence (shared, not copied) — lets the
        specialized engine index it directly."""
        return self._records

    def fresh(self) -> InMemorySource:
        return InMemorySource(self._records)


class FileSource(TraceSource):
    """Streams a stored trace file with bounded memory.

    The header is parsed eagerly (so a bad file fails at construction,
    not mid-simulation); the payload is decoded lazily, one v2 segment
    or one v1 chunk at a time, with end-of-stream consistency checks
    (record count, committed count) exactly as in
    :func:`repro.trace.fileio.iter_trace_records`.

    ``segments`` restricts the cursor to a slice of a v2 file's
    segment table — ``FileSource(path, segments=(lo, hi))`` replays
    segments ``lo..hi-1`` only, which is how sharded sweeps split one
    trace at segment boundaries (wrap the shards in a
    :class:`ConcatSource` to replay the whole trace).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        segments: tuple[int, int] | None = None,
    ) -> None:
        self._path = Path(path)
        self._header = read_trace_header(self._path)
        self._segments: tuple[TraceSegment, ...] | None = None
        self._range = segments
        if segments is not None:
            table = read_segment_table(self._path)
            lo, hi = segments
            if not (0 <= lo < hi <= len(table)):
                # `lo < hi` (not `<=`): an empty range replays zero
                # records but still looks like a successful run to
                # every consumer downstream — reject it here, matching
                # ShardPlan and the session spec validation.
                raise TraceSourceError(
                    f"segment range {segments} empty or outside the "
                    f"{len(table)}-segment table of {self._path}"
                )
            if self._header.version == 1 and (lo, hi) != (0, 1):
                raise TraceSourceError(
                    "segment-restricted reads need a v2 trace file")
            self._segments = table[lo:hi]
        self._iterator: Iterator[TraceRecord] | None = None
        self._lookahead: TraceRecord | None = None
        self._consumed = 0
        self._done = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def header(self) -> TraceFileHeader:
        return self._header

    def _fill(self) -> None:
        if self._lookahead is not None or self._done:
            return
        if self._iterator is None:
            if (self._segments is not None
                    and self._header.version != 1):
                self._iterator = iter_trace_records(
                    self._path, segments=self._segments)
            else:
                self._iterator = iter_trace_records(self._path)
        self._lookahead = next(self._iterator, None)
        if self._lookahead is None:
            self._done = True

    def peek(self) -> TraceRecord | None:
        self._fill()
        return self._lookahead

    def next(self) -> TraceRecord:
        self._fill()
        record = self._lookahead
        if record is None:
            raise TraceSourceError(f"trace file {self._path} exhausted")
        self._lookahead = None
        self._consumed += 1
        return record

    @property
    def consumed(self) -> int:
        return self._consumed

    @property
    def total_records(self) -> int:
        if self._segments is not None:
            return sum(s.record_count for s in self._segments)
        return self._header.record_count

    def fresh(self) -> FileSource:
        return FileSource(self._path, segments=self._range)


class ConcatSource(TraceSource):
    """Chains sources end to end (trace sharded across files/ranges).

    Children must be fresh (nothing consumed yet) and **finite** —
    fully written before the replay starts, like trace files or
    completed record lists.  A *growing* in-memory child (the cosim
    FIFO pattern) is not supported here: an empty child is taken as
    exhausted and the cursor moves on, so records appended to it later
    would be silently lost — which is why the cursor checks passed
    children and fails loudly if one has grown, rather than corrupting
    the stream.  The concatenated replay of a trace split at v2
    segment boundaries is bit-identical to the unsharded file.
    """

    def __init__(self, sources: Sequence[TraceSource]) -> None:
        self._sources = tuple(sources)
        if not self._sources:
            raise TraceSourceError(
                "ConcatSource needs at least one child source")
        self._active = 0
        self._consumed = 0

    def _check_passed_children(self) -> None:
        """Growth guard, paid only when advancing past a child and at
        end-of-stream peeks — never on the hot record-yielding path."""
        for index in range(self._active):
            if not self._sources[index].exhausted:
                raise TraceSourceError(
                    "a ConcatSource child produced records after being "
                    "exhausted; children must be finite (fully written "
                    "before replay), not growing streams"
                )

    def peek(self) -> TraceRecord | None:
        while self._active < len(self._sources):
            record = self._sources[self._active].peek()
            if record is not None:
                return record
            self._check_passed_children()
            self._active += 1
        self._check_passed_children()
        return None

    def next(self) -> TraceRecord:
        if self.peek() is None:
            raise TraceSourceError("concatenated sources exhausted")
        record = self._sources[self._active].next()
        self._consumed += 1
        return record

    @property
    def consumed(self) -> int:
        return self._consumed

    @property
    def total_records(self) -> int:
        return sum(source.total_records for source in self._sources)

    def fresh(self) -> ConcatSource:
        return ConcatSource([source.fresh() for source in self._sources])


def as_source(
    trace: TraceSource | Sequence[TraceRecord],
) -> TraceSource:
    """Coerce the engine's ``trace`` argument into a source."""
    if isinstance(trace, TraceSource):
        return trace
    return InMemorySource(trace)
