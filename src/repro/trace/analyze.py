"""Per-segment trace profiles — the measurement half of region sampling.

ROADMAP calls trace analytics plus region-sampled (SimPoint-style)
simulation the biggest lever for long-trace throughput: most segments
of a long trace are statistically redundant, so a design point can be
estimated from a few *representative* segment ranges instead of a full
replay.  Picking representatives needs per-segment behaviour summaries;
this module computes them in **one streaming pass** over a stored v2
trace:

* record mix (branch / load / store fractions) and branch taken-rate;
* functional-bpred **misprediction density**: wrong-path *blocks* per
  record.  Records carry no misprediction flag, but every mispredicted
  branch injects one contiguous tagged (wrong-path) block, so each
  untagged→tagged transition marks exactly one misprediction of the
  generation-time functional predictor;
* a **basic-block vector** (BBV) over committed PCs.  Records carry no
  PC either — like the engine, the analyzer reconstructs it from
  sequential flow (+4 per committed record) plus the targets of taken
  branches, then folds each committed record into a fixed-dimension
  bucket keyed by its basic block's start PC.  Two segments executing
  the same code regions land in the same buckets, which is what lets
  k-means (:mod:`repro.exec.regions`) cluster "same phase" segments.

Profiles persist as a JSON sidecar next to the trace
(``<trace>.rprof``, written atomically) keyed to the trace's *content
digest*, so a stale sidecar — the trace was regenerated in place — is
detected and recomputed rather than trusted.  ``resim trace analyze``
surfaces the same pass on the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.fileio import (
    TraceFileError,
    iter_trace_records,
    read_segment_table,
)
from repro.trace.record import RecordKind

#: Profile sidecar schema; bump on incompatible layout changes.
PROFILE_SCHEMA = 1

#: Sidecar filename suffix, appended to the full trace filename
#: (``gzip.trace`` → ``gzip.trace.rprof``).
PROFILE_SUFFIX = ".rprof"

#: Basic-block-vector dimensionality.  Block-start PCs hash into this
#: many buckets; 32 keeps sidecars small while separating program
#: phases that touch different code.
DEFAULT_BBV_DIM = 32

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


class ProfileError(ValueError):
    """Raised for malformed or mismatched profile sidecars."""


def trace_content_digest(path: str | Path, *,
                         chunk_bytes: int = 1 << 20) -> str:
    """Content digest of a stored trace file: streamed SHA-256 over
    the raw bytes, constant memory regardless of trace length.

    The same derivation keys the campaign-service result cache
    (:func:`repro.serve.canon.trace_digest` delegates here), so a
    profile and a cached result that reference one digest reference
    one trace content.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            while chunk := handle.read(chunk_bytes):
                digest.update(chunk)
    except OSError as error:
        raise ProfileError(
            f"cannot digest trace file {path}: "
            f"{error.strerror or error}") from error
    return f"sha256:{digest.hexdigest()}"


def _mix(value: int) -> int:
    """Deterministic 64-bit integer mixer (SplitMix64 finalizer).

    Python's builtin ``hash`` is salted per process; BBV buckets must
    be stable across runs and hosts, so block-start PCs go through a
    fixed mixer instead.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass
class SegmentProfile:
    """Behaviour summary of one trace segment."""

    index: int
    records: int = 0
    committed: int = 0
    wrong_path: int = 0
    wrong_path_blocks: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    bbv: list[int] = field(default_factory=list)

    def features(self) -> tuple[float, ...]:
        """The normalized feature vector k-means clusters on.

        Fractions of the segment's records (mix, taken-rate,
        misprediction density) followed by the L1-normalized BBV; all
        components lie in [0, 1], so no axis dominates the distance.
        """
        records = self.records or 1
        committed = self.committed or 1
        head = (
            self.branches / records,
            self.loads / records,
            self.stores / records,
            self.taken_branches / records,
            self.wrong_path / records,
            self.wrong_path_blocks / records,
        )
        return head + tuple(count / committed for count in self.bbv)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "records": self.records,
            "committed": self.committed,
            "wrong_path": self.wrong_path,
            "wrong_path_blocks": self.wrong_path_blocks,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "loads": self.loads,
            "stores": self.stores,
            "bbv": list(self.bbv),
        }

    @classmethod
    def from_dict(cls, data: dict) -> SegmentProfile:
        try:
            return cls(
                index=int(data["index"]),
                records=int(data["records"]),
                committed=int(data["committed"]),
                wrong_path=int(data["wrong_path"]),
                wrong_path_blocks=int(data["wrong_path_blocks"]),
                branches=int(data["branches"]),
                taken_branches=int(data["taken_branches"]),
                loads=int(data["loads"]),
                stores=int(data["stores"]),
                bbv=[int(count) for count in data["bbv"]],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProfileError(
                f"malformed segment profile entry: {error!r}") from None


@dataclass
class TraceProfile:
    """All segment profiles of one trace, plus the identity that ties
    them to the trace content they were measured from."""

    digest: str
    bbv_dim: int
    segments: list[SegmentProfile]

    @property
    def total_records(self) -> int:
        return sum(segment.records for segment in self.segments)

    @property
    def total_committed(self) -> int:
        return sum(segment.committed for segment in self.segments)

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "trace": {"digest": self.digest,
                      "segments": len(self.segments),
                      "records": self.total_records},
            "parameters": {"bbv_dim": self.bbv_dim},
            "segments": [segment.to_dict() for segment in self.segments],
        }

    @classmethod
    def from_dict(cls, data: dict) -> TraceProfile:
        if not isinstance(data, dict) \
                or data.get("schema") != PROFILE_SCHEMA:
            raise ProfileError(
                f"unsupported profile schema {data.get('schema')!r} "
                f"(this version reads schema {PROFILE_SCHEMA})")
        trace = data.get("trace")
        parameters = data.get("parameters")
        entries = data.get("segments")
        if not isinstance(trace, dict) or not isinstance(parameters, dict) \
                or not isinstance(entries, list):
            raise ProfileError("malformed profile document")
        profile = cls(
            digest=str(trace.get("digest", "")),
            bbv_dim=int(parameters.get("bbv_dim", 0)),
            segments=[SegmentProfile.from_dict(entry)
                      for entry in entries],
        )
        for position, segment in enumerate(profile.segments):
            if segment.index != position \
                    or len(segment.bbv) != profile.bbv_dim:
                raise ProfileError(
                    f"profile segment {position} is inconsistent "
                    f"(index {segment.index}, "
                    f"{len(segment.bbv)}-bucket BBV)")
        return profile

    def summary(self) -> str:
        """Human-readable per-trace report (``resim trace analyze``)."""
        records = self.total_records or 1
        branches = sum(s.branches for s in self.segments)
        taken = sum(s.taken_branches for s in self.segments)
        lines = [
            f"segments             : {len(self.segments)}",
            f"records              : {self.total_records}"
            f" ({self.total_committed} committed)",
            f"branches             : {branches}"
            f" ({taken} taken)",
            f"loads / stores       : {sum(s.loads for s in self.segments)}"
            f" / {sum(s.stores for s in self.segments)}",
            f"wrong-path blocks    : "
            f"{sum(s.wrong_path_blocks for s in self.segments)}"
            f" ({sum(s.wrong_path for s in self.segments)} records)",
            f"misprediction density: "
            f"{sum(s.wrong_path_blocks for s in self.segments) / records:.4f}"
            f" per record",
            f"BBV dimension        : {self.bbv_dim}",
            f"trace digest         : {self.digest}",
        ]
        return "\n".join(lines)


def analyze_trace(path: str | Path, *,
                  bbv_dim: int = DEFAULT_BBV_DIM) -> TraceProfile:
    """Profile every segment of a stored trace in one streaming pass.

    Decodes segment by segment (constant memory), carrying the
    reconstructed committed PC and the wrong-path block state across
    segment boundaries — exactly the continuity the engine itself sees
    when it replays the whole file.
    """
    if bbv_dim < 1:
        raise ProfileError(f"bbv_dim must be >= 1, got {bbv_dim}")
    table = read_segment_table(path)
    profiles = [SegmentProfile(index=index, bbv=[0] * bbv_dim)
                for index in range(len(table))]
    pc = 0
    block_start = 0
    previous_tagged = False
    iterator = iter_trace_records(path)
    for segment, profile in zip(table, profiles, strict=True):
        for record in _take(iterator, segment.record_count, segment.index):
            profile.records += 1
            if record.tag:
                profile.wrong_path += 1
                if not previous_tagged:
                    profile.wrong_path_blocks += 1
                previous_tagged = True
                # Wrong-path records never advance the committed PC.
                continue
            previous_tagged = False
            profile.committed += 1
            profile.bbv[_mix(block_start) % bbv_dim] += 1
            kind = record.kind
            if kind is RecordKind.BRANCH:
                profile.branches += 1
                if record.taken:
                    profile.taken_branches += 1
                    pc = record.target & _MASK32
                else:
                    pc = (pc + 4) & _MASK32
                block_start = pc
            else:
                if kind is RecordKind.MEMORY:
                    if record.is_store:
                        profile.stores += 1
                    else:
                        profile.loads += 1
                pc = (pc + 4) & _MASK32
    # Drain the iterator so the whole-file consistency checks run.
    for _ in iterator:
        raise TraceFileError(
            "payload holds more records than the segment table claims")
    return TraceProfile(digest=trace_content_digest(path),
                        bbv_dim=bbv_dim, segments=profiles)


def _take(iterator, count: int, segment_index: int):
    """The next ``count`` records of one full-file iteration — how the
    single streaming pass is split along segment-table boundaries."""
    for _ in range(count):
        record = next(iterator, None)
        if record is None:
            raise TraceFileError(
                f"trace ends inside segment {segment_index}")
        yield record


def profile_path(trace_path: str | Path) -> Path:
    """The sidecar path of a trace file (full name + ``.rprof``)."""
    trace = Path(trace_path)
    return trace.with_name(trace.name + PROFILE_SUFFIX)


def write_profile(profile: TraceProfile,
                  path: str | Path) -> None:
    """Atomically persist a profile sidecar (write-tmpfile-then-rename,
    the same durability idiom as every other protocol file: a crash
    mid-write leaves the old sidecar or none, never truncated JSON)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f"{target.name}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(profile.to_dict(), sort_keys=True))
    os.replace(tmp, target)


def load_profile(trace_path: str | Path, *,
                 expected_digest: str | None = None,
                 ) -> TraceProfile | None:
    """The trace's sidecar profile, or ``None`` when absent or stale.

    Staleness is decided by content: the sidecar records the digest of
    the trace bytes it was measured from, and a mismatch (the trace
    was regenerated in place) reads as "no profile" — a stale profile
    silently steering region selection would be worse than a re-scan.
    """
    sidecar = profile_path(trace_path)
    try:
        payload = json.loads(sidecar.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    try:
        profile = TraceProfile.from_dict(payload)
    except ProfileError:
        return None
    digest = (expected_digest if expected_digest is not None
              else trace_content_digest(trace_path))
    if profile.digest != digest:
        return None
    return profile


def ensure_profile(trace_path: str | Path, *,
                   bbv_dim: int = DEFAULT_BBV_DIM,
                   force: bool = False) -> TraceProfile:
    """The trace's profile — loaded from a fresh sidecar when one
    exists, otherwise measured and persisted.

    ``force`` re-analyzes unconditionally (and rewrites the sidecar);
    a sidecar whose BBV dimension differs from the requested one is
    treated as absent, since its vectors are not comparable.
    """
    if not force:
        profile = load_profile(trace_path)
        if profile is not None and profile.bbv_dim == bbv_dim:
            return profile
    try:
        profile = analyze_trace(trace_path, bbv_dim=bbv_dim)
    except TraceFileError:
        raise
    write_profile(profile, profile_path(trace_path))
    return profile
