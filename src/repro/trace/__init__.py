"""The ReSim trace substrate.

ReSim's input is a *pre-decoded* trace with one record per dynamic
instruction (Section V.A of the paper).  Three formats are used —
**Branch (B)**, **Memory (M)** and **Other (O)** — each with its own
fields and bit length, and every format carries a **Tag bit** marking
mis-speculated (wrong-path) instructions.  Because the format is decoded
and generic, any ISA that can be described by it is supported; that is
what makes ReSim "almost ISA independent".

This package provides:

* :mod:`repro.trace.record` — the in-memory record types;
* :mod:`repro.trace.encode` — the bit-packed codec (Table 3 of the paper
  reports 41-47 *bits* per instruction, so the encoding is measured at
  bit granularity);
* :mod:`repro.trace.fileio` — the persistent trace-file format
  (segmented v2 plus the legacy v1), including the constant-memory
  :class:`~repro.trace.fileio.SegmentedTraceWriter` and the streaming
  reader :func:`~repro.trace.fileio.iter_trace_records`;
* :mod:`repro.trace.source` — the :class:`~repro.trace.source.TraceSource`
  bounded-lookahead cursor protocol the engine and every other
  consumer ingest traces through (in-memory, streamed file, sharded
  concatenation);
* :mod:`repro.trace.stats` — per-trace statistics (record mix, bits per
  instruction, wrong-path fraction) feeding the Table 3 reproduction;
* :mod:`repro.trace.analyze` — per-segment behaviour profiles (record
  mix, misprediction density, basic-block vectors) persisted as
  content-digest-keyed ``.rprof`` sidecars — the measurement half of
  region-sampled simulation (:mod:`repro.exec.regions`);
* :mod:`repro.trace.wrongpath` — wrong-path block sizing and injection
  helpers shared by the functional and synthetic trace generators.
"""

from repro.trace.analyze import (
    DEFAULT_BBV_DIM,
    PROFILE_SCHEMA,
    ProfileError,
    SegmentProfile,
    TraceProfile,
    analyze_trace,
    ensure_profile,
    load_profile,
    profile_path,
    trace_content_digest,
    write_profile,
)
from repro.trace.fileio import (
    DEFAULT_SEGMENT_RECORDS,
    SegmentedTraceWriter,
    TraceFileError,
    TraceFileHeader,
    TraceSegment,
    iter_trace_records,
    read_segment_table,
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.trace.encode import (
    TraceDecoder,
    TraceEncoder,
    decode_record,
    decode_trace,
    encode_trace,
    record_bit_length,
)
from repro.trace.source import (
    ConcatSource,
    FileSource,
    InMemorySource,
    TraceSource,
    TraceSourceError,
    as_source,
)
from repro.trace.record import (
    BranchRecord,
    MemoryRecord,
    OtherRecord,
    RecordKind,
    TraceRecord,
)
from repro.trace.stats import TraceStatistics, measure_trace
from repro.trace.wrongpath import conservative_block_size

__all__ = [
    "BranchRecord",
    "ConcatSource",
    "DEFAULT_BBV_DIM",
    "DEFAULT_SEGMENT_RECORDS",
    "FileSource",
    "InMemorySource",
    "MemoryRecord",
    "OtherRecord",
    "PROFILE_SCHEMA",
    "ProfileError",
    "RecordKind",
    "SegmentProfile",
    "SegmentedTraceWriter",
    "TraceDecoder",
    "TraceEncoder",
    "TraceFileError",
    "TraceFileHeader",
    "TraceRecord",
    "TraceSegment",
    "TraceProfile",
    "TraceSource",
    "TraceSourceError",
    "TraceStatistics",
    "analyze_trace",
    "as_source",
    "conservative_block_size",
    "decode_record",
    "decode_trace",
    "encode_trace",
    "ensure_profile",
    "iter_trace_records",
    "load_profile",
    "measure_trace",
    "profile_path",
    "read_segment_table",
    "read_trace_file",
    "read_trace_header",
    "record_bit_length",
    "trace_content_digest",
    "write_profile",
    "write_trace_file",
]
