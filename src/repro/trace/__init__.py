"""The ReSim trace substrate.

ReSim's input is a *pre-decoded* trace with one record per dynamic
instruction (Section V.A of the paper).  Three formats are used —
**Branch (B)**, **Memory (M)** and **Other (O)** — each with its own
fields and bit length, and every format carries a **Tag bit** marking
mis-speculated (wrong-path) instructions.  Because the format is decoded
and generic, any ISA that can be described by it is supported; that is
what makes ReSim "almost ISA independent".

This package provides:

* :mod:`repro.trace.record` — the in-memory record types;
* :mod:`repro.trace.encode` — the bit-packed codec (Table 3 of the paper
  reports 41-47 *bits* per instruction, so the encoding is measured at
  bit granularity);
* :mod:`repro.trace.stats` — per-trace statistics (record mix, bits per
  instruction, wrong-path fraction) feeding the Table 3 reproduction;
* :mod:`repro.trace.wrongpath` — wrong-path block sizing and injection
  helpers shared by the functional and synthetic trace generators.
"""

from repro.trace.fileio import (
    TraceFileError,
    TraceFileHeader,
    read_trace_file,
    read_trace_header,
    write_trace_file,
)
from repro.trace.encode import (
    TraceDecoder,
    TraceEncoder,
    decode_trace,
    encode_trace,
    record_bit_length,
)
from repro.trace.record import (
    BranchRecord,
    MemoryRecord,
    OtherRecord,
    RecordKind,
    TraceRecord,
)
from repro.trace.stats import TraceStatistics, measure_trace
from repro.trace.wrongpath import conservative_block_size

__all__ = [
    "BranchRecord",
    "MemoryRecord",
    "OtherRecord",
    "RecordKind",
    "TraceDecoder",
    "TraceEncoder",
    "TraceFileError",
    "TraceFileHeader",
    "TraceRecord",
    "TraceStatistics",
    "conservative_block_size",
    "decode_trace",
    "encode_trace",
    "measure_trace",
    "read_trace_file",
    "read_trace_header",
    "record_bit_length",
    "write_trace_file",
]
