"""In-memory trace record types (Branch / Memory / Other).

The paper (Section V.A): *"ReSim's input trace consists of a record for
each dynamic instruction in a pre-decoded format.  Three formats are
used: Branch (B), Memory (M) and Other (O), each with its own fields and
length. [...] all formats include a Tag Bit field used for
mis-speculation handling."*

Design notes
------------
* Records carry **no PC**: ReSim reconstructs the program counter from
  sequential flow plus branch targets, which is what keeps the trace in
  the 41-47 bits/instruction range reported in Table 3.
* Register fields use the *trace register namespace*: ``0`` means "no
  register" (``$zero`` is never a dependence), ``1..31`` are GPRs, and
  ``32``/``33`` are HI/LO.  Six bits per field.
* Multiply/divide writes the HI/LO pair; the second destination is
  implicit in the functional-unit class, so it costs no trace bits
  (:meth:`TraceRecord.dest_registers` reconstructs it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.opcodes import BranchKind, FuClass

#: Trace register namespace constants.
TRACE_REG_NONE = 0
TRACE_REG_HI = 32
TRACE_REG_LO = 33
TRACE_REG_LIMIT = 64  # 6-bit fields


class RecordKind(enum.IntEnum):
    """The three record formats, as encoded in the 2-bit kind field."""

    OTHER = 0
    BRANCH = 1
    MEMORY = 2


#: Functional-unit classes as encoded in the 3-bit trace field.
FU_NUMBERS: dict[FuClass, int] = {
    FuClass.ALU: 0,
    FuClass.MUL: 1,
    FuClass.DIV: 2,
    FuClass.LOAD: 3,
    FuClass.STORE: 4,
    FuClass.BRANCH: 5,
    FuClass.NOP: 6,
}
NUMBER_TO_FU: dict[int, FuClass] = {v: k for k, v in FU_NUMBERS.items()}

#: Branch sub-classes as encoded in the 3-bit type field of B records.
BRANCH_NUMBERS: dict[BranchKind, int] = {
    BranchKind.COND: 0,
    BranchKind.JUMP: 1,
    BranchKind.CALL: 2,
    BranchKind.RETURN: 3,
    BranchKind.INDIRECT: 4,
}
NUMBER_TO_BRANCH: dict[int, BranchKind] = {v: k for k, v in BRANCH_NUMBERS.items()}


def _check_trace_reg(value: int, field: str) -> None:
    if not 0 <= value < TRACE_REG_LIMIT:
        raise ValueError(f"{field}={value} outside 6-bit trace register space")


def _check_common_fields(record: TraceRecord) -> None:
    """Shared field validation (zero-arg ``super()`` is unavailable in
    ``slots=True`` dataclasses, so subclasses call this explicitly)."""
    _check_trace_reg(record.dest, "dest")
    _check_trace_reg(record.src1, "src1")
    _check_trace_reg(record.src2, "src2")


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """Fields common to all three record formats.

    Attributes
    ----------
    tag:
        The mis-speculation Tag bit.  ``True`` marks a wrong-path
        instruction injected after a mispredicted branch; such records
        are fetched by ReSim until the branch resolves at Commit and
        any remainder is discarded.
    fu:
        Functional-unit class; determines issue resources and latency.
    dest, src1, src2:
        Trace-namespace register numbers (0 = none).
    """

    tag: bool = False
    fu: FuClass = FuClass.ALU
    dest: int = TRACE_REG_NONE
    src1: int = TRACE_REG_NONE
    src2: int = TRACE_REG_NONE

    def __post_init__(self) -> None:
        _check_common_fields(self)

    @property
    def kind(self) -> RecordKind:
        return RecordKind.OTHER

    @property
    def is_wrong_path(self) -> bool:
        """Alias for the Tag bit with the paper's meaning spelled out."""
        return self.tag

    def dest_registers(self) -> tuple[int, ...]:
        """Destination registers, including the implicit HI/LO pair."""
        if self.fu in (FuClass.MUL, FuClass.DIV):
            return (TRACE_REG_HI, TRACE_REG_LO)
        if self.dest == TRACE_REG_NONE:
            return ()
        return (self.dest,)

    def src_registers(self) -> tuple[int, ...]:
        """Source registers actually carried by the record."""
        return tuple(r for r in (self.src1, self.src2) if r != TRACE_REG_NONE)


@dataclass(frozen=True, slots=True)
class OtherRecord(TraceRecord):
    """Format O: any instruction that is neither memory nor control flow."""

    @property
    def kind(self) -> RecordKind:
        return RecordKind.OTHER


@dataclass(frozen=True, slots=True)
class MemoryRecord(TraceRecord):
    """Format M: loads and stores.

    ``address`` is the 32-bit effective virtual address; ``size_log2``
    encodes the access size (0→1 B, 1→2 B, 2→4 B, 3→8 B) in two bits.
    """

    is_store: bool = False
    address: int = 0
    size_log2: int = 2

    def __post_init__(self) -> None:
        _check_common_fields(self)
        if not 0 <= self.address < (1 << 32):
            raise ValueError(f"address {self.address:#x} not a 32-bit value")
        if not 0 <= self.size_log2 <= 3:
            raise ValueError(f"size_log2 {self.size_log2} out of range")
        expected = FuClass.STORE if self.is_store else FuClass.LOAD
        if self.fu is not expected:
            raise ValueError(
                f"memory record fu={self.fu} inconsistent with is_store={self.is_store}"
            )

    @property
    def kind(self) -> RecordKind:
        return RecordKind.MEMORY

    @property
    def size_bytes(self) -> int:
        return 1 << self.size_log2


@dataclass(frozen=True, slots=True)
class BranchRecord(TraceRecord):
    """Format B: all control-flow instructions.

    ``taken`` and ``target`` describe the *actual* outcome on the traced
    path; ReSim compares them against its own branch predictor state to
    detect mispredictions and misfetches.  For wrong-path (tagged)
    branch records the outcome fields hold the static fall-through
    information and are never used for redirection.
    """

    branch_kind: BranchKind = BranchKind.COND
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        _check_common_fields(self)
        if self.fu is not FuClass.BRANCH:
            raise ValueError("branch record must have fu=BRANCH")
        if self.branch_kind is BranchKind.NONE:
            raise ValueError("branch record needs a concrete branch kind")
        if not 0 <= self.target < (1 << 32):
            raise ValueError(f"target {self.target:#x} not a 32-bit value")

    @property
    def kind(self) -> RecordKind:
        return RecordKind.BRANCH

    @property
    def is_unconditional(self) -> bool:
        """Jumps, calls and returns are always taken."""
        return self.branch_kind is not BranchKind.COND
