"""Bit-packed trace codec.

Field layout (all records start with the 2-bit kind and 1-bit Tag):

====== ======================================================== ======
format fields                                                   bits
====== ======================================================== ======
O      kind(2) tag(1) fu(3) dest(6) src1(6) src2(6)             24
M      O-header + is_store(1) size_log2(2) address(32)          59
B      O-header + branch_kind(3) taken(1) target(32)            60
====== ======================================================== ======

These widths put typical SPECint mixes at ~40-45 bits per dynamic
instruction, matching the 41.16-47.14 range the paper reports in
Table 3.  The codec is deliberately simple (no inter-record
compression): ReSim's FPGA deserializer must decode a record per minor
cycle, so the hardware-friendly flat layout is part of the design.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.isa.opcodes import FuClass
from repro.trace.record import (
    BRANCH_NUMBERS,
    BranchRecord,
    FU_NUMBERS,
    MemoryRecord,
    NUMBER_TO_BRANCH,
    NUMBER_TO_FU,
    OtherRecord,
    RecordKind,
    TraceRecord,
)
from repro.utils.bitio import BitReader, BitWriter

# Field widths, in bits.
KIND_BITS = 2
TAG_BITS = 1
FU_BITS = 3
REG_BITS = 6
STORE_BITS = 1
SIZE_BITS = 2
ADDRESS_BITS = 32
BRANCH_KIND_BITS = 3
TAKEN_BITS = 1
TARGET_BITS = 32

_COMMON_BITS = KIND_BITS + TAG_BITS + FU_BITS + 3 * REG_BITS

#: Encoded size of each record format, in bits.
FORMAT_BITS: dict[RecordKind, int] = {
    RecordKind.OTHER: _COMMON_BITS,
    RecordKind.MEMORY: _COMMON_BITS + STORE_BITS + SIZE_BITS + ADDRESS_BITS,
    RecordKind.BRANCH: _COMMON_BITS + BRANCH_KIND_BITS + TAKEN_BITS + TARGET_BITS,
}


def record_bit_length(record: TraceRecord) -> int:
    """Exact encoded size of one record, in bits."""
    return FORMAT_BITS[record.kind]


class TraceEncoder:
    """Streams records into a bit-packed buffer.

    Use :func:`encode_trace` for the common whole-trace case; the
    incremental encoder exists for the on-the-fly generation mode the
    paper mentions (functional simulator feeding ReSim directly).
    """

    def __init__(self) -> None:
        self._writer = BitWriter()
        self._count = 0

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def bit_length(self) -> int:
        return self._writer.bit_length

    def append(self, record: TraceRecord) -> None:
        """Encode one record at the current bit position."""
        writer = self._writer
        writer.write(int(record.kind), KIND_BITS)
        writer.write_bool(record.tag)
        writer.write(FU_NUMBERS[record.fu], FU_BITS)
        writer.write(record.dest, REG_BITS)
        writer.write(record.src1, REG_BITS)
        writer.write(record.src2, REG_BITS)
        if isinstance(record, MemoryRecord):
            writer.write_bool(record.is_store)
            writer.write(record.size_log2, SIZE_BITS)
            writer.write(record.address, ADDRESS_BITS)
        elif isinstance(record, BranchRecord):
            writer.write(BRANCH_NUMBERS[record.branch_kind], BRANCH_KIND_BITS)
            writer.write_bool(record.taken)
            writer.write(record.target, TARGET_BITS)
        self._count += 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def getvalue(self) -> bytes:
        return self._writer.getvalue()


def decode_record(reader: BitReader) -> TraceRecord:
    """Decode exactly one record at the reader's current bit position.

    The building block shared by :class:`TraceDecoder` (whole-buffer
    decode) and the chunked streaming reader in
    :mod:`repro.trace.fileio`; raises ``EOFError`` if the buffer ends
    mid-record.
    """
    kind = RecordKind(reader.read(KIND_BITS))
    tag = reader.read_bool()
    fu = NUMBER_TO_FU[reader.read(FU_BITS)]
    dest = reader.read(REG_BITS)
    src1 = reader.read(REG_BITS)
    src2 = reader.read(REG_BITS)
    if kind is RecordKind.OTHER:
        return OtherRecord(tag=tag, fu=fu, dest=dest, src1=src1, src2=src2)
    if kind is RecordKind.MEMORY:
        is_store = reader.read_bool()
        size_log2 = reader.read(SIZE_BITS)
        address = reader.read(ADDRESS_BITS)
        return MemoryRecord(
            tag=tag, fu=fu, dest=dest, src1=src1, src2=src2,
            is_store=is_store, size_log2=size_log2, address=address,
        )
    branch_kind = NUMBER_TO_BRANCH[reader.read(BRANCH_KIND_BITS)]
    taken = reader.read_bool()
    target = reader.read(TARGET_BITS)
    return BranchRecord(
        tag=tag, fu=fu, dest=dest, src1=src1, src2=src2,
        branch_kind=branch_kind, taken=taken, target=target,
    )


class TraceDecoder:
    """Iterates records out of a bit-packed buffer."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._reader = BitReader(data, bit_length)

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        # A full record header no longer fits: end of stream (the final
        # byte may contain zero padding shorter than one record).
        if self._reader.bits_remaining < _COMMON_BITS:
            raise StopIteration
        return decode_record(self._reader)


def encode_trace(records: Sequence[TraceRecord]) -> tuple[bytes, int]:
    """Encode a whole trace; returns ``(buffer, exact_bit_length)``."""
    encoder = TraceEncoder()
    encoder.extend(records)
    return encoder.getvalue(), encoder.bit_length


def decode_trace(data: bytes, bit_length: int | None = None) -> list[TraceRecord]:
    """Decode a buffer produced by :func:`encode_trace`."""
    return list(TraceDecoder(data, bit_length))
