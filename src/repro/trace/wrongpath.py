"""Wrong-path block sizing and validation.

Mis-speculation handling (paper, Section V.A): after every branch the
trace-generation predictor mispredicts, the generator inserts a *wrong
path block* of Tag-bit-marked instructions — the instructions the
simulated front end would fetch down the wrong path.  ReSim fetches
from the block until the branch resolves at Commit; tagged records not
yet fetched by then are discarded.

The paper gives the conservative block size bound: *"equal to Reorder
Buffer size plus IFQ size"* — the wrong path can never have more
in-flight instructions than the machine can hold.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.trace.record import TraceRecord


def conservative_block_size(rob_entries: int, ifq_entries: int) -> int:
    """The paper's conservative wrong-path block size: ROB + IFQ entries.

    A mis-speculated instruction must occupy either an IFQ slot or a
    reorder-buffer slot to affect timing, so a block longer than the sum
    could never be consumed before the branch resolves.
    """
    if rob_entries <= 0 or ifq_entries <= 0:
        raise ValueError("structure sizes must be positive")
    return rob_entries + ifq_entries


def validate_block(block: Sequence[TraceRecord], max_size: int) -> None:
    """Check a wrong-path block invariant set.

    Every record must carry the Tag bit, and the block must respect the
    conservative size bound.  Raises ``ValueError`` on violation; used
    by generators as a self-check and by tests as an oracle.
    """
    if len(block) > max_size:
        raise ValueError(
            f"wrong-path block of {len(block)} exceeds bound {max_size}"
        )
    for index, record in enumerate(block):
        if not record.tag:
            raise ValueError(f"untagged record at block offset {index}")


def count_blocks(records: Iterable[TraceRecord]) -> int:
    """Number of maximal tagged runs in a record stream.

    Each run corresponds to one mispredicted branch in the generated
    trace, so this equals the generation-time misprediction count.
    """
    blocks = 0
    in_block = False
    for record in records:
        if record.tag and not in_block:
            blocks += 1
        in_block = record.tag
    return blocks
