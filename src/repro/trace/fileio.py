"""Trace file format: persistent, self-describing ReSim traces.

The paper's primary usage mode is *"traces that are prepared off-line
(for example for bulk simulations with varying design parameters)"* —
which needs a file format.  Ours is deliberately simple and fully
self-describing:

======== ======= ====================================================
offset   size    field
======== ======= ====================================================
0        8       magic ``b"RESIMTRC"``
8        2       format version (little-endian u16, currently 1)
10       2       header length in bytes (from offset 0)
12       8       record count (u64)
20       8       exact payload bit length (u64)
28       4       committed-instruction count low-order 32 bits (crc-
                 style consistency field; full counts live in stats)
32       N       UTF-8 JSON metadata blob (predictor config, benchmark
                 name, seed); written unpadded, so it ends exactly at
                 the header length
header   ...     bit-packed records (repro.trace.encode layout)
======== ======= ====================================================

Because the header-length field is a u16, the metadata blob is limited
to ``65535 - 32`` bytes; :func:`write_trace_file` rejects larger blobs
with :class:`TraceFileError` before touching the filesystem.

The JSON metadata keeps the predictor configuration with the trace —
the consistency contract (engine predictor == generation predictor)
should survive a trip through the filesystem.  Readers verify the
committed-instruction consistency field at offset 28 against the
decoded records, so silent payload corruption that preserves record
*count* but flips Tag bits is still caught.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.bpred.unit import PredictorConfig
from repro.trace.encode import decode_trace, encode_trace
from repro.trace.record import TraceRecord

MAGIC = b"RESIMTRC"
VERSION = 1

#: The header-length field is a little-endian u16 covering the fixed
#: 32-byte prefix plus the JSON metadata blob.
MAX_HEADER_LENGTH = 0xFFFF
_COMMITTED_MASK = 0xFFFF_FFFF


class TraceFileError(ValueError):
    """Raised on malformed or incompatible trace files."""


@dataclass(frozen=True)
class TraceFileHeader:
    """Parsed header of a trace file."""

    version: int
    record_count: int
    bit_length: int
    metadata: dict
    committed_low32: int = 0

    @property
    def predictor_config(self) -> PredictorConfig | None:
        """Reconstruct the generation predictor, if recorded."""
        blob = self.metadata.get("predictor")
        if blob is None:
            return None
        return PredictorConfig(**blob)


def _predictor_metadata(config: PredictorConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "scheme": config.scheme,
        "l1_size": config.l1_size,
        "history_length": config.history_length,
        "l2_size": config.l2_size,
        "bimodal_size": config.bimodal_size,
        "meta_size": config.meta_size,
        "btb_entries": config.btb_entries,
        "btb_assoc": config.btb_assoc,
        "ras_depth": config.ras_depth,
    }


def write_trace_file(
    path: str | Path,
    records: Sequence[TraceRecord],
    predictor: PredictorConfig | None = None,
    benchmark: str | None = None,
    seed: int | None = None,
    extra: dict | None = None,
) -> int:
    """Serialize a trace; returns the number of bytes written.

    ``extra`` merges additional JSON-serializable keys into the
    metadata blob (e.g. a kernel's entry PC, or sweep provenance);
    the reserved ``predictor``/``benchmark``/``seed`` keys cannot be
    overridden.

    Raises
    ------
    TraceFileError
        If the metadata blob pushes the header past the 65535-byte
        limit of the u16 header-length field.  Nothing is written in
        that case — previously this surfaced as a bare
        ``OverflowError`` mid-serialization.
    """
    payload, bit_length = encode_trace(records)
    metadata = dict(extra or {})
    metadata.update({
        "predictor": _predictor_metadata(predictor),
        "benchmark": benchmark,
        "seed": seed,
    })
    blob = json.dumps(metadata, sort_keys=True).encode()
    header_length = 32 + len(blob)
    if header_length > MAX_HEADER_LENGTH:
        raise TraceFileError(
            f"metadata blob is {len(blob)} bytes; the u16 header-length "
            f"field caps the header at {MAX_HEADER_LENGTH} bytes "
            f"({MAX_HEADER_LENGTH - 32} bytes of metadata)"
        )

    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(VERSION.to_bytes(2, "little"))
    buffer.write(header_length.to_bytes(2, "little"))
    buffer.write(len(records).to_bytes(8, "little"))
    buffer.write(bit_length.to_bytes(8, "little"))
    committed = sum(1 for record in records if not record.tag)
    buffer.write((committed & _COMMITTED_MASK).to_bytes(4, "little"))
    buffer.write(blob)
    buffer.write(payload)

    data = buffer.getvalue()
    Path(path).write_bytes(data)
    return len(data)


def read_trace_header(path: str | Path) -> TraceFileHeader:
    """Parse just the header (cheap metadata inspection).

    Reads at most the 64 KB the u16 header-length field can address —
    the payload (arbitrarily large) is never loaded.
    """
    with open(path, "rb") as handle:
        data = handle.read(MAX_HEADER_LENGTH)
    return _parse_header(data)[0]


def _parse_header(data: bytes) -> tuple[TraceFileHeader, int]:
    if len(data) < 32 or data[:8] != MAGIC:
        raise TraceFileError("not a ReSim trace file (bad magic)")
    version = int.from_bytes(data[8:10], "little")
    if version != VERSION:
        raise TraceFileError(f"unsupported trace version {version}")
    header_length = int.from_bytes(data[10:12], "little")
    if header_length < 32 or header_length > len(data):
        raise TraceFileError("corrupt header length")
    record_count = int.from_bytes(data[12:20], "little")
    bit_length = int.from_bytes(data[20:28], "little")
    committed_low32 = int.from_bytes(data[28:32], "little")
    try:
        metadata = json.loads(data[32:header_length].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFileError(f"corrupt metadata blob: {error}") from None
    if not isinstance(metadata, dict):
        raise TraceFileError(
            f"metadata blob must be a JSON object, got "
            f"{type(metadata).__name__}"
        )
    header = TraceFileHeader(
        version=version,
        record_count=record_count,
        bit_length=bit_length,
        metadata=metadata,
        committed_low32=committed_low32,
    )
    return header, header_length


def read_trace_file(
    path: str | Path,
) -> tuple[TraceFileHeader, list[TraceRecord]]:
    """Deserialize a trace file into its header and records.

    Raises
    ------
    TraceFileError
        On bad magic, unsupported version, corrupt header, a payload
        whose record count disagrees with the header, or decoded
        records whose committed (untagged) count disagrees with the
        offset-28 consistency field.
    """
    data = Path(path).read_bytes()
    header, header_length = _parse_header(data)
    payload = data[header_length:]
    if header.bit_length > 8 * len(payload):
        raise TraceFileError("truncated payload")
    records = decode_trace(payload, header.bit_length)
    if len(records) != header.record_count:
        raise TraceFileError(
            f"payload holds {len(records)} records, header claims "
            f"{header.record_count}"
        )
    committed = sum(1 for record in records if not record.tag)
    if committed & _COMMITTED_MASK != header.committed_low32:
        raise TraceFileError(
            f"payload holds {committed} committed (untagged) records, "
            f"header consistency field claims "
            f"{header.committed_low32} (mod 2^32); trace Tag bits are "
            f"corrupt"
        )
    return header, records
