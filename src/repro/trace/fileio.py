"""Trace file format: persistent, self-describing ReSim traces.

The paper's primary usage mode is *"traces that are prepared off-line
(for example for bulk simulations with varying design parameters)"* —
which needs a file format.  Two on-disk versions exist; both are fully
self-describing, and readers accept both.

Format v1 (monolithic payload)
------------------------------

======== ======= ====================================================
offset   size    field
======== ======= ====================================================
0        8       magic ``b"RESIMTRC"``
8        2       format version (little-endian u16, = 1)
10       2       header length in bytes (from offset 0)
12       8       record count (u64)
20       8       exact payload bit length (u64)
28       4       committed-instruction count low-order 32 bits (crc-
                 style consistency field; full counts live in stats)
32       N       UTF-8 JSON metadata blob (predictor config, benchmark
                 name, seed); written unpadded, so it ends exactly at
                 the header length
header   ...     bit-packed records (repro.trace.encode layout), one
                 contiguous run to end of file
======== ======= ====================================================

Format v2 (segmented payload — the default written format)
----------------------------------------------------------

v2 splits the payload into **independently decodable segments** of a
configurable nominal record count (:data:`DEFAULT_SEGMENT_RECORDS`).
Each segment starts at a byte boundary and is bit-packed internally,
so a reader decodes one segment at a time with bounded memory, and a
sharded sweep can split work at segment boundaries without decoding
anything it does not own.

======== ======= ====================================================
offset   size    field
======== ======= ====================================================
0        8       magic ``b"RESIMTRC"``
8        2       format version (little-endian u16, = 2)
10       2       header length in bytes (from offset 0)
12       8       total record count (u64)
20       8       total payload bit length (u64; sum over segments,
                 excluding per-segment byte padding)
28       4       committed-instruction count low-order 32 bits
32       4       segment count (u32)
36       8       segment-table file offset (u64, absolute)
44       4       nominal records per segment (u32)
48       N       UTF-8 JSON metadata blob, ending at the header length
header   ...     segment payloads, back to back, each byte-aligned
                 (segment *i* occupies ``ceil(bit_length_i / 8)``
                 bytes)
table    12xS    segment table: per segment, record count (u32) then
                 exact bit length (u64); the file ends at the table's
                 last byte
======== ======= ====================================================

The segment table lives at the *end* of the file (its offset is in the
fixed prefix) so that :class:`SegmentedTraceWriter` can stream records
to disk without knowing the segment count up front — generators emit
straight to the writer without ever holding the full record list, and
the fixed prefix is patched once at close.

Because the header-length field is a u16, the metadata blob is limited
to ``65535`` minus the fixed prefix; writers reject larger blobs with
:class:`TraceFileError` before touching the filesystem.

The JSON metadata keeps the predictor configuration with the trace —
the consistency contract (engine predictor == generation predictor)
should survive a trip through the filesystem.  Readers verify the
committed-instruction consistency field at offset 28 against the
decoded records (whole-file reads *and* streamed reads, at exhaustion),
so silent payload corruption that preserves record *count* but flips
Tag bits is still caught; v2 readers additionally verify every
segment's record count and bit length against the segment table.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO
from collections.abc import Iterable, Iterator, Sequence

from repro.bpred.unit import PredictorConfig
from repro.trace.encode import (
    _COMMON_BITS,
    FORMAT_BITS,
    TraceEncoder,
    decode_record,
    decode_trace,
    encode_trace,
)
from repro.trace.record import TraceRecord
from repro.utils.bitio import BitReader

MAGIC = b"RESIMTRC"
#: The monolithic-payload format.
VERSION_V1 = 1
#: The segmented-payload format (see module docstring).
VERSION_V2 = 2
#: The version :func:`write_trace_file` emits by default.
VERSION = VERSION_V2
SUPPORTED_VERSIONS = (VERSION_V1, VERSION_V2)

#: Nominal records per v2 segment.  4096 records are ~20-30 KB encoded
#: — small enough that one decoded segment is negligible memory, large
#: enough that per-segment overhead (12 table bytes, <1 byte padding)
#: is noise against the ~5 bytes/record payload.
DEFAULT_SEGMENT_RECORDS = 4096

#: The header-length field is a little-endian u16 covering the fixed
#: prefix plus the JSON metadata blob.
MAX_HEADER_LENGTH = 0xFFFF
_COMMITTED_MASK = 0xFFFF_FFFF

_V1_PREFIX = 32
_V2_PREFIX = 48
_SEGMENT_ENTRY_BYTES = 12  # record count u32 + bit length u64

#: Encoded size of the largest record format (a B record), in bits.
_MAX_RECORD_BITS = max(FORMAT_BITS.values())

#: Bytes per read when streaming a v1 payload.
_V1_CHUNK_BYTES = 256 * 1024


class TraceFileError(ValueError):
    """Raised on malformed or incompatible trace files."""


@dataclass(frozen=True)
class TraceSegment:
    """One entry of a v2 segment table (or the single pseudo-segment
    covering a v1 payload)."""

    index: int
    record_count: int
    bit_length: int
    payload_offset: int  # absolute file offset of the segment's bytes

    @property
    def byte_length(self) -> int:
        return (self.bit_length + 7) // 8


@dataclass(frozen=True)
class TraceFileHeader:
    """Parsed header of a trace file.

    The segment fields are zero for v1 files (a v1 payload is one
    contiguous bit-packed run with no table).
    """

    version: int
    record_count: int
    bit_length: int
    metadata: dict
    committed_low32: int = 0
    segment_count: int = 0
    segment_records: int = 0
    segment_table_offset: int = 0

    @property
    def predictor_config(self) -> PredictorConfig | None:
        """Reconstruct the generation predictor, if recorded."""
        blob = self.metadata.get("predictor")
        if blob is None:
            return None
        return PredictorConfig(**blob)

    @property
    def bits_per_instruction(self) -> float:
        """Average encoded bits per record, straight from the header
        (Table 3's first column, without decoding the payload)."""
        if self.record_count == 0:
            return 0.0
        return self.bit_length / self.record_count


def _predictor_metadata(config: PredictorConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "scheme": config.scheme,
        "l1_size": config.l1_size,
        "history_length": config.history_length,
        "l2_size": config.l2_size,
        "bimodal_size": config.bimodal_size,
        "meta_size": config.meta_size,
        "btb_entries": config.btb_entries,
        "btb_assoc": config.btb_assoc,
        "ras_depth": config.ras_depth,
    }


def _metadata_blob(
    predictor: PredictorConfig | None,
    benchmark: str | None,
    seed: int | None,
    extra: dict | None,
    prefix_bytes: int,
) -> bytes:
    """Serialize the metadata blob, enforcing the u16 header cap."""
    metadata = dict(extra or {})
    metadata.update({
        "predictor": _predictor_metadata(predictor),
        "benchmark": benchmark,
        "seed": seed,
    })
    blob = json.dumps(metadata, sort_keys=True).encode()
    if prefix_bytes + len(blob) > MAX_HEADER_LENGTH:
        raise TraceFileError(
            f"metadata blob is {len(blob)} bytes; the u16 header-length "
            f"field caps the header at {MAX_HEADER_LENGTH} bytes "
            f"({MAX_HEADER_LENGTH - prefix_bytes} bytes of metadata)"
        )
    return blob


class SegmentedTraceWriter:
    """Streams records into a v2 trace file with bounded memory.

    The writer holds at most one partially encoded segment
    (``segment_records`` records) plus 12 bytes of table entry per
    flushed segment — generation never needs the full record list::

        with SegmentedTraceWriter(path, benchmark="gzip") as writer:
            for record in generator:
                writer.append(record)

    ``target`` may be a path or any seekable binary file object (the
    fixed prefix is patched at close, once the totals are known).  A
    file object's position at construction becomes the stream origin:
    the trace is laid out from there, and the stored segment-table
    offset is origin-relative — i.e. correct for a reader that treats
    the origin as byte 0 of a trace file.  On a clean
    ``close()``/``__exit__`` the file is complete and valid;
    if the body raises, the underlying handle is closed without
    finalizing, leaving an unreadable file (writers that need
    atomicity write to a temporary path and rename, as the sweep
    runner does).

    Raises
    ------
    TraceFileError
        At construction, if the metadata blob pushes the header past
        the 65535-byte limit of the u16 header-length field (nothing
        is written in that case).
    """

    def __init__(
        self,
        target: str | Path | BinaryIO,
        *,
        predictor: PredictorConfig | None = None,
        benchmark: str | None = None,
        seed: int | None = None,
        extra: dict | None = None,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> None:
        if segment_records < 1:
            raise TraceFileError(
                f"segment_records must be >= 1, got {segment_records}")
        blob = _metadata_blob(predictor, benchmark, seed, extra,
                              _V2_PREFIX)
        self._header_length = _V2_PREFIX + len(blob)
        self._segment_records = segment_records
        if isinstance(target, (str, Path)):
            # noqa'd: the handle outlives __init__ and is released in close().
            self._handle: BinaryIO = open(target, "w+b")  # noqa: SIM115
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._encoder = TraceEncoder()
        self._table: list[tuple[int, int]] = []  # (records, bits)
        self._record_count = 0
        self._committed = 0
        self._total_bits = 0
        self._closed = False
        self._bytes_written = 0
        self._origin = self._handle.tell()
        # Placeholder prefix (counts patched at close) + metadata.
        self._handle.write(bytes(_V2_PREFIX))
        self._handle.write(blob)

    # -- introspection --------------------------------------------------

    @property
    def record_count(self) -> int:
        """Records appended so far."""
        return self._record_count

    @property
    def bytes_written(self) -> int:
        """Total file size; valid only after :meth:`close`."""
        return self._bytes_written

    # -- writing --------------------------------------------------------

    def append(self, record: TraceRecord) -> None:
        """Append one record, flushing a segment when full."""
        if self._closed:
            raise TraceFileError("writer is closed")
        self._encoder.append(record)
        self._record_count += 1
        if not record.tag:
            self._committed += 1
        if self._encoder.record_count >= self._segment_records:
            self._flush_segment()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def _flush_segment(self) -> None:
        count = self._encoder.record_count
        if count == 0:
            return
        bits = self._encoder.bit_length
        self._handle.write(self._encoder.getvalue())
        self._table.append((count, bits))
        self._total_bits += bits
        self._encoder = TraceEncoder()

    def close(self) -> int:
        """Finalize the file; returns the total bytes written."""
        if self._closed:
            return self._bytes_written
        self._flush_segment()
        handle = self._handle
        table_offset = self._header_length + sum(
            (bits + 7) // 8 for _, bits in self._table)
        handle.seek(self._origin + table_offset)
        for count, bits in self._table:
            handle.write(count.to_bytes(4, "little"))
            handle.write(bits.to_bytes(8, "little"))
        self._bytes_written = handle.tell() - self._origin

        handle.seek(self._origin)
        handle.write(MAGIC)
        handle.write(VERSION_V2.to_bytes(2, "little"))
        handle.write(self._header_length.to_bytes(2, "little"))
        handle.write(self._record_count.to_bytes(8, "little"))
        handle.write(self._total_bits.to_bytes(8, "little"))
        handle.write(
            (self._committed & _COMMITTED_MASK).to_bytes(4, "little"))
        handle.write(len(self._table).to_bytes(4, "little"))
        handle.write(table_offset.to_bytes(8, "little"))
        handle.write(self._segment_records.to_bytes(4, "little"))

        self._closed = True
        if self._owns_handle:
            handle.close()
        return self._bytes_written

    def __enter__(self) -> SegmentedTraceWriter:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._owns_handle and not self._closed:
            self._closed = True
            self._handle.close()


def write_trace_file(
    path: str | Path,
    records: Sequence[TraceRecord],
    predictor: PredictorConfig | None = None,
    benchmark: str | None = None,
    seed: int | None = None,
    extra: dict | None = None,
    *,
    version: int = VERSION,
    segment_records: int = DEFAULT_SEGMENT_RECORDS,
) -> int:
    """Serialize a trace; returns the number of bytes written.

    Writes format v2 (segmented) by default; pass ``version=1`` for
    the legacy monolithic layout.  The write is atomic: the file is
    assembled in memory, written to a ``.part`` sibling and renamed
    over ``path``, so a crash mid-write neither destroys an existing
    trace at ``path`` nor leaves a truncated one (for traces too
    large to assemble in memory, stream through
    :class:`SegmentedTraceWriter` — or, with the same atomicity,
    :func:`repro.workloads.tracegen.write_workload_trace`).

    ``extra`` merges additional JSON-serializable keys into the
    metadata blob (e.g. a kernel's entry PC, or sweep provenance);
    the reserved ``predictor``/``benchmark``/``seed`` keys cannot be
    overridden.

    Raises
    ------
    TraceFileError
        If the metadata blob pushes the header past the 65535-byte
        limit of the u16 header-length field, or ``version`` is not a
        supported format.  Nothing is written in either case.
    """
    if version == VERSION_V2:
        buffer = io.BytesIO()
        with SegmentedTraceWriter(
            buffer, predictor=predictor, benchmark=benchmark,
            seed=seed, extra=extra, segment_records=segment_records,
        ) as writer:
            writer.extend(records)
        return _atomic_write_bytes(path, buffer.getvalue())
    if version != VERSION_V1:
        raise TraceFileError(
            f"cannot write trace version {version}; supported: "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))}"
        )

    payload, bit_length = encode_trace(records)
    blob = _metadata_blob(predictor, benchmark, seed, extra, _V1_PREFIX)
    header_length = _V1_PREFIX + len(blob)

    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(VERSION_V1.to_bytes(2, "little"))
    buffer.write(header_length.to_bytes(2, "little"))
    buffer.write(len(records).to_bytes(8, "little"))
    buffer.write(bit_length.to_bytes(8, "little"))
    committed = sum(1 for record in records if not record.tag)
    buffer.write((committed & _COMMITTED_MASK).to_bytes(4, "little"))
    buffer.write(blob)
    buffer.write(payload)
    return _atomic_write_bytes(path, buffer.getvalue())


def _atomic_write_bytes(path: str | Path, data: bytes) -> int:
    """Write via a ``.part`` sibling + rename; returns bytes written."""
    target = Path(path)
    part = target.with_name(target.name + ".part")
    try:
        part.write_bytes(data)
    except BaseException:
        part.unlink(missing_ok=True)
        raise
    os.replace(part, target)
    return len(data)


def read_trace_header(path: str | Path) -> TraceFileHeader:
    """Parse just the header (cheap metadata inspection).

    Reads at most the 64 KB the u16 header-length field can address —
    the payload (arbitrarily large) is never loaded.
    """
    with open(path, "rb") as handle:
        data = handle.read(MAX_HEADER_LENGTH)
    return _parse_header(data)[0]


def _parse_header(data: bytes) -> tuple[TraceFileHeader, int]:
    if len(data) < _V1_PREFIX or data[:8] != MAGIC:
        raise TraceFileError("not a ReSim trace file (bad magic)")
    version = int.from_bytes(data[8:10], "little")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFileError(f"unsupported trace version {version}")
    prefix = _V1_PREFIX if version == VERSION_V1 else _V2_PREFIX
    header_length = int.from_bytes(data[10:12], "little")
    if header_length < prefix or header_length > len(data):
        raise TraceFileError("corrupt header length")
    record_count = int.from_bytes(data[12:20], "little")
    bit_length = int.from_bytes(data[20:28], "little")
    committed_low32 = int.from_bytes(data[28:32], "little")
    segment_count = 0
    segment_records = 0
    segment_table_offset = 0
    if version == VERSION_V2:
        segment_count = int.from_bytes(data[32:36], "little")
        segment_table_offset = int.from_bytes(data[36:44], "little")
        segment_records = int.from_bytes(data[44:48], "little")
    try:
        metadata = json.loads(data[prefix:header_length].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFileError(f"corrupt metadata blob: {error}") from None
    if not isinstance(metadata, dict):
        raise TraceFileError(
            f"metadata blob must be a JSON object, got "
            f"{type(metadata).__name__}"
        )
    header = TraceFileHeader(
        version=version,
        record_count=record_count,
        bit_length=bit_length,
        metadata=metadata,
        committed_low32=committed_low32,
        segment_count=segment_count,
        segment_records=segment_records,
        segment_table_offset=segment_table_offset,
    )
    return header, header_length


def _parse_segment_table(
    header: TraceFileHeader,
    header_length: int,
    table_bytes: bytes,
    file_size: int,
) -> tuple[TraceSegment, ...]:
    """Validate and expand a v2 segment table into absolute offsets."""
    expected = header.segment_count * _SEGMENT_ENTRY_BYTES
    if len(table_bytes) != expected:
        raise TraceFileError(
            f"corrupt segment index: table holds {len(table_bytes)} "
            f"bytes, header claims {header.segment_count} segment(s) "
            f"({expected} bytes)"
        )
    if file_size != header.segment_table_offset + expected:
        raise TraceFileError(
            f"corrupt segment index: file is {file_size} bytes, "
            f"table at offset {header.segment_table_offset} ends at "
            f"{header.segment_table_offset + expected}"
        )
    segments: list[TraceSegment] = []
    offset = header_length
    total_records = 0
    total_bits = 0
    for index in range(header.segment_count):
        base = index * _SEGMENT_ENTRY_BYTES
        count = int.from_bytes(table_bytes[base:base + 4], "little")
        bits = int.from_bytes(table_bytes[base + 4:base + 12], "little")
        segment = TraceSegment(index=index, record_count=count,
                               bit_length=bits, payload_offset=offset)
        segments.append(segment)
        offset += segment.byte_length
        total_records += count
        total_bits += bits
    if offset != header.segment_table_offset:
        raise TraceFileError(
            f"corrupt segment index: segment payloads end at offset "
            f"{offset}, header places the table at "
            f"{header.segment_table_offset}"
        )
    if total_records != header.record_count:
        raise TraceFileError(
            f"segment index holds {total_records} records across "
            f"{header.segment_count} segment(s), header claims "
            f"{header.record_count}"
        )
    if total_bits != header.bit_length:
        raise TraceFileError(
            f"segment index holds {total_bits} payload bits, header "
            f"claims {header.bit_length}"
        )
    return tuple(segments)


def read_segment_table(path: str | Path) -> tuple[TraceSegment, ...]:
    """The segment map of a trace file, for shard planning.

    For v2 files this is the validated on-disk table; a v1 payload is
    reported as one pseudo-segment spanning the whole payload, so
    shard planners can treat both formats uniformly.
    """
    file_size = os.stat(path).st_size
    with open(path, "rb") as handle:
        header, header_length = _parse_header(
            handle.read(MAX_HEADER_LENGTH))
        if header.version == VERSION_V1:
            return (TraceSegment(
                index=0,
                record_count=header.record_count,
                bit_length=header.bit_length,
                payload_offset=header_length,
            ),)
        if header.segment_table_offset < header_length:
            raise TraceFileError("corrupt segment index: table offset "
                                 "inside the header")
        if header.segment_table_offset > file_size:
            raise TraceFileError("truncated payload")
        handle.seek(header.segment_table_offset)
        table_bytes = handle.read()
    return _parse_segment_table(header, header_length, table_bytes,
                                file_size)


def _verify_committed(header: TraceFileHeader, committed: int) -> None:
    if committed & _COMMITTED_MASK != header.committed_low32:
        raise TraceFileError(
            f"payload holds {committed} committed (untagged) records, "
            f"header consistency field claims "
            f"{header.committed_low32} (mod 2^32); trace Tag bits are "
            f"corrupt"
        )


def _iter_v1_payload(handle: BinaryIO, bit_length: int,
                     ) -> Iterator[TraceRecord]:
    """Decode a v1 payload in bounded chunks.

    The payload is one contiguous bit-packed run; records are at most
    :data:`_MAX_RECORD_BITS` long, so whenever at least that many bits
    are buffered the next record is guaranteed to decode without
    touching the file again.  Consumed whole bytes are dropped from
    the front of the buffer, keeping resident memory at one chunk.
    """
    buffer = bytearray()
    local_bitpos = 0       # bits of `buffer` already consumed
    bits_buffered = 0      # payload bits currently held in `buffer`
    bits_unread = bit_length
    eof = bits_unread == 0
    while True:
        while not eof and bits_buffered - local_bitpos < 8 * _V1_CHUNK_BYTES:
            chunk = handle.read(_V1_CHUNK_BYTES)
            if not chunk:
                eof = True
                if bits_unread > 0:
                    raise TraceFileError("truncated payload")
                break
            buffer.extend(chunk)
            got = min(8 * len(chunk), bits_unread)
            bits_buffered += got
            bits_unread -= got
            if bits_unread == 0:
                eof = True
        # Decode straight out of the buffer at the current bit offset.
        reader = BitReader(bytes(buffer), bits_buffered)
        reader.seek_bit(local_bitpos)
        while True:
            remaining = reader.bits_remaining
            if eof:
                if remaining < _COMMON_BITS:
                    # End of stream (the final byte may contain zero
                    # padding shorter than one record).
                    return
            elif remaining < _MAX_RECORD_BITS:
                break  # a record might straddle the chunk: read more
            try:
                yield decode_record(reader)
            except EOFError:
                raise TraceFileError("truncated payload") from None
        local_bitpos = reader.bit_position
        drop = local_bitpos // 8
        del buffer[:drop]
        local_bitpos -= 8 * drop
        bits_buffered -= 8 * drop


def iter_trace_records(
    path: str | Path,
    *,
    segments: Sequence[TraceSegment] | None = None,
    verify: bool = True,
) -> Iterator[TraceRecord]:
    """Stream a trace file's records with bounded memory.

    v2 payloads are decoded one segment at a time (each segment's
    record count and bit length are checked against the table); v1
    payloads are decoded in fixed-size chunks.  At exhaustion the
    total record count and the committed-count consistency field are
    verified, so a fully drained stream gives the same corruption
    guarantees as :func:`read_trace_file`.

    ``segments`` restricts a v2 read to a subset of the table (shard
    workers pass the slice they own); partial reads skip the
    whole-file count and committed checks, since they see only their
    shard.  ``verify=False`` skips the end-of-stream checks too.
    """
    file_size = os.stat(path).st_size
    with open(path, "rb") as handle:
        header, header_length = _parse_header(
            handle.read(MAX_HEADER_LENGTH))
        committed = 0
        yielded = 0
        if header.version == VERSION_V1:
            if segments is not None:
                raise TraceFileError(
                    "segment-restricted reads need a v2 trace file")
            payload_bytes = file_size - header_length
            if header.bit_length > 8 * max(0, payload_bytes):
                raise TraceFileError("truncated payload")
            handle.seek(header_length)
            for record in _iter_v1_payload(handle, header.bit_length):
                committed += not record.tag
                yielded += 1
                yield record
        else:
            if header.segment_table_offset < header_length:
                raise TraceFileError(
                    "corrupt segment index: table offset inside the "
                    "header")
            if header.segment_table_offset > file_size:
                raise TraceFileError("truncated payload")
            handle.seek(header.segment_table_offset)
            table = _parse_segment_table(
                header, header_length, handle.read(), file_size)
            partial = segments is not None
            for segment in (table if segments is None else segments):
                handle.seek(segment.payload_offset)
                data = handle.read(segment.byte_length)
                if len(data) < segment.byte_length:
                    raise TraceFileError(
                        f"truncated segment {segment.index}: "
                        f"{len(data)} of {segment.byte_length} bytes")
                try:
                    records = decode_trace(data, segment.bit_length)
                except EOFError:
                    raise TraceFileError(
                        f"truncated segment {segment.index}") from None
                if len(records) != segment.record_count:
                    raise TraceFileError(
                        f"segment {segment.index} holds "
                        f"{len(records)} records, segment index "
                        f"claims {segment.record_count}"
                    )
                for record in records:
                    committed += not record.tag
                    yielded += 1
                    yield record
            if partial:
                return
        if not verify:
            return
        if yielded != header.record_count:
            raise TraceFileError(
                f"payload holds {yielded} records, header claims "
                f"{header.record_count}"
            )
        _verify_committed(header, committed)


def read_trace_file(
    path: str | Path,
) -> tuple[TraceFileHeader, list[TraceRecord]]:
    """Deserialize a trace file into its header and records.

    Materializes the whole trace in memory; for constant-memory
    ingestion use :func:`iter_trace_records` or
    :class:`repro.trace.source.FileSource`.

    Raises
    ------
    TraceFileError
        On bad magic, unsupported version, corrupt header, a payload
        whose record count disagrees with the header (or, for v2, a
        segment disagreeing with the segment index), or decoded
        records whose committed (untagged) count disagrees with the
        offset-28 consistency field.
    """
    with open(path, "rb") as handle:
        header, header_length = _parse_header(
            handle.read(MAX_HEADER_LENGTH))
    if header.version == VERSION_V2:
        return header, list(iter_trace_records(path))
    data = Path(path).read_bytes()
    payload = data[header_length:]
    if header.bit_length > 8 * len(payload):
        raise TraceFileError("truncated payload")
    records = decode_trace(payload, header.bit_length)
    if len(records) != header.record_count:
        raise TraceFileError(
            f"payload holds {len(records)} records, header claims "
            f"{header.record_count}"
        )
    committed = sum(1 for record in records if not record.tag)
    _verify_committed(header, committed)
    return header, records
