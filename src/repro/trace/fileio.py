"""Trace file format: persistent, self-describing ReSim traces.

The paper's primary usage mode is *"traces that are prepared off-line
(for example for bulk simulations with varying design parameters)"* —
which needs a file format.  Ours is deliberately simple and fully
self-describing:

======== ======= ====================================================
offset   size    field
======== ======= ====================================================
0        8       magic ``b"RESIMTRC"``
8        2       format version (little-endian u16, currently 1)
10       2       header length in bytes (from offset 0)
12       8       record count (u64)
20       8       exact payload bit length (u64)
28       4       committed-instruction count low-order 32 bits (crc-
                 style consistency field; full counts live in stats)
32       N       UTF-8 JSON metadata blob (predictor config, benchmark
                 name, seed) padded to the header length
header   ...     bit-packed records (repro.trace.encode layout)
======== ======= ====================================================

The JSON metadata keeps the predictor configuration with the trace —
the consistency contract (engine predictor == generation predictor)
should survive a trip through the filesystem.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.bpred.unit import PredictorConfig
from repro.trace.encode import decode_trace, encode_trace
from repro.trace.record import TraceRecord

MAGIC = b"RESIMTRC"
VERSION = 1


class TraceFileError(ValueError):
    """Raised on malformed or incompatible trace files."""


@dataclass(frozen=True)
class TraceFileHeader:
    """Parsed header of a trace file."""

    version: int
    record_count: int
    bit_length: int
    metadata: dict

    @property
    def predictor_config(self) -> PredictorConfig | None:
        """Reconstruct the generation predictor, if recorded."""
        blob = self.metadata.get("predictor")
        if blob is None:
            return None
        return PredictorConfig(**blob)


def _predictor_metadata(config: PredictorConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "scheme": config.scheme,
        "l1_size": config.l1_size,
        "history_length": config.history_length,
        "l2_size": config.l2_size,
        "bimodal_size": config.bimodal_size,
        "meta_size": config.meta_size,
        "btb_entries": config.btb_entries,
        "btb_assoc": config.btb_assoc,
        "ras_depth": config.ras_depth,
    }


def write_trace_file(
    path: str | Path,
    records: Sequence[TraceRecord],
    predictor: PredictorConfig | None = None,
    benchmark: str | None = None,
    seed: int | None = None,
) -> int:
    """Serialize a trace; returns the number of bytes written."""
    payload, bit_length = encode_trace(records)
    metadata = {
        "predictor": _predictor_metadata(predictor),
        "benchmark": benchmark,
        "seed": seed,
    }
    blob = json.dumps(metadata, sort_keys=True).encode()
    header_length = 32 + len(blob)

    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(VERSION.to_bytes(2, "little"))
    buffer.write(header_length.to_bytes(2, "little"))
    buffer.write(len(records).to_bytes(8, "little"))
    buffer.write(bit_length.to_bytes(8, "little"))
    committed = sum(1 for record in records if not record.tag)
    buffer.write((committed & 0xFFFF_FFFF).to_bytes(4, "little"))
    buffer.write(blob)
    buffer.write(payload)

    data = buffer.getvalue()
    Path(path).write_bytes(data)
    return len(data)


def read_trace_header(path: str | Path) -> TraceFileHeader:
    """Parse just the header (cheap metadata inspection)."""
    data = Path(path).read_bytes()
    return _parse_header(data)[0]


def _parse_header(data: bytes) -> tuple[TraceFileHeader, int]:
    if len(data) < 32 or data[:8] != MAGIC:
        raise TraceFileError("not a ReSim trace file (bad magic)")
    version = int.from_bytes(data[8:10], "little")
    if version != VERSION:
        raise TraceFileError(f"unsupported trace version {version}")
    header_length = int.from_bytes(data[10:12], "little")
    if header_length < 32 or header_length > len(data):
        raise TraceFileError("corrupt header length")
    record_count = int.from_bytes(data[12:20], "little")
    bit_length = int.from_bytes(data[20:28], "little")
    try:
        metadata = json.loads(data[32:header_length].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFileError(f"corrupt metadata blob: {error}") from None
    header = TraceFileHeader(
        version=version,
        record_count=record_count,
        bit_length=bit_length,
        metadata=metadata,
    )
    return header, header_length


def read_trace_file(
    path: str | Path,
) -> tuple[TraceFileHeader, list[TraceRecord]]:
    """Deserialize a trace file into its header and records.

    Raises
    ------
    TraceFileError
        On bad magic, unsupported version, corrupt header, or a
        payload whose record count disagrees with the header.
    """
    data = Path(path).read_bytes()
    header, header_length = _parse_header(data)
    payload = data[header_length:]
    if header.bit_length > 8 * len(payload):
        raise TraceFileError("truncated payload")
    records = decode_trace(payload, header.bit_length)
    if len(records) != header.record_count:
        raise TraceFileError(
            f"payload holds {len(records)} records, header claims "
            f"{header.record_count}"
        )
    return header, records
