"""Frequency model and the serial-vs-parallel fetch ablation.

Two facts anchor this module to the paper:

* measured minor-cycle frequencies: **84 MHz** (Virtex-4) and
  **105 MHz** (Virtex-5) for the serial design;
* the Section IV ablation that motivated serial execution: a truly
  parallel 4-wide Fetch stage cost **4x the area** and was **22 %
  slower** than fetching a single instruction per minor cycle, because
  of wide multi-ported access to the IFQ/RF/RB/rename table (FPGA
  memories offer at most two ports).

The ablation model generalizes the measured 4-wide data point: a
parallel N-wide structure replicates the logic N times and lengthens
the critical path by a factor calibrated to the paper's measurement
(22 % for N = 4, growing logarithmically with the port/mux fan-in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fpga.device import FpgaDevice

#: The paper's measured slowdown of the 4-wide parallel fetch unit.
PAPER_PARALLEL_SLOWDOWN_4WIDE = 0.22


@dataclass(frozen=True)
class FetchAblation:
    """Serial vs. parallel fetch comparison at one width."""

    width: int
    serial_luts: int
    parallel_luts: int
    serial_mhz: float
    parallel_mhz: float

    @property
    def area_ratio(self) -> float:
        """Parallel/serial area cost (the paper: 4x at N=4)."""
        return self.parallel_luts / self.serial_luts

    @property
    def slowdown(self) -> float:
        """Fractional frequency loss of the parallel unit."""
        return 1.0 - self.parallel_mhz / self.serial_mhz


class FrequencyModel:
    """Minor-cycle clock model for one device."""

    def __init__(self, device: FpgaDevice) -> None:
        self._device = device

    @property
    def device(self) -> FpgaDevice:
        return self._device

    @property
    def minor_cycle_mhz(self) -> float:
        """Achieved minor-cycle frequency of the serial design."""
        return self._device.minor_cycle_mhz

    def major_cycle_mhz(self, minor_cycles_per_major: int) -> float:
        """Rate at which simulated cycles complete."""
        if minor_cycles_per_major <= 0:
            raise ValueError("minor_cycles_per_major must be positive")
        return self.minor_cycle_mhz / minor_cycles_per_major

    def parallel_slowdown(self, width: int) -> float:
        """Estimated frequency loss of a parallel N-wide structure.

        Calibrated to the paper's measured 22 % at N=4; modelled as
        logarithmic in the mux/port fan-in (one extra 2:1 mux level
        per doubling).
        """
        if width <= 1:
            return 0.0
        return PAPER_PARALLEL_SLOWDOWN_4WIDE * (math.log2(width) / 2.0)

    def simulated_seconds(self, major_cycles: int,
                          minor_cycles_per_major: int) -> float:
        """Wall-clock seconds ReSim needs for ``major_cycles``."""
        minors = major_cycles * minor_cycles_per_major
        return minors / (self.minor_cycle_mhz * 1e6)


def parallel_fetch_ablation(width: int, serial_fetch_luts: int,
                            device: FpgaDevice) -> FetchAblation:
    """Model the Section IV experiment at an arbitrary width.

    ``serial_fetch_luts`` comes from the area model's fetch estimate;
    the parallel variant replicates decode/bookkeeping per slot and
    pays the multi-port penalty in frequency.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    model = FrequencyModel(device)
    serial_mhz = model.minor_cycle_mhz
    parallel_mhz = serial_mhz * (1.0 - model.parallel_slowdown(width))
    return FetchAblation(
        width=width,
        serial_luts=serial_fetch_luts,
        parallel_luts=serial_fetch_luts * width,
        serial_mhz=serial_mhz,
        parallel_mhz=parallel_mhz,
    )
