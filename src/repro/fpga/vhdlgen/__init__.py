"""Parametric VHDL generation for the branch predictor.

Section III of the paper: *"We use a script to produce VHDL code for
the desired Branch Predictor according to the user parameters that
include: the RAS size, the number of entries and associativity of the
BTB, etc."*  This package is that script: it turns a
:class:`~repro.bpred.unit.PredictorConfig` into synthesizable VHDL
entities (direction predictor, BTB, RAS, and a wrapping unit).
"""

from repro.fpga.vhdlgen.bpgen import (
    generate_branch_predictor_vhdl,
    generate_btb_vhdl,
    generate_direction_vhdl,
    generate_ras_vhdl,
)

__all__ = [
    "generate_branch_predictor_vhdl",
    "generate_btb_vhdl",
    "generate_direction_vhdl",
    "generate_ras_vhdl",
]
