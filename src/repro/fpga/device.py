"""FPGA device descriptions.

The two devices of the paper's evaluation plus a couple of neighbours
for design-space exploration.  The *achieved minor-cycle frequency* is
the paper's measured synthesis result for the two evaluated parts
(84 MHz on Virtex-4, 105 MHz on Virtex-5) and a documented estimate
for the others (scaled by the family speed ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.registry import Registry


@dataclass(frozen=True)
class FpgaDevice:
    """Resources and achieved timing of one FPGA part.

    Attributes
    ----------
    slices:
        Total logic slices on the part.
    luts_per_slice:
        4 on Virtex-4 (4-input LUTs), 4 on Virtex-5 in *6-input* LUT
        terms (Virtex-5 slices hold four 6-LUTs; the paper reports
        4-input-LUT counts from the V4 flow, which is what the area
        model produces).
    bram_blocks:
        Number of block RAMs (18 kb blocks on V4, 36 kb on V5).
    minor_cycle_mhz:
        Achieved frequency for ReSim's minor-cycle clock.
    measured:
        True when the frequency is the paper's synthesis result rather
        than a scaled estimate.
    """

    name: str
    family: str
    slices: int
    luts_per_slice: int
    bram_blocks: int
    bram_kbits: int
    minor_cycle_mhz: float
    measured: bool = True

    @property
    def total_luts(self) -> int:
        return self.slices * self.luts_per_slice

    def utilization(self, slices_used: int) -> float:
        """Fraction of the device's slices a design occupies."""
        return slices_used / self.slices

    def instances_fit(self, slices_per_instance: int,
                      bram_per_instance: int) -> int:
        """How many independent ReSim instances fit on the part.

        The paper's multi-core direction: "it is possible to fit
        multiple ReSim instances in a single FPGA and simulate
        multi-core systems".
        """
        if slices_per_instance <= 0:
            raise ValueError("slices_per_instance must be positive")
        by_slices = self.slices // slices_per_instance
        by_bram = (self.bram_blocks // bram_per_instance
                   if bram_per_instance > 0 else by_slices)
        return max(0, min(by_slices, by_bram))


#: Virtex-4 LX40: the paper's primary implementation target (84 MHz).
VIRTEX4_LX40 = FpgaDevice(
    name="xc4vlx40", family="Virtex-4",
    slices=18_432, luts_per_slice=2, bram_blocks=96, bram_kbits=18,
    minor_cycle_mhz=84.0,
)

#: Virtex-5 LX50T: the paper's second target (105 MHz).
VIRTEX5_LX50T = FpgaDevice(
    name="xc5vlx50t", family="Virtex-5",
    slices=7_200, luts_per_slice=4, bram_blocks=60, bram_kbits=36,
    minor_cycle_mhz=105.0,
)

#: Larger V4 part (frequency identical to LX40 — same fabric).
VIRTEX4_LX100 = FpgaDevice(
    name="xc4vlx100", family="Virtex-4",
    slices=49_152, luts_per_slice=2, bram_blocks=240, bram_kbits=18,
    minor_cycle_mhz=84.0, measured=False,
)

#: Larger V5 part for multi-instance experiments.
VIRTEX5_LX110T = FpgaDevice(
    name="xc5vlx110t", family="Virtex-5",
    slices=17_280, luts_per_slice=4, bram_blocks=148, bram_kbits=36,
    minor_cycle_mhz=105.0, measured=False,
)

#: Registry by name.  New parts register here (``DEVICES.register``)
#: and become usable by every name-driven surface — ``--device`` CLI
#: flags, session specs, multicore studies — without touching call
#: sites.
DEVICES: Registry[FpgaDevice] = Registry("device")
for _device in (VIRTEX4_LX40, VIRTEX5_LX50T, VIRTEX4_LX100,
                VIRTEX5_LX110T):
    DEVICES.register(_device.name, _device)
del _device
