"""Structure-level FPGA area estimation (the Table 4 substitute).

Without Xilinx ISE, areas are produced by an *analytic resource model*:
each pipeline stage and storage structure gets a parametric LUT/FF/BRAM
formula (distributed-RAM bits, comparators, per-entry bookkeeping,
selection logic), and the per-component constants are **calibrated so
the paper's 4-wide evaluation configuration reproduces the Table 4
breakdown** (xc4vlx40: 12 273 slices / 17 175 4-input LUTs / 7 BRAMs
excluding caches, with Fetch the largest stage at ~25 % and the branch
predictor holding ~71 % of BRAMs).

What the model is for — and not for
-----------------------------------
It exists so that configuration *changes* scale resources the way the
real design would: doubling the reorder buffer doubles its
distributed-RAM and wakeup-comparator terms; growing the PHT crosses
BRAM-block boundaries; adding cache tags in distributed RAM (the
paper's D-cache choice) costs LUTs while BRAM-resident tags (their
I-cache choice) cost blocks.  Absolute numbers inherit the calibration
and should be read as Table-4-anchored estimates, not synthesis
results.

Technology assumptions (Virtex-4 flavoured):

* a 4-input LUT implements 16 bits of single-port distributed RAM;
  dual-porting doubles the LUT count;
* an n-bit comparator costs n/2 LUTs (carry-chain);
* slices are derived per component as ``luts x slice_factor``, the
  factor encoding each component's FF-vs-LUT richness as observed in
  Table 4 (e.g. Dispatch packs FF-heavy pipeline registers: more
  slices than its LUT share alone would suggest).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bpred.unit import PredictorConfig
from repro.cache.cache import CacheConfig
from repro.core.config import ProcessorConfig

#: Bits of one 18 kb Virtex-4 block RAM.
BRAM_BITS = 18 * 1024

#: Worst-case trace record width plus valid/state bits, as held in the
#: IFQ and decouple buffer (B record: 60 bits + bookkeeping).
RECORD_SLOT_BITS = 66

#: In-flight state bits per reorder-buffer entry (record fields, timing
#: state, completion flags, branch resolution).
ROB_ENTRY_BITS = 110

#: Address + state bits per LSQ entry.
LSQ_ENTRY_BITS = 70

#: Tag + valid + dirty bits per cache frame (32-bit addresses).
CACHE_TAG_BITS = 22

#: Slices-per-LUT factors per component, calibrated to Table 4.
_SLICE_FACTORS = {
    "fetch": 0.795, "dispatch": 1.318, "issue": 0.523, "lsq": 0.539,
    "writeback": 0.549, "commit": 0.731, "rename": 0.549, "rob": 0.680,
    "lsq_store": 1.098, "bpred": 0.731, "dcache": 0.830, "icache": 0.735,
}

#: Display names in Table 4 column order.
_DISPLAY = {
    "fetch": "fetch", "dispatch": "disp", "issue": "issue", "lsq": "lsq",
    "writeback": "wb", "commit": "cmt", "rename": "RT", "rob": "RB",
    "lsq_store": "LSQ", "bpred": "BP", "dcache": "D-C", "icache": "I-C",
}

#: Components whose area the paper's reported totals exclude.
_CACHE_COMPONENTS = ("dcache", "icache")


def _dist_ram_luts(bits: int, ports: int = 1) -> int:
    """LUTs to hold ``bits`` of distributed RAM with ``ports`` ports."""
    return math.ceil(bits / 16) * max(1, ports)


@dataclass(frozen=True)
class StageArea:
    """Resource usage of one stage or storage structure."""

    component: str
    luts: int
    slices: int
    brams: int

    @property
    def display_name(self) -> str:
        return _DISPLAY.get(self.component, self.component)


@dataclass(frozen=True)
class AreaReport:
    """Full-design area breakdown in Table 4 form."""

    stages: tuple[StageArea, ...]
    device_name: str

    def _sum(self, attribute: str, include_caches: bool) -> int:
        return sum(
            getattr(stage, attribute) for stage in self.stages
            if include_caches or stage.component not in _CACHE_COMPONENTS
        )

    @property
    def total_slices(self) -> int:
        """Total slices *excluding* caches (the paper's reported total)."""
        return self._sum("slices", include_caches=False)

    @property
    def total_luts(self) -> int:
        """Total 4-input LUTs excluding caches."""
        return self._sum("luts", include_caches=False)

    @property
    def total_brams(self) -> int:
        """Total block RAMs (caches included, as in Table 4's BRAM row)."""
        return self._sum("brams", include_caches=True)

    @property
    def full_design_slices(self) -> int:
        """Slices including the cache tag structures."""
        return self._sum("slices", include_caches=True)

    def percentage(self, component: str, attribute: str) -> float:
        """Share of one component in the full design (Table 4 cells)."""
        total = self._sum(attribute, include_caches=True)
        stage = self.stage(component)
        return 100.0 * getattr(stage, attribute) / total if total else 0.0

    def stage(self, component: str) -> StageArea:
        for stage in self.stages:
            if stage.component == component:
                return stage
        raise KeyError(f"unknown component {component!r}")

    def render(self) -> str:
        """ASCII rendition of Table 4."""
        names = [stage.display_name for stage in self.stages]
        header = ("FPGA resources " + "".join(f"{n:>7}" for n in names)
                  + "   Total(excl. caches)")
        rows = [f"Area breakdown on {self.device_name} (percent of full design)",
                header]
        for attribute, label, total in (
            ("slices", "Slices", self.total_slices),
            ("luts", "4-input LUTs", self.total_luts),
        ):
            cells = "".join(
                f"{self.percentage(s.component, attribute):>7.0f}"
                for s in self.stages
            )
            rows.append(f"{label:<15}{cells}   {total}")
        bram_total = self.total_brams
        cells = "".join(
            f"{(100.0 * s.brams / bram_total if bram_total else 0.0):>7.0f}"
            for s in self.stages
        )
        rows.append(f"{'BRAMs':<15}{cells}   {bram_total}")
        return "\n".join(rows)


class AreaEstimator:
    """Maps a processor configuration to per-structure FPGA resources."""

    def __init__(self, config: ProcessorConfig,
                 device_name: str = "xc4vlx40") -> None:
        self._config = config
        self._device_name = device_name

    def estimate(self) -> AreaReport:
        """Produce the full breakdown for the configuration."""
        config = self._config
        stages = []
        for component, luts, brams in (
            self._fetch(), self._dispatch(), self._issue(),
            self._lsq_logic(), self._writeback(), self._commit(),
            self._rename(), self._rob(), self._lsq_storage(),
            self._bpred(), self._dcache(), self._icache(),
        ):
            slices = round(luts * _SLICE_FACTORS[component])
            stages.append(StageArea(component=component, luts=luts,
                                    slices=slices, brams=brams))
        return AreaReport(stages=tuple(stages),
                          device_name=self._device_name)

    # -- per-component formulas ----------------------------------------
    # Each returns (component, luts, brams).  Constants are calibrated
    # to Table 4 at the paper's 4-wide configuration; the parametric
    # terms give the scaling.

    def _fetch(self) -> tuple[str, int, int]:
        """Trace deserializer, three record decoders, PC datapath,
        misfetch comparison, wrong-path control, and the IFQ
        (Table 4: "Fetch ... include[s] the IFQ")."""
        config = self._config
        ifq_bits = config.ifq_entries * RECORD_SLOT_BITS
        luts = (3650                      # deserializer + decoders + control
                + 250 * config.width      # per-slot sequencing/bookkeeping
                + _dist_ram_luts(ifq_bits, ports=2))
        return "fetch", luts, 0

    def _dispatch(self) -> tuple[str, int, int]:
        """Decouple buffer, ROB/LSQ allocation, rename-port sequencing."""
        config = self._config
        decouple_bits = config.width * RECORD_SLOT_BITS
        luts = (700
                + 60 * config.width
                + _dist_ram_luts(decouple_bits, ports=2))
        return "dispatch", luts, 0

    def _issue(self) -> tuple[str, int, int]:
        """Ready-instruction selection and FU scheduling."""
        config = self._config
        units = config.alu_count + config.mul_count + config.div_count
        luts = 700 + 28 * config.rob_entries + 47 * units
        return "issue", luts, 0

    def _lsq_logic(self) -> tuple[str, int, int]:
        """Lsq_refresh: address CAM, dependence checks, forwarding muxes."""
        config = self._config
        luts = 1500 + 270 * config.lsq_entries + 45 * config.width
        return "lsq", luts, 0

    def _writeback(self) -> tuple[str, int, int]:
        """Oldest-completed selection and broadcast bus drivers."""
        luts = 510 + 77 * self._config.width
        return "writeback", luts, 0

    def _commit(self) -> tuple[str, int, int]:
        """In-order retire control, store release, recovery sequencing."""
        luts = 250 + 40 * self._config.width
        return "commit", luts, 0

    def _rename(self) -> tuple[str, int, int]:
        """Rename table: 64-entry dual-ported map + clear logic."""
        tag_bits = max(4, (self._config.rob_entries - 1).bit_length())
        luts = 500 + 64 * (tag_bits + 1)
        return "rename", luts, 0

    def _rob(self) -> tuple[str, int, int]:
        """Reorder buffer: per-entry state RAM, wakeup comparators,
        head/tail management."""
        luts = 150 + 170 * self._config.rob_entries
        return "rob", luts, 0

    def _lsq_storage(self) -> tuple[str, int, int]:
        """LSQ entry storage (addresses, state)."""
        luts = 90 + 91 * self._config.lsq_entries
        return "lsq_store", luts, 0

    def _bpred(self) -> tuple[str, int, int]:
        """Branch predictor: PHT and BTB in BRAM (the only block-RAM
        user in the core, per the paper), BHT/RAS in LUT fabric."""
        predictor = self._config.predictor
        if predictor.is_perfect:
            return "bpred", 60, 0  # oracle pass-through costs control only
        history_bits = predictor.l1_size * predictor.history_length
        ras_bits = predictor.ras_depth * 32
        luts = (290
                + _dist_ram_luts(history_bits)
                + _dist_ram_luts(ras_bits, ports=2)
                + 50)  # BTB/PHT addressing and update sequencing
        pht_brams = max(1, math.ceil(predictor.l2_size * 2 / BRAM_BITS)) * 2
        btb_bits = predictor.btb_entries * 50  # tag + target + valid
        btb_brams = math.ceil(btb_bits / BRAM_BITS) + 1  # +1: separate tags
        return "bpred", luts, pht_brams + btb_brams

    def _cache_tag_luts(self, cache: CacheConfig) -> int:
        """Tag array in distributed RAM plus per-way comparators/LRU."""
        tag_bits = cache.sets * cache.assoc * CACHE_TAG_BITS
        return (350
                + round(tag_bits * 3.5 / 16)   # dual-ported + update path
                + cache.assoc * 24)            # comparators, LRU, way mux

    def _dcache(self) -> tuple[str, int, int]:
        """D-cache tags in distributed RAM (the paper's choice: "used
        distributed RAMs that are more efficient")."""
        if self._config.perfect_memory:
            return "dcache", 0, 0
        return "dcache", self._cache_tag_luts(self._config.dcache), 0

    def _icache(self) -> tuple[str, int, int]:
        """I-cache tags in BRAM (Table 4: I-C holds the remaining 29%
        of block RAMs), leaving only control in the fabric."""
        if self._config.perfect_memory:
            return "icache", 0, 0
        cache = self._config.icache
        luts = 120 + cache.assoc * 10
        tag_bits = cache.sets * cache.assoc * CACHE_TAG_BITS
        brams = max(1, math.ceil(tag_bits / BRAM_BITS)) * 2  # dual-ported
        return "icache", luts, brams
