"""FPGA substrate: device models, area estimation, VHDL generation.

The paper implements ReSim on Xilinx Virtex-4 (xc4vlx40) and Virtex-5
(xc5vlx50t) devices with ISE 9.1i, reaching minor-cycle frequencies of
84 and 105 MHz and the Table 4 area breakdown (~12K slices, 7 BRAMs).
Neither the devices nor the toolchain are available here, so this
package provides the documented substitution (DESIGN.md §2):

* :mod:`repro.fpga.device` — device descriptions (resources, achieved
  minor-cycle frequency, slice geometry);
* :mod:`repro.fpga.area` — a structure-level resource estimator that
  maps a :class:`~repro.core.config.ProcessorConfig` to slices / LUTs /
  BRAMs per pipeline stage and storage structure, calibrated against
  the paper's Table 4 so configuration *changes* (width, queue sizes,
  predictor geometry) scale the way the real design would;
* :mod:`repro.fpga.timing` — the frequency model and the serial-vs-
  parallel fetch ablation of Section IV (4x cost, 22 % slower);
* :mod:`repro.fpga.vhdlgen` — the paper's "script to produce VHDL code
  for the desired Branch Predictor according to the user parameters"
  (Section III), emitting synthesizable VHDL from a
  :class:`~repro.bpred.unit.PredictorConfig`.
"""

from repro.fpga.area import AreaEstimator, AreaReport, StageArea
from repro.fpga.device import (
    DEVICES,
    FpgaDevice,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
)
from repro.fpga.timing import FrequencyModel, parallel_fetch_ablation
from repro.fpga.vhdlgen import generate_branch_predictor_vhdl

__all__ = [
    "AreaEstimator",
    "AreaReport",
    "DEVICES",
    "FpgaDevice",
    "FrequencyModel",
    "StageArea",
    "VIRTEX4_LX40",
    "VIRTEX5_LX50T",
    "generate_branch_predictor_vhdl",
    "parallel_fetch_ablation",
]
