"""String-keyed component registries.

The reconfigurability story of the paper — one simulator, many
scenarios — needs every pluggable component to be *nameable*: a CLI
flag, a JSON run spec, and a sweep axis must all be able to say
``"gshare"`` or ``"xc4vlx40"`` and mean the same thing.  This module
provides the one registry type every component family shares:

* FPGA devices        — :data:`repro.fpga.device.DEVICES`
* predictor schemes   — :data:`repro.bpred.unit.PREDICTORS`
* replacement policies— :data:`repro.cache.replacement.REPLACEMENT_POLICIES`
* workloads           — :data:`repro.workloads.tracegen.WORKLOADS`
* named processor configs — :data:`repro.session.CONFIGS`

A :class:`Registry` is a :class:`~collections.abc.Mapping`, so code
that used the previous plain dicts (``DEVICES[name]``,
``', '.join(DEVICES)``, ``name in DEVICES``) keeps working unchanged.
New components register without touching any call site:

>>> palette = Registry("color")
>>> palette.register("red", 0xFF0000)
16711680
>>> palette.get("red")
16711680
>>> "red" in palette
True
>>> palette.get("mauve")
Traceback (most recent call last):
    ...
repro.utils.registry.RegistryError: unknown color 'mauve'; choose from red
"""

from __future__ import annotations

from typing import Generic, TypeVar
from collections.abc import Iterator, Mapping

T = TypeVar("T")


class RegistryError(KeyError, ValueError):
    """Unknown component name.

    Subclasses *both* ``KeyError`` (a registry is a mapping, and
    pre-registry call sites catch ``KeyError`` around ``DEVICES[...]``)
    and ``ValueError`` (pre-registry factories like
    ``build_direction_predictor`` and ``make_policy`` raised
    ``ValueError`` for unknown names, and their tests still expect it).
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class Registry(Mapping[str, T], Generic[T]):
    """A named family of components, looked up by string key.

    Parameters
    ----------
    kind:
        Human-readable component-family name, used in error messages
        (``unknown predictor scheme 'oracle'; choose from ...``).
    initial:
        Optional starting ``name -> component`` mapping.
    """

    def __init__(self, kind: str,
                 initial: Mapping[str, T] | None = None) -> None:
        self._kind = kind
        self._components: dict[str, T] = dict(initial or {})
        self._aliases: dict[str, str] = {}

    # -- registration --------------------------------------------------

    def register(self, name: str, component: T | None = None, *,
                 aliases: tuple[str, ...] = (),
                 overwrite: bool = False):
        """Register one component; returns it (usable as a decorator).

        ``aliases`` are alternative lookup keys that resolve to the
        same component but are hidden from iteration (so short forms
        like ``"l"`` for ``"lru"`` don't clutter listings).
        Registering an already-taken name raises unless ``overwrite``.
        """
        if component is None:  # decorator form: @reg.register("name")
            def decorator(obj: T) -> T:
                self.register(name, obj, aliases=aliases,
                              overwrite=overwrite)
                return obj
            return decorator
        if not overwrite and (name in self._components
                              or name in self._aliases):
            raise ValueError(
                f"{self._kind} {name!r} is already registered"
            )
        self._components[name] = component
        for alias in aliases:
            if not overwrite and (alias in self._components
                                  or alias in self._aliases):
                raise ValueError(
                    f"{self._kind} alias {alias!r} is already registered"
                )
            self._aliases[alias] = name
        return component

    # -- lookup --------------------------------------------------------

    _RAISE = object()  # sentinel: one-argument get() raises

    def get(self, name: str, default=_RAISE) -> T:  # type: ignore[override]
        """The component registered under ``name`` (or an alias).

        With no ``default``, raises :class:`RegistryError` — listing
        the valid names — for anything unknown: a silent ``None`` for
        a typo'd component name is exactly the failure mode registries
        exist to prevent.  The two-argument dict form
        (``registry.get(name, fallback)``) still returns the fallback,
        so callers written against the previous plain dicts keep
        working.
        """
        key = self._aliases.get(name, name)
        try:
            return self._components[key]
        except KeyError:
            if default is not Registry._RAISE:
                return default
            raise RegistryError(
                f"unknown {self._kind} {name!r}; choose from "
                f"{', '.join(self._components)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Canonical registered names, in registration order."""
        return tuple(self._components)

    @property
    def kind(self) -> str:
        return self._kind

    # -- Mapping interface --------------------------------------------

    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (f"Registry({self._kind!r}, "
                f"{{{', '.join(self._components)}}})")
