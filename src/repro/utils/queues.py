"""Fixed-capacity circular queues modelling hardware FIFO structures.

Several of ReSim's simulated structures are hardware FIFOs with a fixed
number of entries: the Instruction Fetch Queue (IFQ), the decouple
buffer between Fetch and Dispatch, the Reorder Buffer, and the
Load/Store Queue.  A Python ``collections.deque`` with ``maxlen`` would
silently drop elements on overflow, which is exactly the wrong behaviour
for a hardware model — fullness must *stall* the producer stage instead.

:class:`CircularQueue` therefore raises on overflow/underflow and exposes
occupancy so the statistics unit can sample it (the paper collects IFQ /
Reorder Buffer / LSQ occupancy statistics, Section V.B).
"""

from __future__ import annotations

from typing import Generic, TypeVar
from collections.abc import Iterator

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Raised when pushing to a full queue (the producer must stall)."""


class QueueEmptyError(RuntimeError):
    """Raised when popping from an empty queue."""


class CircularQueue(Generic[T]):
    """A bounded FIFO with hardware-like semantics.

    Entries are held in a fixed ring buffer; ``push`` appends at the
    tail, ``pop`` removes from the head, and iteration yields entries
    oldest-first (the order Writeback and Commit scan the Reorder
    Buffer).

    Parameters
    ----------
    capacity:
        Maximum number of entries; must be positive.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._slots: list[T | None] = [None] * capacity
        self._head = 0
        self._count = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """True when no more entries can be pushed."""
        return self._count == self._capacity

    @property
    def is_empty(self) -> bool:
        """True when no entries are held."""
        return self._count == 0

    @property
    def free_slots(self) -> int:
        """Number of entries that can still be pushed."""
        return self._capacity - self._count

    def push(self, item: T) -> None:
        """Append ``item`` at the tail.

        Raises
        ------
        QueueFullError
            If the queue is full; hardware would stall the producer.
        """
        if self.is_full:
            raise QueueFullError(
                f"queue full ({self._capacity} entries); producer must stall"
            )
        tail = (self._head + self._count) % self._capacity
        self._slots[tail] = item
        self._count += 1

    def pop(self) -> T:
        """Remove and return the oldest entry.

        Raises
        ------
        QueueEmptyError
            If the queue is empty.
        """
        if self.is_empty:
            raise QueueEmptyError("pop from empty queue")
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self._capacity
        self._count -= 1
        assert item is not None
        return item

    def peek(self, index: int = 0) -> T:
        """Return the entry ``index`` positions from the head, not removing it."""
        if index < 0 or index >= self._count:
            raise IndexError(f"peek index {index} out of range (len={self._count})")
        item = self._slots[(self._head + index) % self._capacity]
        assert item is not None
        return item

    def __iter__(self) -> Iterator[T]:
        """Yield entries oldest-first."""
        for offset in range(self._count):
            item = self._slots[(self._head + offset) % self._capacity]
            assert item is not None
            yield item

    def clear(self) -> None:
        """Drop all entries (used on pipeline flush).

        Clears occupied slots in place rather than reallocating the
        ring — this runs on every mis-speculation recovery, so the
        allocation would sit on the engine's hot path.
        """
        for offset in range(self._count):
            self._slots[(self._head + offset) % self._capacity] = None
        self._head = 0
        self._count = 0

    def remove_from_tail(self, count: int) -> list[T]:
        """Remove and return the ``count`` youngest entries, youngest first.

        Used for mis-speculation recovery: squashing wrong-path entries
        removes them from the *tail* of the Reorder Buffer / LSQ while
        older (correct-path) entries stay put.
        """
        if count < 0 or count > self._count:
            raise ValueError(f"cannot remove {count} of {self._count} entries")
        removed: list[T] = []
        for _ in range(count):
            tail = (self._head + self._count - 1) % self._capacity
            item = self._slots[tail]
            self._slots[tail] = None
            self._count -= 1
            assert item is not None
            removed.append(item)
        return removed

    def __repr__(self) -> str:
        return (
            f"CircularQueue(capacity={self._capacity}, len={self._count}, "
            f"head={self._head})"
        )
