"""Deterministic pseudo-random number generation for workload synthesis.

The synthetic SPECINT workload generator (see :mod:`repro.workloads`)
must be *bit-for-bit reproducible across platforms and Python versions*:
the benchmark tables in EXPERIMENTS.md are regenerated from seeds, so a
drifting PRNG would silently change every number.  We therefore ship a
small xorshift64* generator instead of relying on :mod:`random`
(whose Mersenne Twister is stable, but whose convenience-method call
sequences have changed across CPython releases).

Only the handful of distributions the generator needs are provided.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class XorShiftRNG:
    """xorshift64* PRNG (Vigna 2016 variant) with convenience samplers.

    Parameters
    ----------
    seed:
        Any integer; mapped to a non-zero 64-bit internal state via
        SplitMix64 so that nearby seeds give uncorrelated streams.
    """

    def __init__(self, seed: int = 1) -> None:
        # SplitMix64 scramble of the seed gives a well-mixed non-zero state.
        state = (seed + 0x9E3779B97F4A7C15) & _MASK64
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
        state ^= state >> 31
        self._state = state if state != 0 else 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        # Rejection sampling to avoid modulo bias.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % span)
        while True:
            draw = self.next_u64()
            if draw < limit:
                return low + (draw % span)

    def chance(self, probability: float) -> bool:
        """Bernoulli trial: True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.random() < probability

    def geometric(self, mean: float) -> int:
        """Geometric sample with the given mean, support {1, 2, ...}.

        Used for dependency distances and basic-block lengths: a
        geometric distribution matches the empirically short-tailed
        distances seen in integer codes.
        """
        if mean <= 1.0:
            return 1
        success = 1.0 / mean
        count = 1
        while not self.chance(success):
            count += 1
            if count >= 64 * mean:  # guard against pathological tails
                break
        return count

    def choose_weighted(self, weights: dict[str, float]) -> str:
        """Pick a key with probability proportional to its weight."""
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        draw = self.random() * total
        acc = 0.0
        last_key = None
        for key, weight in weights.items():
            acc += weight
            last_key = key
            if draw < acc:
                return key
        assert last_key is not None  # floating point edge: return last
        return last_key

    def fork(self, stream_id: int) -> XorShiftRNG:
        """Derive an independent generator for a sub-stream.

        The workload generator forks one stream per concern (mix,
        branch outcomes, addresses) so that adding instructions of one
        kind does not perturb the sequence of another.
        """
        return XorShiftRNG(self.next_u64() ^ (stream_id * 0xA0761D6478BD642F))
