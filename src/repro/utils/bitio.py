"""Bit-granular I/O primitives.

ReSim's input trace is a *bit-packed* stream of variable-length records
(Branch, Memory, Other — see Section V.A of the paper).  Table 3 reports
the average number of trace bits per instruction (41-47 depending on the
benchmark), so the reproduction must measure encoded sizes at bit
granularity rather than rounding every record to a byte boundary.

The writer accumulates bits most-significant-first within each byte,
which matches how a hardware deserializer would shift them in.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates values bit-by-bit into a growing byte buffer.

    Bits are packed MSB-first.  ``write(value, width)`` appends the
    ``width`` low-order bits of ``value``.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0b1, 1)
    >>> w.bit_length
    4
    >>> bytes(w.getvalue())[0] == 0b10110000
    True
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bitpos = 0  # number of bits already written

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._bitpos

    @property
    def byte_length(self) -> int:
        """Number of bytes needed to hold the written bits."""
        return (self._bitpos + 7) // 8

    def write(self, value: int, width: int) -> None:
        """Append the ``width`` low-order bits of ``value``.

        Raises
        ------
        ValueError
            If ``width`` is negative or ``value`` does not fit in
            ``width`` bits (callers must mask explicitly; silently
            truncating trace fields would corrupt the stream).
        """
        if width < 0:
            raise ValueError(f"negative bit width: {width}")
        if value < 0:
            raise ValueError(f"negative value not encodable: {value}")
        if value >> width:
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        # Write bits MSB-first.
        for shift in range(width - 1, -1, -1):
            bit = (value >> shift) & 1
            byte_index, bit_index = divmod(self._bitpos, 8)
            if byte_index == len(self._buffer):
                self._buffer.append(0)
            if bit:
                self._buffer[byte_index] |= 0x80 >> bit_index
            self._bitpos += 1

    def write_bool(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def getvalue(self) -> bytes:
        """Return the packed bytes (final partial byte zero-padded)."""
        return bytes(self._buffer)

    def clear(self) -> None:
        """Reset the writer to empty."""
        self._buffer.clear()
        self._bitpos = 0


class BitReader:
    """Reads values bit-by-bit from a byte buffer produced by BitWriter.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write(42, 13)
    >>> r = BitReader(w.getvalue())
    >>> r.read(13)
    42
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._bitpos = 0
        self._bit_length = 8 * len(data) if bit_length is None else bit_length
        if self._bit_length > 8 * len(data):
            raise ValueError("bit_length exceeds buffer size")

    @property
    def bits_remaining(self) -> int:
        """Number of bits left to read."""
        return self._bit_length - self._bitpos

    @property
    def bit_position(self) -> int:
        """Current read offset in bits from the start of the buffer."""
        return self._bitpos

    def read(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer.

        Raises
        ------
        EOFError
            If fewer than ``width`` bits remain.
        """
        if width < 0:
            raise ValueError(f"negative bit width: {width}")
        if width > self.bits_remaining:
            raise EOFError(
                f"requested {width} bits, only {self.bits_remaining} remain"
            )
        value = 0
        for _ in range(width):
            byte_index, bit_index = divmod(self._bitpos, 8)
            bit = (self._data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self._bitpos += 1
        return value

    def read_bool(self) -> bool:
        """Read a single bit as a boolean."""
        return self.read(1) == 1

    def seek_bit(self, position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= position <= self._bit_length:
            raise ValueError(f"bit position {position} out of range")
        self._bitpos = position
