"""Shared plumbing for the ReSim reproduction.

This package collects small, dependency-free building blocks used across
the simulator substrates:

* :mod:`repro.utils.bitio` — bit-granular writers/readers used by the
  trace codec (ReSim traces are bit-packed; Table 3 of the paper reports
  bits-per-instruction, which we measure with these primitives).
* :mod:`repro.utils.queues` — fixed-capacity circular queues modelling
  hardware structures (IFQ, decouple buffer, reorder buffer, LSQ).
* :mod:`repro.utils.rng` — a deterministic xorshift PRNG plus the handful
  of distributions the synthetic workload generator needs.  Determinism
  matters: the same seed must produce the same trace on every platform so
  that experiments are exactly reproducible.
"""

from repro.utils.bitio import BitReader, BitWriter
from repro.utils.queues import CircularQueue, QueueFullError, QueueEmptyError
from repro.utils.rng import XorShiftRNG

__all__ = [
    "BitReader",
    "BitWriter",
    "CircularQueue",
    "QueueFullError",
    "QueueEmptyError",
    "XorShiftRNG",
]
