"""Dataflow-scheduling baseline timing model.

Instead of stepping a pipeline state machine cycle by cycle, this
model assigns each correct-path instruction a set of event times by
*scheduling*:

* ``fetch_time`` — width instructions per cycle, +1 cycle bubble after
  every taken branch, misfetch/misprediction penalties as fetch-time
  offsets (a mispredicted branch stalls fetch until it resolves, i.e.
  until its own completion, plus the recovery penalty);
* ``dispatch_time`` — fetch + fixed front-end depth, gated by the
  reorder-buffer window (instruction i waits for i − ROB to commit)
  and the LSQ window for memory ops;
* ``issue_time`` — max(dispatch, operand readiness) pushed forward by
  functional-unit and memory-port contention (per-cycle occupancy
  maps);
* ``complete_time`` — issue + latency (D-cache modelled with its own
  tag arrays, accessed in issue order);
* ``commit_time`` — in-order, width per cycle, no earlier than
  completion + 1.

The resulting cycle count tracks the ReSimEngine within a documented
tolerance (see ``tests/test_cross_validation.py``) while sharing no
structural code with it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.cache.cache import Cache
from repro.core.config import ProcessorConfig
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import FuClass
from repro.isa.program import TEXT_BASE
from repro.trace.record import (
    BranchRecord,
    MemoryRecord,
    TraceRecord,
)

#: Fixed front-end depth (fetch → dispatch), in cycles: one for the
#: IFQ hand-off, one for the decouple buffer.
FRONT_END_DEPTH = 2


@dataclass
class BaselineResult:
    """Cycle count and derived rates from one baseline run."""

    cycles: int
    instructions: int
    branches: int
    mispredictions: int
    misfetches: int
    dcache_misses: int
    icache_misses: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOrderBaseline:
    """Independent timing model for cross-validation and baselining."""

    def __init__(self, config: ProcessorConfig) -> None:
        self._config = config

    def run(self, trace: Sequence[TraceRecord]) -> BaselineResult:
        """Schedule every correct-path record; wrong-path records only
        contribute fetch stall (they are consumed while the faulting
        branch resolves)."""
        config = self._config
        width = config.width

        icache = None if config.perfect_memory else Cache(config.icache)
        dcache = None if config.perfect_memory else Cache(config.dcache)

        # Per-cycle occupancy maps for contention resolution.
        fu_busy: dict[FuClass, dict[int, int]] = {
            FuClass.ALU: defaultdict(int),
            FuClass.MUL: defaultdict(int),
            FuClass.DIV: defaultdict(int),
        }
        fu_count = {
            FuClass.ALU: config.alu_count,
            FuClass.MUL: config.mul_count,
            FuClass.DIV: config.div_count,
        }
        fu_latency = {
            FuClass.ALU: config.alu_latency,
            FuClass.MUL: config.mul_latency,
            FuClass.DIV: config.div_latency,
        }
        read_ports: dict[int, int] = defaultdict(int)
        issue_slots: dict[int, int] = defaultdict(int)
        commit_slots: dict[int, int] = defaultdict(int)
        fetch_slots: dict[int, int] = defaultdict(int)

        #: architectural register → completion time of latest producer
        reg_ready: dict[int, int] = defaultdict(int)

        commit_times: list[int] = []
        mem_commit_times: list[int] = []

        fetch_cycle = 1
        pc = TEXT_BASE
        line_buffer = -1
        instructions = branches = mispredictions = misfetches = 0
        dcache_misses = icache_misses = 0
        last_store_issue = 0

        records = list(trace)
        index = 0
        while index < len(records):
            record = records[index]
            if record.tag:
                index += 1  # wrong path: timing folded into the stall below
                continue

            # ---- fetch ------------------------------------------------
            while fetch_slots[fetch_cycle] >= width:
                fetch_cycle += 1
            if icache is not None:
                # One I-cache access per fetch line; the PC is
                # reconstructed from sequential flow plus branch
                # targets, exactly as the trace-driven engine does.
                line = pc // config.icache.block_bytes
                if line != line_buffer:
                    hit, _ = icache.access(pc)
                    line_buffer = line
                    if not hit:
                        icache_misses += 1
                        fetch_cycle += config.memory_latency
            this_fetch = fetch_cycle
            fetch_slots[this_fetch] += 1
            instructions += 1

            # ---- dispatch (window-gated) -------------------------------
            dispatch = this_fetch + FRONT_END_DEPTH
            rob_index = len(commit_times)
            if rob_index >= config.rob_entries:
                dispatch = max(dispatch,
                               commit_times[rob_index - config.rob_entries])
            if isinstance(record, MemoryRecord):
                mem_index = len(mem_commit_times)
                if mem_index >= config.lsq_entries:
                    dispatch = max(
                        dispatch,
                        mem_commit_times[mem_index - config.lsq_entries],
                    )

            # ---- operand readiness -------------------------------------
            # An instruction may issue in the very cycle its producer
            # broadcasts (the engine's wakeup→issue same-cycle path),
            # but no earlier than one cycle after dispatch.
            ready = dispatch + 1
            for register in record.src_registers():
                ready = max(ready, reg_ready[register])

            # ---- issue with contention ---------------------------------
            issue = ready
            if isinstance(record, MemoryRecord) and not record.is_store:
                # Disambiguation: wait until the youngest older store
                # has resolved its address (its issue cycle) plus the
                # refresh round.
                issue = max(issue, last_store_issue + 1)
                while (read_ports[issue] >= config.mem_read_ports
                       or issue_slots[issue] >= width):
                    issue += 1
                read_ports[issue] += 1
                latency = 1
                if dcache is not None:
                    hit, _ = dcache.access(record.address)
                    if not hit:
                        dcache_misses += 1
                        latency = 1 + config.memory_latency
            else:
                unit = (record.fu if record.fu in (FuClass.MUL, FuClass.DIV)
                        else FuClass.ALU)
                latency = fu_latency[unit]
                while (fu_busy[unit][issue] >= fu_count[unit]
                       or issue_slots[issue] >= width):
                    issue += 1
                fu_busy[unit][issue] += 1
                if unit is FuClass.DIV:  # unpipelined divider
                    for offset in range(1, latency):
                        fu_busy[unit][issue + offset] += 1
            issue_slots[issue] += 1
            complete = issue + latency

            # ---- writeback: producers visible --------------------------
            for register in record.dest_registers():
                reg_ready[register] = complete

            if isinstance(record, MemoryRecord) and record.is_store:
                last_store_issue = issue
                if dcache is not None:
                    hit, _ = dcache.access(record.address, is_write=True)
                    if not hit:
                        dcache_misses += 1

            # ---- commit ------------------------------------------------
            commit = complete + 1
            if commit_times:
                commit = max(commit, commit_times[-1])
            while commit_slots[commit] >= width:
                commit += 1
            commit_slots[commit] += 1
            commit_times.append(commit)
            if isinstance(record, MemoryRecord):
                mem_commit_times.append(commit)

            # ---- control flow ------------------------------------------
            next_pc = pc + INSTRUCTION_BYTES
            if isinstance(record, BranchRecord) and record.taken:
                next_pc = record.target
            if isinstance(record, BranchRecord):
                branches += 1
                tagged_block = (index + 1 < len(records)
                                and records[index + 1].tag)
                if tagged_block:
                    # Fetch is occupied by the wrong path until this
                    # branch resolves at commit, then pays the penalty.
                    mispredictions += 1
                    fetch_cycle = max(
                        fetch_cycle,
                        commit + config.misspeculation_penalty,
                    )
                elif record.taken:
                    # Control-flow bubble: no further fetch this cycle.
                    fetch_cycle = max(fetch_cycle, this_fetch + 1)
            pc = next_pc
            index += 1

        cycles = commit_times[-1] if commit_times else 0
        return BaselineResult(
            cycles=cycles,
            instructions=instructions,
            branches=branches,
            mispredictions=mispredictions,
            misfetches=misfetches,
            dcache_misses=dcache_misses,
            icache_misses=icache_misses,
        )

