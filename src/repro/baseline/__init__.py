"""Baseline software timing simulator (sim-outorder analogue).

An *independent* implementation of the simulated processor's timing,
used two ways:

1. **Cross-validation** — :class:`OutOrderBaseline` computes cycle
   counts with a completely different mechanism (dataflow scheduling
   over a sliding window, no per-cycle state machine), so agreement
   with :class:`repro.core.ReSimEngine` within a documented tolerance
   is meaningful evidence that neither implementation has a gross
   timing bug.  Integration tests enforce the tolerance and that
   benchmark orderings match.

2. **Software-simulator baseline** — the Table 2 comparison quotes
   sim-outorder at 0.30 MIPS on a 2.4 GHz Xeon; our benches
   additionally measure this Python baseline's host throughput to give
   the comparison a local reference point.

Known modelling simplifications versus the engine (all making the
baseline slightly *optimistic*): wrong-path instructions stall fetch
but do not pollute resources; the decouple buffer and IFQ are folded
into a fixed front-end delay; stores release without write-port
contention.
"""

from repro.baseline.outorder import BaselineResult, OutOrderBaseline

__all__ = ["BaselineResult", "OutOrderBaseline"]
