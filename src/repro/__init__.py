"""ReSim — a trace-driven, reconfigurable ILP processor simulator.

A complete Python reproduction of *"ReSim, a Trace-Driven,
Reconfigurable ILP Processor Simulator"* (Fytraki & Pnevmatikatos,
DATE 2009), including every substrate the paper depends on:

* a SimpleScalar-PISA-like integer ISA with assembler and functional
  simulators (:mod:`repro.isa`, :mod:`repro.functional`);
* the tagged B/M/O trace format with wrong-path blocks
  (:mod:`repro.trace`);
* parametric branch prediction — two-level/gshare/bimodal/combining
  direction predictors, BTB, RAS (:mod:`repro.bpred`) — plus the VHDL
  generator the paper describes (:mod:`repro.fpga.vhdlgen`);
* tag-only cache models (:mod:`repro.cache`);
* **the ReSim engine itself**: the trace-driven out-of-order timing
  core and its minor-cycle pipeline organizations
  (:mod:`repro.core`);
* FPGA device/area/frequency models standing in for the Xilinx flow
  (:mod:`repro.fpga`);
* throughput/bandwidth/comparison models regenerating the paper's
  Tables 1-4 (:mod:`repro.perf`);
* parallel, checkpointed design-space sweeps over one shared trace —
  the paper's "bulk simulations with varying design parameters" mode
  (:mod:`repro.sweep`);
* synthetic SPECINT workload profiles and real assembly kernels
  (:mod:`repro.workloads`), and an independent baseline timing
  simulator for cross-validation (:mod:`repro.baseline`);
* **the session facade** — one :class:`~repro.session.Simulation`
  entry point over the whole pipeline (source → engine → FPGA
  projection), with string-keyed component registries and an engine
  observer/instrumentation API (:mod:`repro.session`).

Quick start
-----------
>>> from repro import Simulation
>>> result = (Simulation.for_workload("gzip")
...           .with_budget(10_000)
...           .with_devices("xc4vlx40")
...           .run())
>>> 0.5 < result.ipc < 4.0
True
>>> result.mips("xc4vlx40") > 1.0
True

The same run, described declaratively (the dict is what sweeps and
remote runners serialize):

>>> from repro.serialize import stats_to_dict
>>> spec = {"workload": "gzip", "budget": 10_000,
...         "config": "4wide-perfect"}
>>> declarative = Simulation.from_spec(spec).run()
>>> stats_to_dict(declarative.stats) == stats_to_dict(result.stats)
True

Every named component — workloads, processor configs, FPGA devices,
predictor schemes, cache replacement policies — resolves through a
registry in :mod:`repro.session`; register a new one and every name
surface (CLI flags, specs, sweep axes) picks it up.

Low-level API
-------------
The facade wires together pieces that remain public; hand-wiring them
is still supported where finer control is needed:

>>> from repro import (PAPER_4WIDE_PERFECT, ReSimEngine,
...                    SyntheticWorkload, get_profile)
>>> workload = SyntheticWorkload(get_profile("gzip"), seed=7)
>>> trace = workload.generate(10_000)
>>> result = ReSimEngine(PAPER_4WIDE_PERFECT, trace.records).run()
>>> 0.5 < result.ipc < 4.0
True

See ``examples/`` for runnable end-to-end scenarios and
``EXPERIMENTS.md`` for the paper-vs-measured record.
"""

from repro.bpred import BranchPredictorUnit, PredictorConfig
from repro.cache import CacheConfig, MemorySystem, PerfectMemory
from repro.core import (
    EngineObserver,
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
    ReSimEngine,
    SimulationResult,
    select_pipeline,
)
from repro.fpga import (
    AreaEstimator,
    FrequencyModel,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
    generate_branch_predictor_vhdl,
)
from repro.functional import SimBpred, SimFast
from repro.isa import Program, assemble
from repro.perf import ThroughputModel, evaluate_benchmark, evaluate_suite
from repro.cosim import OnTheFlyCosimulation
from repro.session import (
    CONFIGS,
    DEVICES,
    PREDICTORS,
    REPLACEMENT_POLICIES,
    Registry,
    SessionError,
    SessionResult,
    Simulation,
    WORKLOADS,
)
from repro.sweep import SweepResult, SweepRunner, SweepSpec, run_sweep
from repro.multicore import MultiCoreSimulator, TraceChannel
from repro.trace import (
    ConcatSource,
    FileSource,
    InMemorySource,
    SegmentedTraceWriter,
    TraceSource,
    decode_trace,
    encode_trace,
    iter_trace_records,
    measure_trace,
    read_segment_table,
    read_trace_file,
    write_trace_file,
)
from repro.workloads import (
    KERNELS,
    SPECINT_PROFILES,
    SyntheticWorkload,
    get_profile,
    kernel_program,
    write_workload_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AreaEstimator",
    "BranchPredictorUnit",
    "CONFIGS",
    "CacheConfig",
    "ConcatSource",
    "DEVICES",
    "EngineObserver",
    "FileSource",
    "FrequencyModel",
    "InMemorySource",
    "KERNELS",
    "MemorySystem",
    "MultiCoreSimulator",
    "OnTheFlyCosimulation",
    "PAPER_2WIDE_CACHE",
    "PAPER_4WIDE_PERFECT",
    "PREDICTORS",
    "PerfectMemory",
    "PredictorConfig",
    "ProcessorConfig",
    "Program",
    "REPLACEMENT_POLICIES",
    "ReSimEngine",
    "Registry",
    "SPECINT_PROFILES",
    "SegmentedTraceWriter",
    "SessionError",
    "SessionResult",
    "SimBpred",
    "SimFast",
    "Simulation",
    "SimulationResult",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SyntheticWorkload",
    "ThroughputModel",
    "TraceChannel",
    "TraceSource",
    "VIRTEX4_LX40",
    "VIRTEX5_LX50T",
    "WORKLOADS",
    "__version__",
    "assemble",
    "decode_trace",
    "encode_trace",
    "evaluate_benchmark",
    "evaluate_suite",
    "generate_branch_predictor_vhdl",
    "get_profile",
    "iter_trace_records",
    "kernel_program",
    "measure_trace",
    "read_segment_table",
    "read_trace_file",
    "run_sweep",
    "select_pipeline",
    "write_trace_file",
    "write_workload_trace",
]
