"""ReSim — a trace-driven, reconfigurable ILP processor simulator.

A complete Python reproduction of *"ReSim, a Trace-Driven,
Reconfigurable ILP Processor Simulator"* (Fytraki & Pnevmatikatos,
DATE 2009), including every substrate the paper depends on:

* a SimpleScalar-PISA-like integer ISA with assembler and functional
  simulators (:mod:`repro.isa`, :mod:`repro.functional`);
* the tagged B/M/O trace format with wrong-path blocks
  (:mod:`repro.trace`);
* parametric branch prediction — two-level/gshare/bimodal/combining
  direction predictors, BTB, RAS (:mod:`repro.bpred`) — plus the VHDL
  generator the paper describes (:mod:`repro.fpga.vhdlgen`);
* tag-only cache models (:mod:`repro.cache`);
* **the ReSim engine itself**: the trace-driven out-of-order timing
  core and its minor-cycle pipeline organizations
  (:mod:`repro.core`);
* FPGA device/area/frequency models standing in for the Xilinx flow
  (:mod:`repro.fpga`);
* throughput/bandwidth/comparison models regenerating the paper's
  Tables 1-4 (:mod:`repro.perf`);
* parallel, checkpointed design-space sweeps over one shared trace —
  the paper's "bulk simulations with varying design parameters" mode
  (:mod:`repro.sweep`);
* synthetic SPECINT workload profiles and real assembly kernels
  (:mod:`repro.workloads`), and an independent baseline timing
  simulator for cross-validation (:mod:`repro.baseline`).

Quick start
-----------
>>> from repro import (PAPER_4WIDE_PERFECT, ReSimEngine,
...                    SyntheticWorkload, get_profile)
>>> workload = SyntheticWorkload(get_profile("gzip"), seed=7)
>>> trace = workload.generate(10_000)
>>> result = ReSimEngine(PAPER_4WIDE_PERFECT, trace.records).run()
>>> 0.5 < result.ipc < 4.0
True

See ``examples/`` for runnable end-to-end scenarios and
``EXPERIMENTS.md`` for the paper-vs-measured record.
"""

from repro.bpred import BranchPredictorUnit, PredictorConfig
from repro.cache import CacheConfig, MemorySystem, PerfectMemory
from repro.core import (
    PAPER_2WIDE_CACHE,
    PAPER_4WIDE_PERFECT,
    ProcessorConfig,
    ReSimEngine,
    SimulationResult,
    select_pipeline,
)
from repro.fpga import (
    AreaEstimator,
    FrequencyModel,
    VIRTEX4_LX40,
    VIRTEX5_LX50T,
    generate_branch_predictor_vhdl,
)
from repro.functional import SimBpred, SimFast
from repro.isa import Program, assemble
from repro.perf import ThroughputModel, evaluate_benchmark, evaluate_suite
from repro.cosim import OnTheFlyCosimulation
from repro.sweep import SweepResult, SweepRunner, SweepSpec, run_sweep
from repro.multicore import MultiCoreSimulator, TraceChannel
from repro.trace import (
    decode_trace,
    encode_trace,
    measure_trace,
    read_trace_file,
    write_trace_file,
)
from repro.workloads import (
    KERNELS,
    SPECINT_PROFILES,
    SyntheticWorkload,
    get_profile,
    kernel_program,
)

__version__ = "1.0.0"

__all__ = [
    "AreaEstimator",
    "BranchPredictorUnit",
    "CacheConfig",
    "FrequencyModel",
    "KERNELS",
    "MemorySystem",
    "MultiCoreSimulator",
    "OnTheFlyCosimulation",
    "PAPER_2WIDE_CACHE",
    "PAPER_4WIDE_PERFECT",
    "PerfectMemory",
    "PredictorConfig",
    "ProcessorConfig",
    "Program",
    "ReSimEngine",
    "SPECINT_PROFILES",
    "SimBpred",
    "SimFast",
    "SimulationResult",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SyntheticWorkload",
    "ThroughputModel",
    "TraceChannel",
    "VIRTEX4_LX40",
    "VIRTEX5_LX50T",
    "__version__",
    "assemble",
    "decode_trace",
    "encode_trace",
    "evaluate_benchmark",
    "evaluate_suite",
    "generate_branch_predictor_vhdl",
    "get_profile",
    "kernel_program",
    "measure_trace",
    "read_trace_file",
    "run_sweep",
    "select_pipeline",
    "write_trace_file",
]
