"""Static direction predictors (``taken`` / ``nottaken``).

The degenerate ends of the predictor menu — useful as baselines in the
design-space example and as the cheapest option in the VHDL generator.
The module is named ``static_`` to avoid shadowing the builtin-flavoured
word in imports.
"""

from __future__ import annotations

from repro.bpred.base import DirectionPredictor


class AlwaysTaken(DirectionPredictor):
    """Predicts every conditional branch taken."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "taken"


class AlwaysNotTaken(DirectionPredictor):
    """Predicts every conditional branch not taken."""

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass

    @property
    def name(self) -> str:
        return "nottaken"
