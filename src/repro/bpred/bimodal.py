"""Bimodal (one-level) direction predictor.

A table of 2-bit saturating counters indexed by low PC bits — the
`sim-bpred` "bimod" predictor.  ReSim's parametric branch predictor
generator supports it as the simplest non-static option.
"""

from __future__ import annotations

from repro.bpred.base import (
    DirectionPredictor,
    counter_predicts_taken,
    saturating_update,
)
from repro.isa.instruction import INSTRUCTION_BYTES


class BimodalPredictor(DirectionPredictor):
    """PC-indexed table of 2-bit saturating counters.

    Parameters
    ----------
    table_size:
        Number of counters; must be a power of two.
    initial_counter:
        Power-on counter value; SimpleScalar initializes to weakly
        taken (2), which we follow.
    """

    def __init__(self, table_size: int = 2048, initial_counter: int = 2) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError(f"table_size must be a power of two, got {table_size}")
        if not 0 <= initial_counter <= 3:
            raise ValueError("initial_counter must be a 2-bit value")
        self._size = table_size
        self._initial = initial_counter
        self._counters = [initial_counter] * table_size

    @property
    def table_size(self) -> int:
        return self._size

    def _index(self, pc: int) -> int:
        # Instruction addresses are 8-byte aligned; drop the alignment
        # bits so neighbouring branches use neighbouring counters.
        return (pc // INSTRUCTION_BYTES) & (self._size - 1)

    def predict(self, pc: int) -> bool:
        return counter_predicts_taken(self._counters[self._index(pc)])

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self._counters[index] = saturating_update(self._counters[index], taken)

    def reset(self) -> None:
        self._counters = [self._initial] * self._size

    @property
    def name(self) -> str:
        return f"bimod:{self._size}"
