"""Perfect branch prediction.

The paper's FAST comparison (Table 1, right) simulates a 2-issue
processor with a *perfect* branch predictor: every direction and target
is correct, so no wrong-path blocks appear in the trace and fetch never
stalls for control-flow reasons.

A perfect predictor needs the actual outcome at prediction time; the
:class:`~repro.bpred.unit.BranchPredictorUnit` supplies it from the
trace record, and this class simply echoes it back.  ``predict``
without a supplied outcome is an error by construction.
"""

from __future__ import annotations

from repro.bpred.base import DirectionPredictor


class PerfectPredictor(DirectionPredictor):
    """Oracle direction predictor.

    The owning unit calls :meth:`set_oracle` with the actual outcome
    before each ``predict``; this keeps the
    :class:`~repro.bpred.base.DirectionPredictor` interface uniform so
    the rest of the pipeline does not special-case perfection.
    """

    def __init__(self) -> None:
        self._outcome: bool | None = None

    def set_oracle(self, taken: bool) -> None:
        """Provide the actual direction for the next ``predict`` call."""
        self._outcome = taken

    def predict(self, pc: int) -> bool:
        if self._outcome is None:
            raise RuntimeError(
                "PerfectPredictor.predict called without an oracle outcome"
            )
        outcome = self._outcome
        self._outcome = None
        return outcome

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        self._outcome = None

    @property
    def name(self) -> str:
        return "perfect"
