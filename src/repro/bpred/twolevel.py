"""Two-level adaptive direction predictor (the paper's configuration).

The evaluation configuration in Section V.C: *"The Branch History Table
size, History Register length and PHT are 4, 8 and 4096 respectively"*
— i.e. a first level of 4 history registers, each 8 bits long, indexing
a second-level pattern history table of 4096 two-bit counters.

With ``l1_size == 1`` this is GAg (one global history register); with
``xor=True`` and ``l1_size == 1`` it becomes gshare.  Larger first
levels give the per-address (PAg/PAs) family.  This mirrors
SimpleScalar's ``2lev`` predictor parameterization, which the paper
inherits.
"""

from __future__ import annotations

from repro.bpred.base import (
    DirectionPredictor,
    counter_predicts_taken,
    saturating_update,
)
from repro.isa.instruction import INSTRUCTION_BYTES


class TwoLevelPredictor(DirectionPredictor):
    """Two-level adaptive predictor (GAg / PAg / gshare family).

    Parameters
    ----------
    l1_size:
        Number of history registers in the branch history table (BHT);
        power of two.
    history_length:
        Bits per history register.
    l2_size:
        Number of 2-bit counters in the pattern history table (PHT);
        power of two, at least ``2**history_length`` when the history
        is to be fully discriminated.
    xor:
        If True, XOR the history with PC bits when forming the PHT
        index (gshare) instead of concatenating.
    """

    def __init__(
        self,
        l1_size: int = 4,
        history_length: int = 8,
        l2_size: int = 4096,
        xor: bool = False,
    ) -> None:
        for label, value in (("l1_size", l1_size), ("l2_size", l2_size)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a power of two, got {value}")
        if not 1 <= history_length <= 30:
            raise ValueError(f"history_length out of range: {history_length}")
        self._l1_size = l1_size
        self._history_length = history_length
        self._l2_size = l2_size
        self._xor = xor
        self._history = [0] * l1_size
        self._pht = [2] * l2_size  # weakly taken, as in SimpleScalar

    # -- parameters (read by the VHDL generator and area model) -------

    @property
    def l1_size(self) -> int:
        return self._l1_size

    @property
    def history_length(self) -> int:
        return self._history_length

    @property
    def l2_size(self) -> int:
        return self._l2_size

    @property
    def uses_xor(self) -> bool:
        return self._xor

    # -- prediction ----------------------------------------------------

    def _l1_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & (self._l1_size - 1)

    def _l2_index(self, pc: int) -> int:
        history = self._history[self._l1_index(pc)]
        pc_bits = pc // INSTRUCTION_BYTES
        if self._xor:
            index = history ^ pc_bits
        else:
            # SimpleScalar concatenates: history bits fill the low end,
            # PC bits extend above them when the PHT is large enough.
            index = history | (pc_bits << self._history_length)
        return index & (self._l2_size - 1)

    def predict(self, pc: int) -> bool:
        return counter_predicts_taken(self._pht[self._l2_index(pc)])

    def update(self, pc: int, taken: bool) -> None:
        l2 = self._l2_index(pc)
        self._pht[l2] = saturating_update(self._pht[l2], taken)
        l1 = self._l1_index(pc)
        mask = (1 << self._history_length) - 1
        self._history[l1] = ((self._history[l1] << 1) | int(taken)) & mask

    def reset(self) -> None:
        self._history = [0] * self._l1_size
        self._pht = [2] * self._l2_size

    @property
    def name(self) -> str:
        flavour = "gshare" if self._xor else "2lev"
        return (
            f"{flavour}:{self._l1_size}:{self._history_length}:{self._l2_size}"
        )
