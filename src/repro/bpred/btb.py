"""Branch Target Buffer.

ReSim's evaluation uses a direct-mapped, 512-entry BTB (Section V.C);
the generator supports arbitrary set counts and associativity, so this
model is set-associative with LRU replacement and degenerates to
direct-mapped when ``assoc == 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import INSTRUCTION_BYTES


@dataclass
class _BtbEntry:
    tag: int
    target: int
    lru: int  # larger = more recently used


class BranchTargetBuffer:
    """Set-associative branch target cache.

    Parameters
    ----------
    entries:
        Total entry count; power of two.
    assoc:
        Ways per set; must divide ``entries``.
    """

    def __init__(self, entries: int = 512, assoc: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if assoc <= 0 or entries % assoc:
            raise ValueError(f"assoc {assoc} must divide entries {entries}")
        self._entries = entries
        self._assoc = assoc
        self._sets = entries // assoc
        self._table: list[list[_BtbEntry]] = [[] for _ in range(self._sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def entries(self) -> int:
        return self._entries

    @property
    def assoc(self) -> int:
        return self._assoc

    @property
    def sets(self) -> int:
        return self._sets

    def _index_tag(self, pc: int) -> tuple[int, int]:
        word = pc // INSTRUCTION_BYTES
        return word & (self._sets - 1), word // self._sets

    def lookup(self, pc: int) -> int | None:
        """Return the cached target for ``pc``, or None on miss."""
        index, tag = self._index_tag(pc)
        self._clock += 1
        for entry in self._table[index]:
            if entry.tag == tag:
                entry.lru = self._clock
                self.hits += 1
                return entry.target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for a taken branch at ``pc``."""
        index, tag = self._index_tag(pc)
        self._clock += 1
        ways = self._table[index]
        for entry in ways:
            if entry.tag == tag:
                entry.target = target
                entry.lru = self._clock
                return
        if len(ways) >= self._assoc:
            victim = min(range(len(ways)), key=lambda i: ways[i].lru)
            del ways[victim]
        ways.append(_BtbEntry(tag=tag, target=target, lru=self._clock))

    def reset(self) -> None:
        self._table = [[] for _ in range(self._sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
